// The specification S = (tset, cset): validated registry of communicators
// and tasks, with the derived timing quantities of paper Section 2
// (read/write times, the specification period pi_S) and classification of
// communicators (input / output / internal).
#ifndef LRT_SPEC_SPECIFICATION_H_
#define LRT_SPEC_SPECIFICATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "spec/declarations.h"
#include "support/status.h"

namespace lrt::spec {

/// Builder-side description of a specification. Names are resolved and the
/// paper's well-formedness rules are enforced by Specification::Build.
struct SpecificationConfig {
  std::string name = "spec";
  std::vector<Communicator> communicators;

  /// Task declaration with communicator references by name (resolved at
  /// Build time so configs can be written in any order).
  struct TaskConfig {
    std::string name;
    std::vector<std::pair<std::string, std::int64_t>> inputs;   ///< (comm, i)
    std::vector<std::pair<std::string, std::int64_t>> outputs;  ///< (comm, i)
    TaskFunction function;
    FailureModel model = FailureModel::kSeries;
    std::vector<Value> defaults;  ///< empty => zero_value per input type
  };
  std::vector<TaskConfig> tasks;
};

/// An immutable, validated specification.
///
/// Build() enforces (paper Section 2):
///   (1) every task reads some communicator and writes some communicator;
///   (2) every task's read time is strictly earlier than its write time;
///   (3) no two tasks write to the same communicator;
///   (4) no task writes a communicator instance multiple times;
/// plus basic sanity: unique identifier names, positive periods,
/// LRC in (0,1], init/default values conforming to declared types, and
/// nonnegative instance numbers (outputs strictly positive).
class Specification {
 public:
  /// Validates `config` and derives timing quantities.
  static Result<Specification> Build(SpecificationConfig config);

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] const std::vector<Communicator>& communicators() const {
    return communicators_;
  }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  [[nodiscard]] const Communicator& communicator(CommId id) const {
    return communicators_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Task& task(TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::optional<CommId> find_communicator(
      std::string_view name) const;
  [[nodiscard]] std::optional<TaskId> find_task(std::string_view name) const;

  /// Least common multiple of all communicator periods (lcm(cset)).
  [[nodiscard]] Time base_lcm() const { return base_lcm_; }

  /// The harmonic grid step gcd(cset): every access, read, and write
  /// instant is a multiple of it. Computed once at Build time — the
  /// simulation engines and benches share this value instead of
  /// re-deriving the gcd per run.
  [[nodiscard]] Time base_period() const { return base_period_; }

  /// The specification period pi_S = lcm(cset) * ceil(max_t write_t / lcm):
  /// all tasks repeat with this periodicity.
  [[nodiscard]] Time hyperperiod() const { return hyperperiod_; }

  /// read_t = max_j (pi_c * i) over inputs (c, i): the latest read instant.
  [[nodiscard]] Time read_time(TaskId id) const {
    return read_times_[static_cast<std::size_t>(id)];
  }
  /// write_t = min_k (pi_c * i) over outputs (c, i): the earliest write
  /// instant. The logical execution time of the task is
  /// [read_time, write_time).
  [[nodiscard]] Time write_time(TaskId id) const {
    return write_times_[static_cast<std::size_t>(id)];
  }

  /// The unique task writing communicator `id` (rule 3), if any. A
  /// communicator with no writer is an *input* communicator updated by a
  /// sensor.
  [[nodiscard]] std::optional<TaskId> writer_of(CommId id) const;

  /// Tasks reading communicator `id` (possibly empty).
  [[nodiscard]] const std::vector<TaskId>& readers_of(CommId id) const {
    return readers_[static_cast<std::size_t>(id)];
  }

  /// True iff no task writes `id` (to be driven by a sensor).
  [[nodiscard]] bool is_input_communicator(CommId id) const {
    return !writer_of(id).has_value();
  }
  /// True iff no task reads `id` (to be consumed by an actuator).
  [[nodiscard]] bool is_output_communicator(CommId id) const {
    return readers_of(id).empty();
  }

  /// icset_t: the distinct communicators read by task `id`, in first-use
  /// order. (Instance numbers are irrelevant for reliability.)
  [[nodiscard]] const std::vector<CommId>& input_comm_set(TaskId id) const {
    return input_comm_sets_[static_cast<std::size_t>(id)];
  }

  /// Number of instances of communicator `id` per specification period:
  /// hyperperiod / period. The instance grid is {0, 1, ..., count}, where
  /// instance `count` of one period coincides with instance 0 of the next.
  [[nodiscard]] std::int64_t instances_per_period(CommId id) const {
    return hyperperiod_ / communicator(id).period;
  }

  /// Reconstructs a by-name config equivalent to this specification, with
  /// the Build-time materialized defaults and the task functions carried
  /// over. Build(to_config()) round-trips; spec::to_json(to_config())
  /// is the canonical wire document of this specification.
  [[nodiscard]] SpecificationConfig to_config() const;

 private:
  Specification() = default;

  std::string name_;
  std::vector<Communicator> communicators_;
  std::vector<Task> tasks_;
  std::unordered_map<std::string, CommId> comm_index_;
  std::unordered_map<std::string, TaskId> task_index_;
  std::vector<Time> read_times_;
  std::vector<Time> write_times_;
  std::vector<std::optional<TaskId>> writers_;
  std::vector<std::vector<TaskId>> readers_;
  std::vector<std::vector<CommId>> input_comm_sets_;
  Time base_lcm_ = 1;
  Time base_period_ = 1;
  Time hyperperiod_ = 1;
};

}  // namespace lrt::spec

#endif  // LRT_SPEC_SPECIFICATION_H_
