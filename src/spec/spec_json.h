// Canonical JSON codec for the specification config vocabulary — the
// lrtd wire schema (DESIGN.md §5k) and, together with the architecture
// codec, the domain of lrt::Workload::fingerprint().
//
// to_json is *canonical*: the field order is fixed, and empty task
// default lists are materialized to their Build-time values
// (zero_value per input communicator type), so any two configs that
// Build into the same specification serialize to the same bytes.
// from_json accepts exactly what to_json emits, gated by the
// `"schema": 1` version field. TaskFunction is not serializable:
// deserialized tasks carry no function, which the simulation runtime
// treats as type-correct zero outputs.
#ifndef LRT_SPEC_SPEC_JSON_H_
#define LRT_SPEC_SPEC_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "spec/specification.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt::spec {

/// Version stamped on (and required from) every config document of the
/// wire vocabulary (specification, architecture, implementation).
inline constexpr std::int64_t kConfigSchemaVersion = 1;

/// Canonical document: {"schema": 1, "name", "communicators": [...],
/// "tasks": [...]}.
[[nodiscard]] std::string to_json(const SpecificationConfig& config);
/// Same document written into an enclosing writer (for frame payloads).
void write_json(const SpecificationConfig& config, JsonWriter& json);

[[nodiscard]] Result<SpecificationConfig> specification_config_from_json(
    const JsonValue& document);
[[nodiscard]] Result<SpecificationConfig> specification_config_from_json(
    std::string_view text);

/// One communicator value: null (bottom), {"real": x}, {"int": n}, or
/// {"bool": b}.
void write_json(const Value& value, JsonWriter& json);
[[nodiscard]] Result<Value> value_from_json(const JsonValue& document,
                                            std::string_view where);

}  // namespace lrt::spec

#endif  // LRT_SPEC_SPEC_JSON_H_
