// The specification graph G_S of paper Section 3 and the derived
// dataflow-cycle analyses.
//
// Two levels are provided:
//  * the *instance-level* graph, with one vertex per communicator instance
//    (c, i), i in {0..pi_S/pi_c}, and per task — exactly the paper's V_S /
//    E_S (persistence edges are stored between consecutive instances, which
//    preserves reachability with linearly many edges);
//  * the *dependency digraph* over communicators and tasks (one vertex per
//    communicator, one per task), which has a cycle iff the instance-level
//    graph has a communicator cycle. All cycle analyses run here.
//
// A specification is *memory-free* iff it has no communicator cycle
// (Prop. 1's precondition). A specification with cycles is *cycle-safe* iff
// every communicator cycle contains at least one task with the independent
// input failure model — the paper's fix for specifications with memory.
#ifndef LRT_SPEC_SPEC_GRAPH_H_
#define LRT_SPEC_SPEC_GRAPH_H_

#include <string>
#include <vector>

#include "spec/specification.h"
#include "support/status.h"

namespace lrt::spec {

/// Vertex of the instance-level specification graph.
struct SpecVertex {
  enum class Kind { kCommInstance, kTask };
  Kind kind = Kind::kTask;
  /// For kCommInstance: the (c, i) pair. For kTask: comm == -1.
  PortRef port;
  /// For kTask: the task. For kCommInstance: -1.
  TaskId task = -1;
};

class SpecificationGraph {
 public:
  /// Builds both graph levels. `spec` must outlive the graph.
  explicit SpecificationGraph(const Specification& spec);

  // --- instance level (paper V_S, E_S) ---
  [[nodiscard]] const std::vector<SpecVertex>& vertices() const {
    return vertices_;
  }
  /// Adjacency by vertex index into vertices().
  [[nodiscard]] const std::vector<std::vector<int>>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::size_t edge_count() const;

  /// Index of vertex (c, i) in vertices(). Precondition: in range.
  [[nodiscard]] int comm_instance_vertex(CommId comm,
                                         std::int64_t instance) const;
  /// Index of the task vertex.
  [[nodiscard]] int task_vertex(TaskId task) const;

  // --- cycle analyses (dependency-digraph level) ---

  /// True iff the specification has no communicator cycle.
  [[nodiscard]] bool is_memory_free() const { return cycles_.empty(); }

  /// True iff every communicator cycle contains a task with
  /// FailureModel::kIndependent. Memory-free specifications are trivially
  /// cycle-safe.
  [[nodiscard]] bool is_cycle_safe() const { return cycle_safe_; }

  /// The communicators involved in cycles, one entry per nontrivial
  /// strongly connected component of the dependency digraph.
  [[nodiscard]] const std::vector<std::vector<CommId>>& cycles() const {
    return cycles_;
  }

  /// Communicators in an order such that every communicator appears after
  /// all communicators its SRG depends on, where model-3 tasks cut the
  /// dependency on their inputs. Fails (kFailedPrecondition) iff the
  /// specification is not cycle-safe — exactly when the paper's SRG
  /// induction is ill-founded.
  [[nodiscard]] Result<std::vector<CommId>> reliability_order() const;

  /// Human-readable multi-line description of the cycle structure,
  /// for diagnostics.
  [[nodiscard]] std::string describe_cycles() const;

  /// Graphviz rendering of the instance-level graph: communicator
  /// instances as ellipses "c@i", tasks as boxes; pipe into `dot -Tsvg`.
  [[nodiscard]] std::string to_dot() const;

 private:
  void build_instance_graph();
  void build_dependency_graph();
  void run_cycle_analysis();

  const Specification& spec_;

  // Instance level.
  std::vector<SpecVertex> vertices_;
  std::vector<std::vector<int>> edges_;
  std::vector<int> comm_vertex_base_;  // per comm, index of (c, 0)
  std::vector<int> task_vertex_base_;  // per task

  // Dependency level: node ids are comms [0, C) then tasks [C, C+T).
  std::vector<std::vector<int>> dep_edges_;       // full
  std::vector<std::vector<int>> dep_edges_cut_;   // model-3 inputs removed
  std::vector<std::vector<CommId>> cycles_;
  bool cycle_safe_ = true;
};

}  // namespace lrt::spec

#endif  // LRT_SPEC_SPEC_GRAPH_H_
