#include "spec/specification.h"

#include <algorithm>
#include <set>

#include "support/math_util.h"
#include "support/strings.h"

namespace lrt::spec {

std::string_view to_string(FailureModel model) {
  switch (model) {
    case FailureModel::kSeries: return "series";
    case FailureModel::kParallel: return "parallel";
    case FailureModel::kIndependent: return "independent";
  }
  return "?";
}

namespace {

Status validate_communicator(const Communicator& comm) {
  if (!is_identifier(comm.name)) {
    return InvalidArgumentError("communicator name '" + comm.name +
                                "' is not a valid identifier");
  }
  if (comm.period <= 0) {
    return InvalidArgumentError("communicator '" + comm.name +
                                "' has non-positive period " +
                                std::to_string(comm.period));
  }
  if (!(comm.lrc > 0.0 && comm.lrc <= 1.0)) {
    return InvalidArgumentError("communicator '" + comm.name +
                                "' has LRC outside (0,1]: " +
                                format_double(comm.lrc));
  }
  if (!comm.init.conforms_to(comm.type)) {
    return InvalidArgumentError("communicator '" + comm.name +
                                "' init value " + comm.init.to_string() +
                                " does not conform to type " +
                                std::string(to_string(comm.type)));
  }
  return Status::Ok();
}

}  // namespace

Result<Specification> Specification::Build(SpecificationConfig config) {
  Specification spec;
  spec.name_ = std::move(config.name);

  // --- communicators ---
  for (auto& comm : config.communicators) {
    LRT_RETURN_IF_ERROR(validate_communicator(comm));
    const auto id = static_cast<CommId>(spec.communicators_.size());
    if (!spec.comm_index_.emplace(comm.name, id).second) {
      return AlreadyExistsError("duplicate communicator '" + comm.name + "'");
    }
    spec.communicators_.push_back(std::move(comm));
  }
  if (spec.communicators_.empty()) {
    return InvalidArgumentError("specification '" + spec.name_ +
                                "' declares no communicators");
  }

  std::vector<Time> periods;
  periods.reserve(spec.communicators_.size());
  for (const auto& comm : spec.communicators_) periods.push_back(comm.period);
  spec.base_lcm_ = lcm_all(periods);
  spec.base_period_ = gcd_all(periods);

  const auto resolve = [&spec](const std::string& task_name,
                               const std::pair<std::string, std::int64_t>& ref,
                               bool is_output) -> Result<PortRef> {
    const auto it = spec.comm_index_.find(ref.first);
    if (it == spec.comm_index_.end()) {
      return NotFoundError("task '" + task_name +
                           "' references unknown communicator '" + ref.first +
                           "'");
    }
    if (ref.second < 0 || (is_output && ref.second == 0)) {
      return OutOfRangeError("task '" + task_name + "' " +
                             (is_output ? "writes" : "reads") +
                             " communicator '" + ref.first +
                             "' at invalid instance " +
                             std::to_string(ref.second));
    }
    return PortRef{it->second, ref.second};
  };

  // --- tasks ---
  spec.writers_.assign(spec.communicators_.size(), std::nullopt);
  spec.readers_.assign(spec.communicators_.size(), {});

  for (auto& task_config : config.tasks) {
    if (!is_identifier(task_config.name)) {
      return InvalidArgumentError("task name '" + task_config.name +
                                  "' is not a valid identifier");
    }
    const auto id = static_cast<TaskId>(spec.tasks_.size());
    if (!spec.task_index_.emplace(task_config.name, id).second) {
      return AlreadyExistsError("duplicate task '" + task_config.name + "'");
    }

    Task task;
    task.name = task_config.name;
    task.function = std::move(task_config.function);
    task.model = task_config.model;

    // Rule (1): all tasks read from and write to some communicator.
    if (task_config.inputs.empty()) {
      return InvalidArgumentError("task '" + task.name +
                                  "' reads no communicator (rule 1)");
    }
    if (task_config.outputs.empty()) {
      return InvalidArgumentError("task '" + task.name +
                                  "' writes no communicator (rule 1)");
    }

    for (const auto& ref : task_config.inputs) {
      LRT_ASSIGN_OR_RETURN(const PortRef port,
                           resolve(task.name, ref, /*is_output=*/false));
      task.inputs.push_back(port);
    }
    for (const auto& ref : task_config.outputs) {
      LRT_ASSIGN_OR_RETURN(const PortRef port,
                           resolve(task.name, ref, /*is_output=*/true));
      task.outputs.push_back(port);
    }

    // Defaults: one per input, conforming; empty list means "zero of type".
    if (task_config.defaults.empty()) {
      task.defaults.reserve(task.inputs.size());
      for (const PortRef& port : task.inputs) {
        task.defaults.push_back(
            zero_value(spec.communicator(port.comm).type));
      }
    } else if (task_config.defaults.size() == task.inputs.size()) {
      task.defaults = std::move(task_config.defaults);
      for (std::size_t j = 0; j < task.defaults.size(); ++j) {
        const ValueType type = spec.communicator(task.inputs[j].comm).type;
        if (task.defaults[j].is_bottom() ||
            !task.defaults[j].conforms_to(type)) {
          return InvalidArgumentError(
              "task '" + task.name + "' default #" + std::to_string(j) +
              " must be a non-bottom value of type " +
              std::string(to_string(type)));
        }
      }
    } else {
      return InvalidArgumentError(
          "task '" + task.name + "' declares " +
          std::to_string(task_config.defaults.size()) + " defaults for " +
          std::to_string(task.inputs.size()) + " inputs");
    }

    // Rule (4): no output instance written multiple times; and rule (3)
    // half: within this task, count writes per communicator are fine as
    // long as instances differ.
    std::set<PortRef> seen_outputs;
    for (const PortRef& port : task.outputs) {
      if (!seen_outputs.insert(port).second) {
        return InvalidArgumentError(
            "task '" + task.name + "' writes communicator '" +
            spec.communicator(port.comm).name + "' instance " +
            std::to_string(port.instance) + " multiple times (rule 4)");
      }
    }

    // Rule (3): no two tasks write to the same communicator.
    std::set<CommId> written;
    for (const PortRef& port : task.outputs) written.insert(port.comm);
    for (const CommId comm : written) {
      auto& writer = spec.writers_[static_cast<std::size_t>(comm)];
      if (writer.has_value() && *writer != id) {
        return InvalidArgumentError(
            "communicator '" + spec.communicator(comm).name +
            "' is written by both task '" +
            spec.task(*writer).name + "' and task '" + task.name +
            "' (rule 3)");
      }
      writer = id;
    }

    // Timing: read_t = max over inputs, write_t = min over outputs.
    Time read_time = 0;
    for (const PortRef& port : task.inputs) {
      read_time = std::max(
          read_time, spec.communicator(port.comm).period * port.instance);
    }
    Time write_time = INT64_MAX;
    for (const PortRef& port : task.outputs) {
      write_time = std::min(
          write_time, spec.communicator(port.comm).period * port.instance);
    }
    // Rule (2): strictly positive logical execution time.
    if (!(read_time < write_time)) {
      return InvalidArgumentError(
          "task '" + task.name + "' has read time " +
          std::to_string(read_time) + " not earlier than write time " +
          std::to_string(write_time) + " (rule 2)");
    }

    // icset_t and reader registration (distinct comms, first-use order).
    std::vector<CommId> icset;
    for (const PortRef& port : task.inputs) {
      if (std::find(icset.begin(), icset.end(), port.comm) == icset.end()) {
        icset.push_back(port.comm);
        spec.readers_[static_cast<std::size_t>(port.comm)].push_back(id);
      }
    }

    spec.read_times_.push_back(read_time);
    spec.write_times_.push_back(write_time);
    spec.input_comm_sets_.push_back(std::move(icset));
    spec.tasks_.push_back(std::move(task));
  }

  // pi_S = lcm(cset) * ceil(max_t write_t / lcm(cset)); when there are no
  // tasks the specification period is one lcm round.
  Time max_write = 0;
  for (const Time w : spec.write_times_) max_write = std::max(max_write, w);
  const Time rounds = std::max<Time>(1, ceil_div(max_write, spec.base_lcm_));
  spec.hyperperiod_ = spec.base_lcm_ * rounds;

  return spec;
}

std::optional<CommId> Specification::find_communicator(
    std::string_view name) const {
  const auto it = comm_index_.find(std::string(name));
  if (it == comm_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TaskId> Specification::find_task(std::string_view name) const {
  const auto it = task_index_.find(std::string(name));
  if (it == task_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TaskId> Specification::writer_of(CommId id) const {
  return writers_[static_cast<std::size_t>(id)];
}

SpecificationConfig Specification::to_config() const {
  SpecificationConfig config;
  config.name = name_;
  config.communicators = communicators_;
  config.tasks.reserve(tasks_.size());
  for (const Task& task : tasks_) {
    SpecificationConfig::TaskConfig task_config;
    task_config.name = task.name;
    for (const PortRef& port : task.inputs) {
      task_config.inputs.emplace_back(communicator(port.comm).name,
                                      port.instance);
    }
    for (const PortRef& port : task.outputs) {
      task_config.outputs.emplace_back(communicator(port.comm).name,
                                       port.instance);
    }
    task_config.function = task.function;
    task_config.model = task.model;
    task_config.defaults = task.defaults;
    config.tasks.push_back(std::move(task_config));
  }
  return config;
}

}  // namespace lrt::spec
