#include "spec/spec_graph.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <set>

namespace lrt::spec {
namespace {

/// Iterative Tarjan SCC. Returns the component id of each node; components
/// are numbered in reverse topological order.
struct SccResult {
  std::vector<int> component;  // node -> component id
  int count = 0;
  std::vector<bool> nontrivial;  // component id -> has a cycle
};

SccResult tarjan_scc(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int node;
    std::size_t child;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    index[static_cast<std::size_t>(root)] =
        lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto u = static_cast<std::size_t>(frame.node);
      if (frame.child < adj[u].size()) {
        const int v = adj[u][frame.child++];
        const auto vs = static_cast<std::size_t>(v);
        if (index[vs] == -1) {
          index[vs] = lowlink[vs] = next_index++;
          stack.push_back(v);
          on_stack[vs] = true;
          frames.push_back({v, 0});
        } else if (on_stack[vs]) {
          lowlink[u] = std::min(lowlink[u], index[vs]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          const int comp = result.count++;
          int popped;
          int size = 0;
          do {
            popped = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(popped)] = false;
            result.component[static_cast<std::size_t>(popped)] = comp;
            ++size;
          } while (popped != frame.node);
          // A component is cyclic if it has >1 node or a self-loop.
          bool cyclic = size > 1;
          if (!cyclic) {
            for (const int v : adj[u]) {
              if (v == frame.node) cyclic = true;
            }
          }
          result.nontrivial.resize(static_cast<std::size_t>(result.count),
                                   false);
          result.nontrivial[static_cast<std::size_t>(comp)] = cyclic;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const auto parent = static_cast<std::size_t>(frames.back().node);
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return result;
}

}  // namespace

SpecificationGraph::SpecificationGraph(const Specification& spec)
    : spec_(spec) {
  build_instance_graph();
  build_dependency_graph();
  run_cycle_analysis();
}

void SpecificationGraph::build_instance_graph() {
  // Vertices: (c, i) for i in 0..pi_S/pi_c, then tasks.
  for (CommId c = 0; c < static_cast<CommId>(spec_.communicators().size());
       ++c) {
    comm_vertex_base_.push_back(static_cast<int>(vertices_.size()));
    const std::int64_t instances = spec_.instances_per_period(c);
    for (std::int64_t i = 0; i <= instances; ++i) {
      vertices_.push_back(
          {SpecVertex::Kind::kCommInstance, PortRef{c, i}, -1});
    }
  }
  for (TaskId t = 0; t < static_cast<TaskId>(spec_.tasks().size()); ++t) {
    task_vertex_base_.push_back(static_cast<int>(vertices_.size()));
    vertices_.push_back({SpecVertex::Kind::kTask, PortRef{-1, 0}, t});
  }
  edges_.assign(vertices_.size(), {});

  // Which instances of each communicator are written by a task?
  std::vector<std::set<std::int64_t>> written(spec_.communicators().size());
  for (const Task& task : spec_.tasks()) {
    for (const PortRef& port : task.outputs) {
      written[static_cast<std::size_t>(port.comm)].insert(port.instance);
    }
  }

  // Input/output edges.
  for (TaskId t = 0; t < static_cast<TaskId>(spec_.tasks().size()); ++t) {
    const Task& task = spec_.task(t);
    const auto tv = static_cast<std::size_t>(task_vertex(t));
    for (const PortRef& port : task.inputs) {
      edges_[static_cast<std::size_t>(
                 comm_instance_vertex(port.comm, port.instance))]
          .push_back(static_cast<int>(tv));
    }
    for (const PortRef& port : task.outputs) {
      edges_[tv].push_back(comm_instance_vertex(port.comm, port.instance));
    }
  }

  // Persistence edges (c, i) -> (c, i+1) when no task writes (c, i+1):
  // the value survives the instant. Consecutive edges preserve the paper's
  // reachability relation with O(instances) edges.
  for (CommId c = 0; c < static_cast<CommId>(spec_.communicators().size());
       ++c) {
    const std::int64_t instances = spec_.instances_per_period(c);
    for (std::int64_t i = 0; i < instances; ++i) {
      if (written[static_cast<std::size_t>(c)].count(i + 1) == 0) {
        edges_[static_cast<std::size_t>(comm_instance_vertex(c, i))]
            .push_back(comm_instance_vertex(c, i + 1));
      }
    }
  }
}

std::size_t SpecificationGraph::edge_count() const {
  return std::accumulate(edges_.begin(), edges_.end(), std::size_t{0},
                         [](std::size_t acc, const std::vector<int>& adj) {
                           return acc + adj.size();
                         });
}

int SpecificationGraph::comm_instance_vertex(CommId comm,
                                             std::int64_t instance) const {
  assert(comm >= 0 &&
         comm < static_cast<CommId>(spec_.communicators().size()));
  assert(instance >= 0 && instance <= spec_.instances_per_period(comm));
  return comm_vertex_base_[static_cast<std::size_t>(comm)] +
         static_cast<int>(instance);
}

int SpecificationGraph::task_vertex(TaskId task) const {
  assert(task >= 0 && task < static_cast<TaskId>(spec_.tasks().size()));
  return task_vertex_base_[static_cast<std::size_t>(task)];
}

void SpecificationGraph::build_dependency_graph() {
  const int num_comms = static_cast<int>(spec_.communicators().size());
  const int num_tasks = static_cast<int>(spec_.tasks().size());
  dep_edges_.assign(static_cast<std::size_t>(num_comms + num_tasks), {});
  dep_edges_cut_.assign(static_cast<std::size_t>(num_comms + num_tasks), {});

  for (TaskId t = 0; t < num_tasks; ++t) {
    const Task& task = spec_.task(t);
    const int task_node = num_comms + t;
    const bool independent = task.model == FailureModel::kIndependent;
    for (const CommId c : spec_.input_comm_set(t)) {
      dep_edges_[static_cast<std::size_t>(c)].push_back(task_node);
      if (!independent) {
        // Model 3 executes regardless of its inputs, so in the cut graph its
        // output reliability does not depend on them.
        dep_edges_cut_[static_cast<std::size_t>(c)].push_back(task_node);
      }
    }
    std::set<CommId> outs;
    for (const PortRef& port : task.outputs) outs.insert(port.comm);
    for (const CommId c : outs) {
      dep_edges_[static_cast<std::size_t>(task_node)].push_back(c);
      dep_edges_cut_[static_cast<std::size_t>(task_node)].push_back(c);
    }
  }
}

void SpecificationGraph::run_cycle_analysis() {
  const int num_comms = static_cast<int>(spec_.communicators().size());

  // Communicator cycles: nontrivial SCCs of the full dependency digraph.
  const SccResult full = tarjan_scc(dep_edges_);
  std::vector<std::vector<CommId>> by_component(
      static_cast<std::size_t>(full.count));
  for (CommId c = 0; c < num_comms; ++c) {
    const int comp = full.component[static_cast<std::size_t>(c)];
    if (full.nontrivial[static_cast<std::size_t>(comp)]) {
      by_component[static_cast<std::size_t>(comp)].push_back(c);
    }
  }
  for (auto& comms : by_component) {
    if (!comms.empty()) cycles_.push_back(std::move(comms));
  }

  // Cycle safety: the cut digraph (model-3 input edges removed) must be
  // acyclic — any surviving cycle contains no independent-model task.
  const SccResult cut = tarjan_scc(dep_edges_cut_);
  cycle_safe_ = std::none_of(cut.nontrivial.begin(), cut.nontrivial.end(),
                             [](bool cyclic) { return cyclic; });
}

Result<std::vector<CommId>> SpecificationGraph::reliability_order() const {
  if (!cycle_safe_) {
    return FailedPreconditionError(
        "specification '" + spec_.name() +
        "' has a communicator cycle without an independent-model task; the "
        "SRG induction is ill-founded:\n" +
        describe_cycles());
  }
  // Kahn's algorithm on the cut digraph, reporting communicators only.
  const std::size_t n = dep_edges_cut_.size();
  std::vector<int> indegree(n, 0);
  for (const auto& adj : dep_edges_cut_) {
    for (const int v : adj) ++indegree[static_cast<std::size_t>(v)];
  }
  std::vector<int> queue;
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(static_cast<int>(v));
  }
  std::vector<CommId> order;
  const int num_comms = static_cast<int>(spec_.communicators().size());
  std::size_t head = 0;
  while (head < queue.size()) {
    const int u = queue[head++];
    if (u < num_comms) order.push_back(u);
    for (const int v : dep_edges_cut_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
  }
  if (order.size() != static_cast<std::size_t>(num_comms)) {
    return InternalError("topological sort did not visit every communicator");
  }
  return order;
}

std::string SpecificationGraph::to_dot() const {
  std::string out = "digraph \"" + spec_.name() + "\" {\n  rankdir=LR;\n";
  const auto node_name = [this](int v) {
    const SpecVertex& vertex = vertices_[static_cast<std::size_t>(v)];
    if (vertex.kind == SpecVertex::Kind::kTask) {
      return "\"" + spec_.task(vertex.task).name + "\"";
    }
    return "\"" + spec_.communicator(vertex.port.comm).name + "@" +
           std::to_string(vertex.port.instance) + "\"";
  };
  for (int v = 0; v < static_cast<int>(vertices_.size()); ++v) {
    const SpecVertex& vertex = vertices_[static_cast<std::size_t>(v)];
    out += "  " + node_name(v);
    out += vertex.kind == SpecVertex::Kind::kTask
               ? " [shape=box, style=filled, fillcolor=lightblue];\n"
               : " [shape=ellipse];\n";
  }
  for (int v = 0; v < static_cast<int>(vertices_.size()); ++v) {
    for (const int w : edges_[static_cast<std::size_t>(v)]) {
      out += "  " + node_name(v) + " -> " + node_name(w) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string SpecificationGraph::describe_cycles() const {
  if (cycles_.empty()) return "memory-free (no communicator cycles)";
  std::string out;
  for (std::size_t k = 0; k < cycles_.size(); ++k) {
    out += "cycle " + std::to_string(k) + ": {";
    for (std::size_t j = 0; j < cycles_[k].size(); ++j) {
      if (j > 0) out += ", ";
      out += spec_.communicator(cycles_[k][j]).name;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace lrt::spec
