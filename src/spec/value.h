// Communicator values.
//
// The paper: "The data type includes a special symbol (bottom) to represent
// unreliable communicator values; a non-bottom value indicates that the
// communicator has a reliable value." Value models exactly that: a typed
// payload or the distinguished unreliable symbol.
#ifndef LRT_SPEC_VALUE_H_
#define LRT_SPEC_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

// GCC 12's -Wmaybe-uninitialized fires a well-known false positive when a
// default-constructed std::variant (our bottom value) is copied in
// optimized code; silence it for this header only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace lrt::spec {

/// Declared type of a communicator.
enum class ValueType { kReal, kInt, kBool };

std::string_view to_string(ValueType type);

/// A communicator value: either bottom (unreliable) or a typed payload.
class Value {
 public:
  /// Default-constructed values are bottom, matching the paper's semantics
  /// for a missed update.
  Value() = default;

  static Value bottom() { return Value(); }
  static Value real(double v) { return Value(Payload(v)); }
  static Value integer(std::int64_t v) { return Value(Payload(v)); }
  static Value boolean(bool v) { return Value(Payload(v)); }

  [[nodiscard]] bool is_bottom() const {
    return std::holds_alternative<Bottom>(payload_);
  }

  /// True iff the value is bottom or its payload matches `type`. Bottom
  /// inhabits every communicator type.
  [[nodiscard]] bool conforms_to(ValueType type) const;

  /// Payload accessors. Precondition: the value holds that alternative.
  [[nodiscard]] double as_real() const { return std::get<double>(payload_); }
  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(payload_);
  }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(payload_); }

  [[nodiscard]] bool is_real() const {
    return std::holds_alternative<double>(payload_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(payload_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(payload_);
  }

  /// "⊥", "3.5", "42", "true".
  [[nodiscard]] std::string to_string() const;

  /// Structural equality; bottom equals only bottom.
  friend bool operator==(const Value&, const Value&) = default;

 private:
  struct Bottom {
    friend bool operator==(const Bottom&, const Bottom&) = default;
  };
  using Payload = std::variant<Bottom, double, std::int64_t, bool>;

  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// A neutral non-bottom value of the given type (0.0 / 0 / false); used by
/// generators and as a fallback default.
Value zero_value(ValueType type);

}  // namespace lrt::spec

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // LRT_SPEC_VALUE_H_
