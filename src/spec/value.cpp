#include "spec/value.h"

#include "support/strings.h"

namespace lrt::spec {

std::string_view to_string(ValueType type) {
  switch (type) {
    case ValueType::kReal: return "real";
    case ValueType::kInt: return "int";
    case ValueType::kBool: return "bool";
  }
  return "?";
}

bool Value::conforms_to(ValueType type) const {
  if (is_bottom()) return true;
  switch (type) {
    case ValueType::kReal: return is_real();
    case ValueType::kInt: return is_int();
    case ValueType::kBool: return is_bool();
  }
  return false;
}

std::string Value::to_string() const {
  if (is_bottom()) return "\xE2\x8A\xA5";  // UTF-8 for the bottom symbol
  if (is_real()) return format_double(as_real());
  if (is_int()) return std::to_string(as_int());
  return as_bool() ? "true" : "false";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.to_string();
}

Value zero_value(ValueType type) {
  switch (type) {
    case ValueType::kReal: return Value::real(0.0);
    case ValueType::kInt: return Value::integer(0);
    case ValueType::kBool: return Value::boolean(false);
  }
  return Value::bottom();
}

}  // namespace lrt::spec
