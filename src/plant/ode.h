// Minimal fixed-step ODE integration used by the plant models.
#ifndef LRT_PLANT_ODE_H_
#define LRT_PLANT_ODE_H_

#include <array>
#include <cstddef>

namespace lrt::plant {

/// Classic fourth-order Runge-Kutta step for dx/dt = f(x).
///
/// `Deriv` is callable as f(const std::array<double, N>&) ->
/// std::array<double, N>. Returns the state after one step of size `dt`.
template <std::size_t N, typename Deriv>
std::array<double, N> rk4_step(const std::array<double, N>& state,
                               const Deriv& deriv, double dt) {
  const std::array<double, N> k1 = deriv(state);

  std::array<double, N> mid;
  for (std::size_t i = 0; i < N; ++i) mid[i] = state[i] + 0.5 * dt * k1[i];
  const std::array<double, N> k2 = deriv(mid);

  for (std::size_t i = 0; i < N; ++i) mid[i] = state[i] + 0.5 * dt * k2[i];
  const std::array<double, N> k3 = deriv(mid);

  std::array<double, N> end;
  for (std::size_t i = 0; i < N; ++i) end[i] = state[i] + dt * k3[i];
  const std::array<double, N> k4 = deriv(end);

  std::array<double, N> next;
  for (std::size_t i = 0; i < N; ++i) {
    next[i] =
        state[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return next;
}

}  // namespace lrt::plant

#endif  // LRT_PLANT_ODE_H_
