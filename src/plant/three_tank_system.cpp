#include "plant/three_tank_system.h"

#include <algorithm>
#include <cmath>

namespace lrt::plant {
namespace {

using spec::FailureModel;
using spec::Value;

/// Control law of tasks t1/t2: clamped proportional command from the level.
Value control_law(double setpoint, const Value& level) {
  const double command =
      std::clamp(kThreeTankGain * (setpoint - level.as_real()), 0.0, 1.0);
  return Value::real(command);
}

/// Perturbation estimate of estimate1/estimate2: nominal drain outflow for
/// the measured level (Torricelli), in m^3/s.
Value estimate_law(const ThreeTankParams& params, const Value& level) {
  return Value::real(params.drain_coeff *
                     std::sqrt(2.0 * params.gravity *
                               std::max(0.0, level.as_real())));
}

}  // namespace

Result<ThreeTankSystem> make_three_tank_system(
    const ThreeTankScenario& scenario) {
  const bool replicated_sensors =
      scenario.variant == ThreeTankVariant::kReplicatedSensors;
  const ThreeTankParams params;  // shared by the estimate tasks' law

  // --- specification -------------------------------------------------
  spec::SpecificationConfig spec_config;
  spec_config.name = "three_tank_system";

  const auto sensor_comm = [&](const std::string& name) {
    spec_config.communicators.push_back({name, spec::ValueType::kReal,
                                         Value::real(0.0), 500,
                                         scenario.lrc_sensors});
  };
  if (replicated_sensors) {
    sensor_comm("s1a");
    sensor_comm("s1b");
    sensor_comm("s2a");
    sensor_comm("s2b");
  } else {
    sensor_comm("s1");
    sensor_comm("s2");
  }
  for (const std::string name : {"l1", "l2"}) {
    spec_config.communicators.push_back({name, spec::ValueType::kReal,
                                         Value::real(0.0), 100,
                                         scenario.lrc_levels});
  }
  for (const std::string name : {"u1", "u2"}) {
    spec_config.communicators.push_back({name, spec::ValueType::kReal,
                                         Value::real(0.0), 100,
                                         scenario.lrc_controls});
  }
  for (const std::string name : {"r1", "r2"}) {
    spec_config.communicators.push_back({name, spec::ValueType::kReal,
                                         Value::real(0.0), 500,
                                         scenario.lrc_perturbations});
  }

  const auto add_read_task = [&](int tank) {
    const std::string suffix = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig task;
    task.name = "read" + suffix;
    if (replicated_sensors) {
      task.inputs = {{"s" + suffix + "a", 0}, {"s" + suffix + "b", 0}};
    } else {
      task.inputs = {{"s" + suffix, 0}};
    }
    task.outputs = {{"l" + suffix, 1}};
    task.model = FailureModel::kParallel;  // paper: read tasks use model 2
    task.function = [](std::span<const Value> inputs) {
      // Level from the (first reliable) raw sensor value; the runtime has
      // already substituted defaults per model 2, and replicated sensors
      // deliver identical values, so inputs[0] is the measurement.
      return std::vector<Value>{inputs[0]};
    };
    spec_config.tasks.push_back(std::move(task));
  };
  const auto add_control_task = [&](int tank, double setpoint) {
    const std::string suffix = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig task;
    task.name = "t" + suffix;
    task.inputs = {{"l" + suffix, 1}};
    task.outputs = {{"u" + suffix, 3}};
    task.model = FailureModel::kSeries;  // paper: all other tasks model 1
    task.function = [setpoint](std::span<const Value> inputs) {
      return std::vector<Value>{control_law(setpoint, inputs[0])};
    };
    spec_config.tasks.push_back(std::move(task));
  };
  const auto add_estimate_task = [&](int tank) {
    const std::string suffix = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig task;
    task.name = "estimate" + suffix;
    task.inputs = {{"l" + suffix, 1}, {"u" + suffix, 0}};
    task.outputs = {{"r" + suffix, 1}};
    task.model = FailureModel::kSeries;
    task.function = [params](std::span<const Value> inputs) {
      return std::vector<Value>{estimate_law(params, inputs[0])};
    };
    spec_config.tasks.push_back(std::move(task));
  };

  // Setpoints match the example experiments: 0.40 m and 0.30 m.
  add_read_task(1);
  add_read_task(2);
  add_control_task(1, 0.40);
  add_control_task(2, 0.30);
  add_estimate_task(1);
  add_estimate_task(2);

  auto spec_result = spec::Specification::Build(std::move(spec_config));
  if (!spec_result.ok()) return spec_result.status();

  // --- architecture ---------------------------------------------------
  if (scenario.host_count < 2) {
    return InvalidArgumentError(
        "three tank system needs at least two hosts");
  }
  arch::ArchitectureConfig arch_config;
  arch_config.name = "three_tank_arch";
  for (int h = 1; h <= scenario.host_count; ++h) {
    arch_config.hosts.push_back(
        {"h" + std::to_string(h), scenario.host_reliability});
  }
  if (replicated_sensors) {
    for (const std::string name :
         {"sensor1a", "sensor1b", "sensor2a", "sensor2b"}) {
      arch_config.sensors.push_back({name, scenario.sensor_reliability});
    }
  } else {
    for (const std::string name : {"sensor1", "sensor2"}) {
      arch_config.sensors.push_back({name, scenario.sensor_reliability});
    }
  }
  arch_config.default_wcet = scenario.wcet;
  arch_config.default_wctt = scenario.wctt;

  auto arch_result = arch::Architecture::Build(std::move(arch_config));
  if (!arch_result.ok()) return arch_result.status();

  // --- implementation ---------------------------------------------------
  impl::ImplementationConfig impl_config;
  impl_config.name = "three_tank_impl";
  const bool replicate_tasks =
      scenario.variant == ThreeTankVariant::kReplicatedTasks;
  impl_config.task_mappings.push_back(
      {"t1", replicate_tasks ? std::vector<std::string>{"h1", "h2"}
                             : std::vector<std::string>{"h1"}});
  impl_config.task_mappings.push_back(
      {"t2", replicate_tasks ? std::vector<std::string>{"h1", "h2"}
                             : std::vector<std::string>{"h2"}});
  const std::string last_host = "h" + std::to_string(scenario.host_count);
  for (const std::string task :
       {"read1", "read2", "estimate1", "estimate2"}) {
    impl_config.task_mappings.push_back({task, {last_host}});
  }
  if (replicated_sensors) {
    impl_config.sensor_bindings = {{"s1a", "sensor1a"},
                                   {"s1b", "sensor1b"},
                                   {"s2a", "sensor2a"},
                                   {"s2b", "sensor2b"}};
  } else {
    impl_config.sensor_bindings = {{"s1", "sensor1"}, {"s2", "sensor2"}};
  }

  ThreeTankSystem system;
  system.specification = std::make_unique<spec::Specification>(
      std::move(spec_result).value());
  system.architecture =
      std::make_unique<arch::Architecture>(std::move(arch_result).value());
  auto impl_result = impl::Implementation::Build(
      *system.specification, *system.architecture, std::move(impl_config));
  if (!impl_result.ok()) return impl_result.status();
  system.implementation =
      std::make_unique<impl::Implementation>(std::move(impl_result).value());
  return system;
}

ThreeTankEnvironment::ThreeTankEnvironment(ThreeTankParams params,
                                           double setpoint1, double setpoint2,
                                           double tick_seconds,
                                           double warmup_seconds)
    : plant_(params),
      setpoint1_(setpoint1),
      setpoint2_(setpoint2),
      tick_seconds_(tick_seconds),
      warmup_seconds_(warmup_seconds) {}

spec::Value ThreeTankEnvironment::read_sensor(std::string_view comm,
                                              spec::Time) {
  // "s1", "s1a", "s1b" all measure tank 1; likewise for tank 2. The paper's
  // replicated sensors observe the same physical quantity.
  if (comm.size() >= 2 && comm[0] == 's') {
    const int tank = comm[1] - '0';
    return spec::Value::real(plant_.level(tank));
  }
  return spec::Value::real(0.0);
}

void ThreeTankEnvironment::write_actuator(std::string_view comm, spec::Time,
                                          const spec::Value& value) {
  // An unreliable command update leaves the pump at its previous setting —
  // the standard hold-last-value actuator behaviour.
  if (value.is_bottom()) return;
  if (comm == "u1") plant_.set_pump(1, value.as_real());
  if (comm == "u2") plant_.set_pump(2, value.as_real());
  // r1/r2 are diagnostic outputs with no physical actuator.
}

void ThreeTankEnvironment::add_perturbation_event(double at_seconds, int tank,
                                                  double opening) {
  perturbations_.push_back({at_seconds, tank, opening});
  std::sort(perturbations_.begin(), perturbations_.end(),
            [](const PerturbationEvent& a, const PerturbationEvent& b) {
              return a.at_seconds < b.at_seconds;
            });
}

void ThreeTankEnvironment::advance(spec::Time, spec::Time dt) {
  while (next_perturbation_ < perturbations_.size() &&
         perturbations_[next_perturbation_].at_seconds <= elapsed_) {
    const PerturbationEvent& event = perturbations_[next_perturbation_++];
    plant_.set_perturbation(event.tank, event.opening);
  }
  const double seconds = static_cast<double>(dt) * tick_seconds_;
  plant_.step(seconds);
  elapsed_ += seconds;
  if (elapsed_ < warmup_seconds_) return;
  const double err1 = plant_.level(1) - setpoint1_;
  const double err2 = plant_.level(2) - setpoint2_;
  sum_sq1_ += err1 * err1;
  sum_sq2_ += err2 * err2;
  max_err1_ = std::max(max_err1_, std::fabs(err1));
  max_err2_ = std::max(max_err2_, std::fabs(err2));
  ++samples_;
}

ControlMetrics ThreeTankEnvironment::metrics() const {
  ControlMetrics metrics;
  metrics.samples = samples_;
  if (samples_ > 0) {
    metrics.rms_error1 = std::sqrt(sum_sq1_ / static_cast<double>(samples_));
    metrics.rms_error2 = std::sqrt(sum_sq2_ / static_cast<double>(samples_));
  }
  metrics.max_error1 = max_err1_;
  metrics.max_error2 = max_err2_;
  return metrics;
}

}  // namespace lrt::plant
