// The complete 3TS case study of paper Section 4: the Fig. 2 task set as a
// Specification, the three-host architecture, the paper's implementation
// mappings (baseline, scenario 1, scenario 2), and the Environment adapter
// that closes the loop against the ThreeTankPlant.
//
// Timing (Fig. 2): tasks repeat every 500 ms; communicators s1, s2, r1, r2
// have period 500 and l1, l2, u1, u2 have period 100. One tick = 1 ms.
//   read1:     reads (s1, 0) at 0,          writes (l1, 1) at 100, model 2
//   t1:        reads (l1, 1) at 100,        writes (u1, 3) at 300, model 1
//   estimate1: reads (l1, 1), (u1, 0),      writes (r1, 1) at 500, model 1
// and symmetrically for tank 2.
//
// Reliability (Section 4): all host and sensor reliabilities default to
// 0.99. The baseline maps t1 -> h1, t2 -> h2 and the rest to h3, giving
// lambda_l1 = 0.99^2 = 0.9801 and lambda_u1 = 0.99^3 = 0.970299. Scenario 1
// replicates t1 and t2 on {h1, h2}; scenario 2 replicates the sensors
// (read1/read2 read two sensor communicators each under model 2). Either
// lifts lambda_u to 0.98000199, meeting an LRC of 0.98 that the baseline
// misses.
#ifndef LRT_PLANT_THREE_TANK_SYSTEM_H_
#define LRT_PLANT_THREE_TANK_SYSTEM_H_

#include <memory>
#include <string>

#include "impl/implementation.h"
#include "plant/three_tank.h"
#include "sim/environment.h"
#include "support/status.h"

namespace lrt::plant {

/// Which of the paper's Section-4 implementations to build.
enum class ThreeTankVariant {
  kBaseline,             ///< t1->h1, t2->h2, rest->h3; single sensors
  kReplicatedTasks,      ///< scenario 1: t1, t2 -> {h1, h2}
  kReplicatedSensors,    ///< scenario 2: two sensors per read task
};

struct ThreeTankScenario {
  ThreeTankVariant variant = ThreeTankVariant::kBaseline;
  double host_reliability = 0.99;
  double sensor_reliability = 0.99;
  /// LRC of the sensor communicators s1, s2.
  double lrc_sensors = 0.99;
  /// LRC of the level communicators l1, l2.
  double lrc_levels = 0.97;
  /// LRC of the control communicators u1, u2 — 0.97 is met by the
  /// baseline; 0.98 requires scenario 1 or 2 (paper Section 4).
  double lrc_controls = 0.97;
  /// LRC of the perturbation-estimate communicators r1, r2.
  double lrc_perturbations = 0.9;
  /// WCET/WCTT (ticks) applied to every (task, host) pair.
  spec::Time wcet = 10;
  spec::Time wctt = 5;
  /// Hosts h1..hN (>= 2). The paper uses 3; 2 gives the capacity-starved
  /// platform of the adaptive-recovery experiments, where losing a host
  /// leaves no mapping that meets an 0.98 control LRC. The non-control
  /// tasks map to the last host.
  int host_count = 3;
};

/// Owns the three validated models; heap storage keeps the
/// Implementation's back-references stable across moves.
struct ThreeTankSystem {
  std::unique_ptr<spec::Specification> specification;
  std::unique_ptr<arch::Architecture> architecture;
  std::unique_ptr<impl::Implementation> implementation;
};

/// Builds specification + architecture + implementation for a scenario.
[[nodiscard]] Result<ThreeTankSystem> make_three_tank_system(
    const ThreeTankScenario& scenario);

/// Closed-loop control-performance metrics, accumulated by the environment.
struct ControlMetrics {
  double rms_error1 = 0.0;  ///< RMS of (level1 - setpoint1), meters
  double rms_error2 = 0.0;
  double max_error1 = 0.0;
  double max_error2 = 0.0;
  std::int64_t samples = 0;
};

/// sim::Environment adapter: sensors read tank levels, actuators drive the
/// pumps (holding the previous command on an unreliable update), and
/// advance() steps the plant and accumulates tracking error.
class ThreeTankEnvironment final : public sim::Environment {
 public:
  /// `tick_seconds` converts runtime ticks to plant time (1 ms default).
  /// `warmup_seconds` excludes the fill-up transient from the metrics.
  ThreeTankEnvironment(ThreeTankParams params, double setpoint1,
                       double setpoint2, double tick_seconds = 1e-3,
                       double warmup_seconds = 200.0);

  spec::Value read_sensor(std::string_view comm, spec::Time now) override;
  void write_actuator(std::string_view comm, spec::Time now,
                      const spec::Value& value) override;
  void advance(spec::Time now, spec::Time dt) override;

  /// Schedules opening a perturbation tap (extra drain) at plant time
  /// `at_seconds`; the paper's experiment exercises the controller "in the
  /// presence and absence of perturbations".
  void add_perturbation_event(double at_seconds, int tank, double opening);

  [[nodiscard]] ThreeTankPlant& plant() { return plant_; }
  [[nodiscard]] ControlMetrics metrics() const;
  [[nodiscard]] double setpoint(int tank) const {
    return tank == 1 ? setpoint1_ : setpoint2_;
  }

 private:
  ThreeTankPlant plant_;
  double setpoint1_;
  double setpoint2_;
  double tick_seconds_;
  double warmup_seconds_;
  double elapsed_ = 0.0;
  double sum_sq1_ = 0.0;
  double sum_sq2_ = 0.0;
  double max_err1_ = 0.0;
  double max_err2_ = 0.0;
  std::int64_t samples_ = 0;

  struct PerturbationEvent {
    double at_seconds = 0.0;
    int tank = 1;
    double opening = 0.0;
  };
  std::vector<PerturbationEvent> perturbations_;
  std::size_t next_perturbation_ = 0;
};

/// The proportional gain used by the control tasks t1/t2; exposed so tests
/// can reproduce the control law. High gain keeps the steady-state offset
/// of the (stateless, hence replication-deterministic) P control law small.
inline constexpr double kThreeTankGain = 100.0;

}  // namespace lrt::plant

#endif  // LRT_PLANT_THREE_TANK_SYSTEM_H_
