// The three-tank system (3TS) of paper Section 4.
//
// "The system consists of three tanks tank1, tank2, and tank3, each with an
// evacuation tap. Tank tank3 is connected to both tank1 and tank2. Two
// pumps, pump1 and pump2, feed water into the tanks tank1 and tank2,
// respectively. The controller maintains the level of water in tanks tank1
// and tank2 in the presence and absence of perturbations."
//
// The paper's physical rig is replaced by a Torricelli-flow ODE model with
// parameters in the range of the Amira DTS200 laboratory plant; see
// DESIGN.md ("Substitutions") for why this preserves the experiment.
#ifndef LRT_PLANT_THREE_TANK_H_
#define LRT_PLANT_THREE_TANK_H_

#include <array>

namespace lrt::plant {

struct ThreeTankParams {
  double tank_area = 0.0154;        ///< m^2, cross section of each tank
  double connect_coeff = 5.0e-5;    ///< m^2.5/s flow coefficient tank<->tank3
  double drain_coeff = 3.0e-5;      ///< m^2.5/s evacuation tap coefficient
  double pump_max_flow = 2.5e-4;    ///< m^3/s at command 1.0
  double gravity = 9.81;            ///< m/s^2
  double max_level = 0.62;          ///< m, tank height (clamping)
};

/// Continuous-time plant. Pump commands in [0, 1]; perturbations model
/// additional open evacuation taps (fraction in [0, 1]).
class ThreeTankPlant {
 public:
  explicit ThreeTankPlant(ThreeTankParams params = {});

  /// pump is 1 or 2; command is clamped to [0, 1].
  void set_pump(int pump, double command);
  /// tank is 1, 2 or 3; extra drain opening clamped to [0, 1].
  void set_perturbation(int tank, double opening);

  /// Advances the plant by `dt` seconds (internally sub-stepped RK4).
  void step(double dt);

  /// tank is 1, 2 or 3. Level in meters, within [0, max_level].
  [[nodiscard]] double level(int tank) const;
  [[nodiscard]] double pump(int pump) const;

 private:
  [[nodiscard]] std::array<double, 3> derivatives(
      const std::array<double, 3>& levels) const;

  ThreeTankParams params_;
  std::array<double, 3> levels_{0.0, 0.0, 0.0};
  std::array<double, 2> pumps_{0.0, 0.0};
  std::array<double, 3> perturbations_{0.0, 0.0, 0.0};
};

/// Proportional-integral controller with output clamping and integrator
/// anti-windup (integration halts while the output saturates).
class PiController {
 public:
  PiController(double kp, double ki, double setpoint, double out_min,
               double out_max)
      : kp_(kp), ki_(ki), setpoint_(setpoint), out_min_(out_min),
        out_max_(out_max) {}

  /// One control update given a level measurement and the elapsed time.
  double update(double measured, double dt);

  /// Stateless evaluation used by replicated tasks: proportional command
  /// for a measurement (no integrator), so replicas stay deterministic.
  [[nodiscard]] double proportional(double measured) const;

  void set_setpoint(double setpoint) { setpoint_ = setpoint; }
  [[nodiscard]] double setpoint() const { return setpoint_; }

 private:
  double kp_;
  double ki_;
  double setpoint_;
  double out_min_;
  double out_max_;
  double integral_ = 0.0;
};

}  // namespace lrt::plant

#endif  // LRT_PLANT_THREE_TANK_H_
