#include "plant/three_tank.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "plant/ode.h"

namespace lrt::plant {
namespace {

/// Signed Torricelli flow through an orifice between two columns:
/// q = coeff * sign(dh) * sqrt(2 g |dh|).
double orifice_flow(double coeff, double gravity, double head_difference) {
  const double magnitude =
      coeff * std::sqrt(2.0 * gravity * std::fabs(head_difference));
  return head_difference >= 0.0 ? magnitude : -magnitude;
}

}  // namespace

ThreeTankPlant::ThreeTankPlant(ThreeTankParams params) : params_(params) {}

void ThreeTankPlant::set_pump(int pump, double command) {
  assert(pump == 1 || pump == 2);
  pumps_[static_cast<std::size_t>(pump - 1)] = std::clamp(command, 0.0, 1.0);
}

void ThreeTankPlant::set_perturbation(int tank, double opening) {
  assert(tank >= 1 && tank <= 3);
  perturbations_[static_cast<std::size_t>(tank - 1)] =
      std::clamp(opening, 0.0, 1.0);
}

std::array<double, 3> ThreeTankPlant::derivatives(
    const std::array<double, 3>& levels) const {
  const double g = params_.gravity;
  // Flows from tank1/tank2 into tank3.
  const double q13 =
      orifice_flow(params_.connect_coeff, g, levels[0] - levels[2]);
  const double q23 =
      orifice_flow(params_.connect_coeff, g, levels[1] - levels[2]);
  // Evacuation taps: the base drain plus the perturbation opening.
  const auto drain = [&](int i) {
    const auto tank = static_cast<std::size_t>(i);
    const double coeff = params_.drain_coeff * (1.0 + perturbations_[tank]);
    return coeff * std::sqrt(2.0 * g * std::max(0.0, levels[tank]));
  };
  const double q_in1 = params_.pump_max_flow * pumps_[0];
  const double q_in2 = params_.pump_max_flow * pumps_[1];

  return {
      (q_in1 - q13 - drain(0)) / params_.tank_area,
      (q_in2 - q23 - drain(1)) / params_.tank_area,
      (q13 + q23 - drain(2)) / params_.tank_area,
  };
}

void ThreeTankPlant::step(double dt) {
  assert(dt > 0.0);
  // Sub-step for stability: the plant time constants are tens of seconds,
  // so 0.1 s RK4 steps are comfortably accurate.
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / 0.1)));
  const double h = dt / substeps;
  for (int k = 0; k < substeps; ++k) {
    levels_ = rk4_step<3>(
        levels_,
        [this](const std::array<double, 3>& state) {
          return derivatives(state);
        },
        h);
    for (double& level : levels_) {
      level = std::clamp(level, 0.0, params_.max_level);
    }
  }
}

double ThreeTankPlant::level(int tank) const {
  assert(tank >= 1 && tank <= 3);
  return levels_[static_cast<std::size_t>(tank - 1)];
}

double ThreeTankPlant::pump(int pump) const {
  assert(pump == 1 || pump == 2);
  return pumps_[static_cast<std::size_t>(pump - 1)];
}

double PiController::update(double measured, double dt) {
  const double error = setpoint_ - measured;
  const double unclamped = kp_ * error + ki_ * (integral_ + error * dt);
  const double output = std::clamp(unclamped, out_min_, out_max_);
  // Anti-windup: only integrate while not saturating.
  if (unclamped == output) integral_ += error * dt;
  return output;
}

double PiController::proportional(double measured) const {
  return std::clamp(kp_ * (setpoint_ - measured), out_min_, out_max_);
}

}  // namespace lrt::plant
