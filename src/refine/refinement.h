// Design by refinement (paper Section 3).
//
// A system (S', A', I') refines (S, A, I) under a total, one-to-one task
// map kappa : tset' -> tset, written (S', A', I') <=_kappa (S, A, I), iff
//   (a)  hset' = hset, and for every task t' in tset':
//   (b1) I'(t') = I(kappa(t'))
//   (b2) wemap'(t', h) <= wemap(kappa(t'), h) and
//        wtmap'(t', h) <= wtmap(kappa(t'), h) for all h in I'(t')
//   (b3) the LET of t' contains the LET of kappa(t'):
//        read_t' <= read_kappa(t') and write_t' >= write_kappa(t')
//   (b4) every output communicator of t' has an LRC not exceeding the
//        largest LRC among kappa(t')'s output communicators
//   (b5) model_t' = model_kappa(t')
//   (b6) model 1: icset(t') subseteq icset(kappa(t'));
//        model 2: icset(t') supseteq icset(kappa(t'))
//        (communicators matched by name across the two specifications)
//
// All checks are local to (t', kappa(t')), which is what makes the analysis
// incremental: Lemma 1 (schedulability transfers), Lemma 2 (reliability
// transfers), and Prop. 2 (validity transfers) then hold by construction.
// The relation is reflexive, anti-symmetric and transitive.
#ifndef LRT_REFINE_REFINEMENT_H_
#define LRT_REFINE_REFINEMENT_H_

#include <string>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::refine {

/// The task map kappa, by name: refining task -> refined task.
struct RefinementMap {
  std::vector<std::pair<std::string, std::string>> task_map;
};

/// One violated refinement constraint, for diagnostics.
struct ConstraintViolation {
  /// "a", "b1", ..., "b6", or "kappa" for map-shape problems.
  std::string constraint;
  std::string detail;
};

struct RefinementReport {
  bool refines = false;
  std::vector<ConstraintViolation> violations;
  [[nodiscard]] std::string summary() const;
};

/// Checks (refining) <=_kappa (refined). Fails only on malformed input
/// (unknown task names); constraint violations are reported, not errors.
[[nodiscard]] Result<RefinementReport> check_refinement(
    const impl::Implementation& refining, const impl::Implementation& refined,
    const RefinementMap& kappa);

}  // namespace lrt::refine

#endif  // LRT_REFINE_REFINEMENT_H_
