#include "refine/refinement.h"

#include <algorithm>
#include <set>

#include "support/strings.h"

namespace lrt::refine {
namespace {

using spec::CommId;
using spec::TaskId;

/// Names of the communicators in icset_t, as a set for containment checks.
std::set<std::string> icset_names(const spec::Specification& spec,
                                  TaskId task) {
  std::set<std::string> names;
  for (const CommId c : spec.input_comm_set(task)) {
    names.insert(spec.communicator(c).name);
  }
  return names;
}

}  // namespace

Result<RefinementReport> check_refinement(const impl::Implementation& refining,
                                          const impl::Implementation& refined,
                                          const RefinementMap& kappa) {
  const spec::Specification& sprime = refining.specification();
  const spec::Specification& s = refined.specification();
  const arch::Architecture& aprime = refining.architecture();
  const arch::Architecture& a = refined.architecture();

  RefinementReport report;
  const auto violate = [&report](std::string constraint, std::string detail) {
    report.violations.push_back(
        {std::move(constraint), std::move(detail)});
  };

  // --- kappa shape: total on tset', one-to-one into tset ---
  std::vector<TaskId> image(sprime.tasks().size(), -1);  // t' -> kappa(t')
  std::set<TaskId> used;
  for (const auto& [from, to] : kappa.task_map) {
    const auto tprime = sprime.find_task(from);
    if (!tprime.has_value()) {
      return NotFoundError("kappa maps unknown refining task '" + from + "'");
    }
    const auto t = s.find_task(to);
    if (!t.has_value()) {
      return NotFoundError("kappa targets unknown refined task '" + to + "'");
    }
    if (image[static_cast<std::size_t>(*tprime)] != -1) {
      violate("kappa", "task '" + from + "' mapped twice");
      continue;
    }
    image[static_cast<std::size_t>(*tprime)] = *t;
    if (!used.insert(*t).second) {
      violate("kappa", "two refining tasks map to refined task '" + to + "'");
    }
  }
  for (TaskId tprime = 0; tprime < static_cast<TaskId>(sprime.tasks().size());
       ++tprime) {
    if (image[static_cast<std::size_t>(tprime)] == -1) {
      violate("kappa", "refining task '" + sprime.task(tprime).name +
                           "' has no kappa image (kappa must be total)");
    }
  }

  // --- (a) identical host sets (by name and reliability) ---
  if (a.hosts().size() != aprime.hosts().size()) {
    violate("a", "architectures declare different numbers of hosts");
  } else {
    for (const arch::Host& host : a.hosts()) {
      const auto other = aprime.find_host(host.name);
      if (!other.has_value()) {
        violate("a", "host '" + host.name +
                         "' missing from the refining architecture");
      } else if (aprime.host(*other).reliability != host.reliability) {
        violate("a", "host '" + host.name +
                         "' changes reliability across the refinement");
      }
    }
  }

  // --- per-task local constraints ---
  for (TaskId tprime = 0; tprime < static_cast<TaskId>(sprime.tasks().size());
       ++tprime) {
    const TaskId t = image[static_cast<std::size_t>(tprime)];
    if (t == -1) continue;
    const spec::Task& task_prime = sprime.task(tprime);
    const spec::Task& task = s.task(t);
    const std::string pair_label =
        "'" + task_prime.name + "' -> '" + task.name + "'";

    // (b1) same replication set.
    if (refining.hosts_for(tprime) != refined.hosts_for(t)) {
      violate("b1", pair_label + ": I'(t') differs from I(kappa(t'))");
    }

    // (b2) WCET/WCTT do not grow.
    for (const arch::HostId h : refining.hosts_for(tprime)) {
      const auto wcet_prime = aprime.wcet(task_prime.name, h);
      const auto wcet = a.wcet(task.name, h);
      if (wcet_prime.ok() && wcet.ok() && *wcet_prime > *wcet) {
        violate("b2", pair_label + ": WCET grows on host " +
                          std::to_string(h) + " (" +
                          std::to_string(*wcet_prime) + " > " +
                          std::to_string(*wcet) + ")");
      }
      const auto wctt_prime = aprime.wctt(task_prime.name, h);
      const auto wctt = a.wctt(task.name, h);
      if (wctt_prime.ok() && wctt.ok() && *wctt_prime > *wctt) {
        violate("b2", pair_label + ": WCTT grows on host " +
                          std::to_string(h));
      }
    }

    // (b3) LET containment.
    if (sprime.read_time(tprime) > s.read_time(t)) {
      violate("b3", pair_label + ": refining read time " +
                        std::to_string(sprime.read_time(tprime)) +
                        " is later than refined read time " +
                        std::to_string(s.read_time(t)));
    }
    if (sprime.write_time(tprime) < s.write_time(t)) {
      violate("b3", pair_label + ": refining write time " +
                        std::to_string(sprime.write_time(tprime)) +
                        " is earlier than refined write time " +
                        std::to_string(s.write_time(t)));
    }

    // (b4) output LRCs bounded by the refined task's largest output LRC.
    double max_lrc = 0.0;
    for (const spec::PortRef& port : task.outputs) {
      max_lrc = std::max(max_lrc, s.communicator(port.comm).lrc);
    }
    for (const spec::PortRef& port : task_prime.outputs) {
      const spec::Communicator& comm = sprime.communicator(port.comm);
      if (comm.lrc > max_lrc) {
        violate("b4", pair_label + ": output '" + comm.name + "' LRC " +
                          format_double(comm.lrc) +
                          " exceeds the refined task's maximum output LRC " +
                          format_double(max_lrc));
      }
    }

    // (b5) identical input failure model.
    if (task_prime.model != task.model) {
      violate("b5", pair_label + ": failure model changes from " +
                        std::string(to_string(task.model)) + " to " +
                        std::string(to_string(task_prime.model)));
    }

    // (b6) input-set containment per failure model.
    const std::set<std::string> ins_prime = icset_names(sprime, tprime);
    const std::set<std::string> ins = icset_names(s, t);
    if (task_prime.model == spec::FailureModel::kSeries &&
        !std::includes(ins.begin(), ins.end(), ins_prime.begin(),
                       ins_prime.end())) {
      violate("b6", pair_label +
                        ": series model requires icset(t') to be a subset "
                        "of icset(kappa(t'))");
    }
    if (task_prime.model == spec::FailureModel::kParallel &&
        !std::includes(ins_prime.begin(), ins_prime.end(), ins.begin(),
                       ins.end())) {
      violate("b6", pair_label +
                        ": parallel model requires icset(t') to be a "
                        "superset of icset(kappa(t'))");
    }
  }

  report.refines = report.violations.empty();
  return report;
}

std::string RefinementReport::summary() const {
  if (refines) return "REFINES";
  std::string out = "DOES NOT REFINE\n";
  for (const ConstraintViolation& violation : violations) {
    out += "  (" + violation.constraint + ") " + violation.detail + "\n";
  }
  return out;
}

}  // namespace lrt::refine
