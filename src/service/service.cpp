#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "adapt/live_update.h"
#include "arch/arch_json.h"
#include "impl/impl_json.h"
#include "lint/sarif.h"
#include "lrt/lrt.h"
#include "reliability/analysis.h"
#include "reliability/incremental.h"
#include "spec/spec_graph.h"
#include "spec/spec_json.h"
#include "synth/synth_json.h"

namespace lrt::service {
namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Optional "sensor_bindings": [{"communicator": c, "sensor": s}, ...].
Result<std::vector<impl::ImplementationConfig::SensorBinding>>
decode_sensor_bindings(const JsonValue& body, std::string_view where) {
  std::vector<impl::ImplementationConfig::SensorBinding> bindings;
  const JsonValue* doc = body.find("sensor_bindings");
  if (doc == nullptr) return bindings;
  if (!doc->is_array()) {
    return InvalidArgumentError(std::string(where) +
                                ".sensor_bindings must be an array");
  }
  for (std::size_t i = 0; i < doc->array.size(); ++i) {
    const std::string entry = std::string(where) + ".sensor_bindings[" +
                              std::to_string(i) + "]";
    const JsonValue& item = doc->array[i];
    if (!item.is_object()) {
      return InvalidArgumentError(entry + " must be an object");
    }
    impl::ImplementationConfig::SensorBinding binding;
    LRT_ASSIGN_OR_RETURN(binding.communicator,
                         json_member_string(item, "communicator", entry));
    LRT_ASSIGN_OR_RETURN(binding.sensor,
                         json_member_string(item, "sensor", entry));
    bindings.push_back(std::move(binding));
  }
  return bindings;
}

/// The thread-count-invariant subset of a ValidationReport: everything
/// sim::to_json emits except `threads`, `elapsed_seconds`, and
/// `trials_per_second` — the fields that vary run to run. The campaign's
/// statistics themselves are bit-identical for every thread count by the
/// Monte Carlo determinism contract.
void write_validation_json(const sim::ValidationReport& report,
                           JsonWriter& json) {
  json.begin_object();
  json.key("implementation");
  json.value(report.implementation);
  json.key("trials");
  json.value(report.trials);
  json.key("seed");
  json.value(static_cast<std::int64_t>(report.seed));
  json.key("periods_per_trial");
  json.value(report.periods_per_trial);
  json.key("z");
  json.value(report.z);
  json.key("invocations");
  json.value(report.invocations);
  json.key("invocation_failures");
  json.value(report.invocation_failures);
  json.key("committed_updates");
  json.value(report.committed_updates);
  json.key("vote_divergences");
  json.value(report.vote_divergences);
  json.key("deadline_misses");
  json.value(report.deadline_misses);
  json.key("remaps_installed");
  json.value(report.remaps_installed);
  json.key("failed_trials");
  json.value(report.failed_trials);
  json.key("first_trial_error");
  json.value(report.first_trial_error);
  json.key("analysis_sound");
  json.value(report.analysis_sound);
  json.key("implementation_reliable");
  json.value(report.implementation_reliable);
  json.key("communicators");
  json.begin_array();
  for (const sim::CommAggregate& c : report.communicators) {
    json.begin_object();
    json.key("name");
    json.value(c.name);
    json.key("updates");
    json.value(c.updates);
    json.key("reliable_updates");
    json.value(c.reliable_updates);
    json.key("empirical");
    json.value(c.empirical);
    json.key("ci_low");
    json.value(c.interval.low);
    json.key("ci_high");
    json.value(c.interval.high);
    json.key("mean_limit_average");
    json.value(c.mean_limit_average);
    json.key("stddev_limit_average");
    json.value(c.stddev_limit_average);
    json.key("min_trial_rate");
    json.value(c.min_trial_rate);
    json.key("max_trial_rate");
    json.value(c.max_trial_rate);
    json.key("analytic_srg");
    json.value(c.analytic_srg);
    json.key("lrc");
    json.value(c.lrc);
    json.key("analysis_sound");
    json.value(c.analysis_sound);
    json.key("meets_lrc");
    json.value(c.meets_lrc);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

/// A workload held hot: the built models, the canonical config of the
/// last fully analyzed implementation, and an SrgEvaluator primed with
/// it. `mutex` serializes all implementation-state access; the models
/// and graph flags are immutable after construction.
struct Service::Resident {
  std::uint64_t fingerprint = 0;
  lrt::Workload workload;
  bool memory_free = false;
  bool cycle_safe = false;

  std::mutex mutex;
  bool has_impl = false;
  /// Canonical config of the resident implementation (TaskId-order
  /// mappings, CommId-order bindings) — the rebuild fallback's source.
  impl::ImplementationConfig impl_config;
  std::vector<std::vector<arch::HostId>> hosts;  ///< by TaskId, ascending
  std::vector<int> reexecutions;                 ///< by TaskId
  /// Absent when the specification is not cycle-safe (no SRG induction)
  /// or the last FromImplementation failed; mutate requests then rebuild.
  std::optional<reliability::SrgEvaluator> evaluator;

  /// Records `impl` as the resident implementation after a fully
  /// successful cold analysis. Call with `mutex` held.
  void prime(const impl::Implementation& impl) {
    const std::size_t tasks = workload.spec->tasks().size();
    impl_config = impl.to_config();
    hosts.resize(tasks);
    reexecutions.resize(tasks);
    for (std::size_t t = 0; t < tasks; ++t) {
      hosts[t] = impl.hosts_for(static_cast<spec::TaskId>(t));
      reexecutions[t] = impl.reexecutions(static_cast<spec::TaskId>(t));
    }
    Result<reliability::SrgEvaluator> built =
        reliability::SrgEvaluator::FromImplementation(impl);
    if (built.ok()) {
      evaluator = std::move(built).value();
    } else {
      evaluator.reset();
    }
    has_impl = true;
  }

  /// The analyze() report reconstructed from the evaluator's state —
  /// field for field the make_report computation over bit-identical
  /// SRGs (the SrgEvaluator contract), so hit responses match cold ones.
  [[nodiscard]] reliability::ReliabilityReport report() const {
    const spec::Specification& spec = *workload.spec;
    reliability::ReliabilityReport out;
    out.memory_free = memory_free;
    out.cycle_safe = cycle_safe;
    out.reliable = true;
    const auto count = static_cast<spec::CommId>(spec.communicators().size());
    for (spec::CommId c = 0; c < count; ++c) {
      reliability::CommunicatorVerdict verdict;
      verdict.comm = c;
      verdict.name = spec.communicator(c).name;
      verdict.srg = evaluator->srg(c);
      verdict.lrc = spec.communicator(c).lrc;
      verdict.slack = verdict.srg - verdict.lrc;
      verdict.satisfied = evaluator->satisfied(c);
      out.reliable = out.reliable && verdict.satisfied;
      out.verdicts.push_back(std::move(verdict));
    }
    return out;
  }
};

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (options_.max_resident_workloads == 0) {
    options_.max_resident_workloads = 1;
  }
}

Service::~Service() = default;

std::int64_t Service::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

obs::Sink* Service::sink() const {
  return obs::resolve_sink(options_.sink);
}

std::size_t Service::resident_count() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return residents_.size();
}

void Service::touch_locked(std::uint64_t fingerprint) {
  auto it = residents_.find(fingerprint);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
}

Result<std::shared_ptr<Service::Resident>> Service::resolve_workload(
    const JsonValue& body, std::string_view where) {
  obs::Sink* s = sink();
  if (const JsonValue* fp_doc = body.find("fingerprint")) {
    if (!fp_doc->is_string()) {
      return InvalidArgumentError(std::string(where) +
                                  ".fingerprint must be a string");
    }
    const std::optional<std::uint64_t> fp =
        parse_fingerprint(fp_doc->string);
    if (!fp.has_value()) {
      return InvalidArgumentError(
          std::string(where) +
          ".fingerprint must be 16 lowercase hex digits");
    }
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = residents_.find(*fp);
    if (it == residents_.end()) {
      return NotFoundError("no resident workload with fingerprint " +
                           fp_doc->string + "; resend 'spec' and 'arch'");
    }
    touch_locked(*fp);
    if (s != nullptr) s->counter_add("service.cache_hits");
    return it->second.resident;
  }

  LRT_ASSIGN_OR_RETURN(const JsonValue* spec_doc,
                       json_member(body, "spec", where));
  LRT_ASSIGN_OR_RETURN(const JsonValue* arch_doc,
                       json_member(body, "arch", where));
  LRT_ASSIGN_OR_RETURN(spec::SpecificationConfig spec_config,
                       spec::specification_config_from_json(*spec_doc));
  LRT_ASSIGN_OR_RETURN(arch::ArchitectureConfig arch_config,
                       arch::architecture_config_from_json(*arch_doc));
  const std::uint64_t fp = lrt::fingerprint(spec_config, arch_config);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = residents_.find(fp);
    if (it != residents_.end()) {
      touch_locked(fp);
      if (s != nullptr) s->counter_add("service.cache_hits");
      return it->second.resident;
    }
  }

  // Cold miss: build the models outside the cache lock.
  LRT_ASSIGN_OR_RETURN(lrt::Workload workload,
                       lrt::build_workload(std::move(spec_config),
                                           std::move(arch_config)));
  auto resident = std::make_shared<Resident>();
  resident->fingerprint = fp;
  resident->workload = std::move(workload);
  const spec::SpecificationGraph graph(*resident->workload.spec);
  resident->memory_free = graph.is_memory_free();
  resident->cycle_safe = graph.is_cycle_safe();

  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto [it, inserted] = residents_.try_emplace(fp);
  if (!inserted) {
    // Another worker built the same workload concurrently; keep theirs.
    touch_locked(fp);
    return it->second.resident;
  }
  lru_.push_front(fp);
  it->second = CacheEntry{std::move(resident), lru_.begin()};
  if (s != nullptr) s->counter_add("service.cache_misses");
  while (residents_.size() > options_.max_resident_workloads) {
    residents_.erase(lru_.back());
    lru_.pop_back();
    if (s != nullptr) s->counter_add("service.evictions");
  }
  return residents_.find(fp)->second.resident;
}

Result<std::string> Service::do_analyze(const JsonValue& body) {
  LRT_ASSIGN_OR_RETURN(const std::shared_ptr<Resident> resident,
                       resolve_workload(body, "request"));
  const JsonValue* impl_doc = body.find("implementation");
  const JsonValue* mutate = body.find("mutate");
  if ((impl_doc != nullptr) == (mutate != nullptr)) {
    return InvalidArgumentError(
        "request: analyze needs exactly one of 'implementation' and "
        "'mutate'");
  }
  // Delta analyzes answer with a compact verdict by default: the point
  // of the hit path is that its cost is one dirty-cone re-propagation,
  // not a full per-communicator report serialization. "full_report"
  // overrides either default.
  bool include_report = impl_doc != nullptr;
  if (const JsonValue* full = body.find("full_report")) {
    if (full->kind != JsonValue::Kind::kBool) {
      return InvalidArgumentError("request.full_report must be a boolean");
    }
    include_report = full->boolean;
  }

  obs::Sink* s = sink();
  std::optional<reliability::ReliabilityReport> report;
  bool reliable = false;
  std::int64_t unsatisfied = 0;
  // Sets the verdict fields (and drops the report unless requested)
  // from a full report — the cold path's summary, byte-identical to the
  // hit path's evaluator reads by the SrgEvaluator contract.
  const auto summarize = [&](reliability::ReliabilityReport&& full) {
    reliable = full.reliable;
    unsatisfied = 0;
    for (const reliability::CommunicatorVerdict& verdict : full.verdicts) {
      if (!verdict.satisfied) ++unsatisfied;
    }
    if (include_report) report = std::move(full);
  };
  const std::lock_guard<std::mutex> lock(resident->mutex);

  // Cold path: a full config builds, analyzes, and re-primes the
  // resident evaluator. Any error leaves the resident state untouched.
  const auto analyze_cold =
      [&](impl::ImplementationConfig config)
      -> Result<reliability::ReliabilityReport> {
    LRT_ASSIGN_OR_RETURN(
        const impl::Implementation impl,
        lrt::build_implementation(resident->workload, std::move(config)));
    LRT_ASSIGN_OR_RETURN(reliability::ReliabilityReport cold,
                         lrt::analyze(resident->workload, impl));
    resident->prime(impl);
    if (s != nullptr) s->counter_add("service.analyze_cold");
    return cold;
  };

  if (impl_doc != nullptr) {
    LRT_ASSIGN_OR_RETURN(impl::ImplementationConfig config,
                         impl::implementation_config_from_json(*impl_doc));
    LRT_ASSIGN_OR_RETURN(reliability::ReliabilityReport cold,
                         analyze_cold(std::move(config)));
    summarize(std::move(cold));
  } else {
    // Delta addressing: {"task", "hosts", "reexecutions"?} against the
    // resident implementation. Validation mirrors Implementation::Build
    // (existing task, nonempty duplicate-free existing hosts) and runs
    // BEFORE any state change, so an invalid mutation cannot poison the
    // evaluator.
    LRT_ASSIGN_OR_RETURN(
        const std::string task_name,
        json_member_string(*mutate, "task", "request.mutate"));
    LRT_ASSIGN_OR_RETURN(const JsonValue* hosts_doc,
                         json_member(*mutate, "hosts", "request.mutate"));
    if (!hosts_doc->is_array()) {
      return InvalidArgumentError("request.mutate.hosts must be an array");
    }
    std::optional<int> new_reex;
    if (const JsonValue* reex_doc = mutate->find("reexecutions")) {
      LRT_ASSIGN_OR_RETURN(
          const std::int64_t value,
          json_to_int(*reex_doc, "request.mutate.reexecutions"));
      if (value < 0) {
        return InvalidArgumentError(
            "request.mutate.reexecutions must be >= 0");
      }
      new_reex = static_cast<int>(value);
    }
    if (!resident->has_impl) {
      return FailedPreconditionError(
          "no implementation is resident for workload " +
          format_fingerprint(resident->fingerprint) +
          "; send a full 'implementation' first");
    }
    const spec::Specification& spec = *resident->workload.spec;
    const arch::Architecture& arch = *resident->workload.arch;
    const std::optional<spec::TaskId> task = spec.find_task(task_name);
    if (!task.has_value()) {
      return NotFoundError("request.mutate: unknown task '" + task_name +
                           "'");
    }
    if (hosts_doc->array.empty()) {
      return InvalidArgumentError("request.mutate: task '" + task_name +
                                  "' must map to at least one host");
    }
    std::vector<arch::HostId> host_ids;
    std::vector<std::string> host_names;
    for (const JsonValue& host_doc : hosts_doc->array) {
      if (!host_doc.is_string()) {
        return InvalidArgumentError(
            "request.mutate.hosts entries must be strings");
      }
      const std::optional<arch::HostId> host =
          arch.find_host(host_doc.string);
      if (!host.has_value()) {
        return NotFoundError("request.mutate: unknown host '" +
                             host_doc.string + "'");
      }
      host_ids.push_back(*host);
    }
    std::sort(host_ids.begin(), host_ids.end());
    if (std::adjacent_find(host_ids.begin(), host_ids.end()) !=
        host_ids.end()) {
      return InvalidArgumentError("request.mutate: duplicate host for task '" +
                                  task_name + "'");
    }
    host_names.reserve(host_ids.size());
    for (const arch::HostId h : host_ids) {
      host_names.push_back(arch.host(h).name);
    }

    const auto t = static_cast<std::size_t>(*task);
    const int reex = new_reex.value_or(resident->reexecutions[t]);
    if (resident->evaluator.has_value() &&
        reex == resident->reexecutions[t]) {
      // Hit: one dirty-cone re-propagation; bit-identical to the cold
      // path by the SrgEvaluator contract.
      resident->evaluator->set_task_hosts(*task, host_ids);
      resident->hosts[t] = host_ids;
      for (auto& mapping : resident->impl_config.task_mappings) {
        if (mapping.task == task_name) {
          mapping.hosts = host_names;
          break;
        }
      }
      if (include_report) {
        summarize(resident->report());
      } else {
        // The fast path's whole cost: the propagation already done plus
        // O(|cset|) flag reads — no report construction at all.
        const reliability::SrgEvaluator& evaluator = *resident->evaluator;
        reliable = evaluator.all_lrcs_satisfied();
        unsatisfied = 0;
        const auto count =
            static_cast<spec::CommId>(spec.communicators().size());
        for (spec::CommId c = 0; c < count; ++c) {
          if (!evaluator.satisfied(c)) ++unsatisfied;
        }
      }
      if (s != nullptr) s->counter_add("service.analyze_hits");
    } else {
      // Re-execution change or no evaluator (non-cycle-safe spec):
      // rebuild from the mutated resident config for authoritative
      // semantics and error bytes.
      impl::ImplementationConfig config = resident->impl_config;
      for (auto& mapping : config.task_mappings) {
        if (mapping.task == task_name) {
          mapping.hosts = host_names;
          mapping.reexecutions = reex;
          break;
        }
      }
      LRT_ASSIGN_OR_RETURN(reliability::ReliabilityReport rebuilt,
                           analyze_cold(std::move(config)));
      summarize(std::move(rebuilt));
    }
  }

  JsonWriter json;
  json.begin_object();
  json.key("fingerprint");
  json.value(format_fingerprint(resident->fingerprint));
  json.key("reliable");
  json.value(reliable);
  json.key("unsatisfied_comms");
  json.value(unsatisfied);
  if (report.has_value()) {
    json.key("report");
    json.raw(reliability::to_json(*report));
  }
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::do_synthesize(const JsonValue& body) {
  LRT_ASSIGN_OR_RETURN(const std::shared_ptr<Resident> resident,
                       resolve_workload(body, "request"));
  LRT_ASSIGN_OR_RETURN(
      std::vector<impl::ImplementationConfig::SensorBinding> bindings,
      decode_sensor_bindings(body, "request"));
  synth::SynthesisOptions options;  // greedy, fast engine, one thread
  if (const JsonValue* strategy = body.find("strategy")) {
    if (!strategy->is_string()) {
      return InvalidArgumentError("request.strategy must be a string");
    }
    if (strategy->string == "greedy") {
      options.strategy = synth::SynthesisOptions::Strategy::kGreedy;
    } else if (strategy->string == "exhaustive") {
      options.strategy = synth::SynthesisOptions::Strategy::kExhaustive;
    } else {
      return InvalidArgumentError(
          "request.strategy must be 'greedy' or 'exhaustive'");
    }
  }
  LRT_ASSIGN_OR_RETURN(const synth::SynthesisResult result,
                       lrt::synthesize(resident->workload,
                                       std::move(bindings), options));
  JsonWriter json;
  json.begin_object();
  json.key("fingerprint");
  json.value(format_fingerprint(resident->fingerprint));
  json.key("synthesis");
  json.raw(synth::to_json(result));
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::do_validate(const JsonValue& body) {
  LRT_ASSIGN_OR_RETURN(const std::shared_ptr<Resident> resident,
                       resolve_workload(body, "request"));
  LRT_ASSIGN_OR_RETURN(const JsonValue* impl_doc,
                       json_member(body, "implementation", "request"));
  LRT_ASSIGN_OR_RETURN(impl::ImplementationConfig config,
                       impl::implementation_config_from_json(*impl_doc));
  LRT_ASSIGN_OR_RETURN(
      const impl::Implementation impl,
      lrt::build_implementation(resident->workload, std::move(config)));
  sim::MonteCarloOptions options;
  // One thread in and under each campaign: the service worker pool is
  // the parallelism; nesting pools would oversubscribe.
  options.threads = 1;
  options.simulation.threads = 1;
  if (const JsonValue* trials = body.find("trials")) {
    LRT_ASSIGN_OR_RETURN(options.trials,
                         json_to_int(*trials, "request.trials"));
    if (options.trials <= 0) {
      return InvalidArgumentError("request.trials must be > 0");
    }
  }
  if (const JsonValue* seed = body.find("seed")) {
    LRT_ASSIGN_OR_RETURN(const std::int64_t value,
                         json_to_int(*seed, "request.seed"));
    options.seed = static_cast<std::uint64_t>(value);
  }
  if (const JsonValue* periods = body.find("periods")) {
    LRT_ASSIGN_OR_RETURN(options.simulation.periods,
                         json_to_int(*periods, "request.periods"));
    if (options.simulation.periods <= 0) {
      return InvalidArgumentError("request.periods must be > 0");
    }
  }
  LRT_ASSIGN_OR_RETURN(const sim::ValidationReport report,
                       lrt::validate(resident->workload, impl, options));
  JsonWriter json;
  json.begin_object();
  json.key("fingerprint");
  json.value(format_fingerprint(resident->fingerprint));
  json.key("validation");
  write_validation_json(report, json);
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::do_lint(const JsonValue& body) {
  LRT_ASSIGN_OR_RETURN(const std::string source,
                       json_member_string(body, "source", "request"));
  lint::LintOptions options;
  if (const JsonValue* file = body.find("file")) {
    if (!file->is_string()) {
      return InvalidArgumentError("request.file must be a string");
    }
    options.file = file->string;
  }
  LRT_ASSIGN_OR_RETURN(const lint::LintResult result,
                       lrt::check(source, options));
  JsonWriter json;
  json.begin_object();
  json.key("flattened");
  json.value(result.flattened);
  json.key("arch_checked");
  json.value(result.arch_checked);
  json.key("errors");
  json.value(result.errors());
  json.key("warnings");
  json.value(result.warnings());
  json.key("lint");
  json.raw(lint::to_json(result.diagnostics));
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::do_update_check(const JsonValue& body) {
  LRT_ASSIGN_OR_RETURN(const std::shared_ptr<Resident> resident,
                       resolve_workload(body, "request"));
  LRT_ASSIGN_OR_RETURN(const JsonValue* impl_doc,
                       json_member(body, "implementation", "request"));
  LRT_ASSIGN_OR_RETURN(impl::ImplementationConfig config,
                       impl::implementation_config_from_json(*impl_doc));
  LRT_ASSIGN_OR_RETURN(
      const impl::Implementation impl,
      lrt::build_implementation(resident->workload, std::move(config)));
  LRT_ASSIGN_OR_RETURN(const JsonValue* proposed_doc,
                       json_member(body, "proposed", "request"));
  LRT_ASSIGN_OR_RETURN(
      spec::SpecificationConfig proposed,
      spec::specification_config_from_json(*proposed_doc));
  LRT_ASSIGN_OR_RETURN(
      std::vector<impl::ImplementationConfig::SensorBinding> bindings,
      decode_sensor_bindings(body, "request"));

  // Propose-without-simulation: the verify stage (refinement fast path or
  // dirty-cone re-synthesis) runs to completion; the transaction stops at
  // kStaged/kRejected because no run ever reaches an install boundary.
  adapt::UpdateEngine engine(impl);
  LRT_RETURN_IF_ERROR(
      engine.propose(0, std::move(proposed), std::move(bindings)));
  const adapt::UpdateReport& report = engine.report();

  JsonWriter json;
  json.begin_object();
  json.key("fingerprint");
  json.value(format_fingerprint(resident->fingerprint));
  json.key("state");
  json.value(adapt::to_string(report.state));
  json.key("path");
  json.value(adapt::to_string(report.path));
  json.key("dirty_tasks");
  json.begin_array();
  for (const std::string& name : report.dirty_tasks) json.value(name);
  json.end_array();
  json.key("dirty_comms");
  json.begin_array();
  for (const std::string& name : report.dirty_comms) json.value(name);
  json.end_array();
  json.key("detail");
  json.value(report.detail);
  json.key("replication_count");
  json.value(report.replication_count);
  json.key("staged");
  if (engine.staged() != nullptr) {
    json.raw(impl::to_json(engine.staged()->to_config()));
  } else {
    json.null();
  }
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::do_batch(
    const JsonValue& body, std::int64_t arrival_ms,
    std::optional<std::int64_t> deadline_at_ms, bool* deadline_in_batch) {
  LRT_ASSIGN_OR_RETURN(const JsonValue* items,
                       json_member(body, "items", "request"));
  if (!items->is_array()) {
    return InvalidArgumentError("request.items must be an array");
  }
  JsonWriter json;
  json.begin_object();
  json.key("items");
  json.begin_array();
  for (std::size_t i = 0; i < items->array.size(); ++i) {
    const JsonValue& item = items->array[i];
    const std::string where = "request.items[" + std::to_string(i) + "]";
    std::optional<std::string> item_id;
    if (const JsonValue* id = item.find("id");
        id != nullptr && id->is_string()) {
      item_id = id->string;
    }
    std::string item_frame;
    if (deadline_at_ms.has_value() && now_ms() > *deadline_at_ms) {
      // Partial-result degradation: finished items stand; the rest get
      // typed timeout entries.
      *deadline_in_batch = true;
      item_frame = make_error_frame(
          item_id,
          DeadlineExceededError("batch deadline expired before item " +
                                std::to_string(i) + " ran"));
    } else {
      Result<Request> parsed = parse_request(item, where);
      if (!parsed.ok()) {
        item_frame = make_error_frame(item_id, parsed.status());
      } else if (parsed->verb == Verb::kBatch ||
                 parsed->verb == Verb::kShutdown) {
        item_frame = make_error_frame(
            parsed->id,
            InvalidArgumentError(where + ": verb '" +
                                 verb_name(parsed->verb) +
                                 "' is not allowed inside a batch"));
      } else {
        std::optional<std::int64_t> effective = deadline_at_ms;
        if (parsed->deadline_ms.has_value()) {
          const std::int64_t item_deadline =
              arrival_ms + *parsed->deadline_ms;
          effective = effective.has_value()
                          ? std::min(*effective, item_deadline)
                          : item_deadline;
        }
        bool item_shutdown = false;
        Result<std::string> result = run_verb(
            *parsed, arrival_ms, effective, &item_shutdown,
            deadline_in_batch);
        if (result.ok()) {
          item_frame = make_ok_frame(parsed->id, *result);
        } else {
          if (result.status().code() == StatusCode::kDeadlineExceeded) {
            *deadline_in_batch = true;
          }
          item_frame = make_error_frame(parsed->id, result.status());
        }
      }
    }
    json.raw(item_frame);
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

Result<std::string> Service::run_verb(
    const Request& request, std::int64_t arrival_ms,
    std::optional<std::int64_t> deadline_at_ms, bool* shutdown,
    bool* deadline_in_batch) {
  if (deadline_at_ms.has_value() && now_ms() > *deadline_at_ms) {
    return DeadlineExceededError(
        "deadline of request '" + request.id + "' expired before the " +
        std::string(verb_name(request.verb)) + " verb ran");
  }
  switch (request.verb) {
    case Verb::kPing: {
      JsonWriter json;
      json.begin_object();
      json.key("pong");
      json.value(true);
      json.end_object();
      return std::move(json).str();
    }
    case Verb::kShutdown: {
      *shutdown = true;
      JsonWriter json;
      json.begin_object();
      json.key("stopping");
      json.value(true);
      json.end_object();
      return std::move(json).str();
    }
    case Verb::kAnalyze:
      return do_analyze(*request.body);
    case Verb::kSynthesize:
      return do_synthesize(*request.body);
    case Verb::kValidate:
      return do_validate(*request.body);
    case Verb::kLint:
      return do_lint(*request.body);
    case Verb::kUpdateCheck:
      return do_update_check(*request.body);
    case Verb::kBatch:
      return do_batch(*request.body, arrival_ms, deadline_at_ms,
                      deadline_in_batch);
  }
  return InternalError("unhandled verb");
}

ServiceReply Service::handle(std::string_view request_frame) {
  obs::Sink* s = sink();
  const auto started = std::chrono::steady_clock::now();
  const auto record_latency = [&] {
    if (s == nullptr) return;
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    s->histogram_record("service.request_us",
                        static_cast<double>(elapsed.count()));
  };
  if (s != nullptr) s->counter_add("service.requests");
  const std::int64_t arrival_ms = now_ms();

  ServiceReply reply;
  const Result<JsonValue> document = parse_json(request_frame);
  if (!document.ok()) {
    reply.frame = make_error_frame(std::nullopt, document.status());
    if (s != nullptr) s->counter_add("service.errors");
    record_latency();
    return reply;
  }
  const Result<Request> request = parse_request(*document, "request");
  if (!request.ok()) {
    std::optional<std::string> id;
    if (const JsonValue* id_doc = document->find("id");
        id_doc != nullptr && id_doc->is_string()) {
      id = id_doc->string;
    }
    reply.frame = make_error_frame(id, request.status());
    if (s != nullptr) s->counter_add("service.errors");
    record_latency();
    return reply;
  }

  {
    const std::lock_guard<std::mutex> lock(idempotency_mutex_);
    const auto it = replays_.find(request->id);
    if (it != replays_.end()) {
      if (s != nullptr) s->counter_add("service.idempotent_replays");
      reply.frame = it->second;
      record_latency();
      return reply;
    }
  }

  const obs::SpanGuard span(s, "service", verb_name(request->verb));
  std::optional<std::int64_t> deadline_at_ms;
  if (request->deadline_ms.has_value()) {
    deadline_at_ms = arrival_ms + *request->deadline_ms;
  }
  bool shutdown = false;
  bool deadline_in_batch = false;
  const Result<std::string> result = run_verb(
      *request, arrival_ms, deadline_at_ms, &shutdown, &deadline_in_batch);

  bool cacheable = true;
  if (result.ok()) {
    reply.frame = make_ok_frame(request->id, *result);
    if (s != nullptr) s->counter_add("service.ok");
  } else {
    reply.frame = make_error_frame(request->id, result.status());
    if (s != nullptr) s->counter_add("service.errors");
    const StatusCode code = result.status().code();
    if (code == StatusCode::kUnavailable ||
        code == StatusCode::kDeadlineExceeded) {
      cacheable = false;
    }
  }
  if (deadline_in_batch) cacheable = false;
  if (!result.ok() &&
      result.status().code() == StatusCode::kDeadlineExceeded) {
    if (s != nullptr) s->counter_add("service.deadline_expired");
  }
  if (deadline_in_batch && s != nullptr) {
    s->counter_add("service.deadline_expired");
  }
  reply.shutdown = shutdown;

  // Retryable outcomes (kUnavailable, kDeadlineExceeded, partial
  // batches) are never remembered: a retry of the same id must get a
  // fresh attempt, not the failure replayed.
  if (cacheable) {
    const std::lock_guard<std::mutex> lock(idempotency_mutex_);
    if (replays_.emplace(request->id, reply.frame).second) {
      replay_order_.push_back(request->id);
      while (replays_.size() > options_.max_idempotency_entries &&
             !replay_order_.empty()) {
        replays_.erase(replay_order_.front());
        replay_order_.pop_front();
      }
    }
  }
  record_latency();
  return reply;
}

}  // namespace lrt::service
