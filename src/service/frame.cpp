#include "service/frame.h"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <unistd.h>

namespace lrt::service {

namespace {

Status write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ::ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return UnavailableError("peer closed the connection");
      }
      return InternalError(std::string("frame write failed: ") +
                           std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return Status::Ok();
}

/// Reads exactly `size` bytes. Returns false on EOF before the first
/// byte (only meaningful with allow_eof), errors on EOF mid-read.
Result<bool> read_all(int fd, char* data, std::size_t size,
                      bool allow_eof) {
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return UnavailableError("connection reset mid-frame");
      }
      return InternalError(std::string("frame read failed: ") +
                           std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && allow_eof) return false;
      return UnavailableError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return InvalidArgumentError("frame payload exceeds " +
                                std::to_string(kMaxFramePayload) +
                                " bytes");
  }
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(size >> 24),
                    static_cast<char>(size >> 16),
                    static_cast<char>(size >> 8),
                    static_cast<char>(size)};
  LRT_RETURN_IF_ERROR(write_all(fd, prefix, sizeof prefix));
  return write_all(fd, payload.data(), payload.size());
}

Result<std::optional<std::string>> read_frame(int fd) {
  char prefix[4];
  LRT_ASSIGN_OR_RETURN(
      const bool have_frame,
      read_all(fd, prefix, sizeof prefix, /*allow_eof=*/true));
  if (!have_frame) return std::optional<std::string>();
  const std::uint32_t size =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (size > kMaxFramePayload) {
    return InvalidArgumentError("frame length " + std::to_string(size) +
                                " exceeds the " +
                                std::to_string(kMaxFramePayload) +
                                "-byte limit");
  }
  std::string payload(size, '\0');
  LRT_ASSIGN_OR_RETURN(const bool complete,
                       read_all(fd, payload.data(), payload.size(),
                                /*allow_eof=*/false));
  (void)complete;
  return std::optional<std::string>(std::move(payload));
}

}  // namespace lrt::service
