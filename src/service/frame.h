// Length-prefixed framing for the lrtd wire protocol (DESIGN.md §5k).
//
// One frame = a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. The prefix makes message boundaries explicit on
// a stream socket, so neither side ever scans payload bytes for a
// terminator, and an oversized length is rejected before any payload is
// read — the omission-failure stance of the related work: a truncated
// or garbled peer produces a typed error, never a hang on garbage.
#ifndef LRT_SERVICE_FRAME_H_
#define LRT_SERVICE_FRAME_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "support/status.h"

namespace lrt::service {

/// Frames larger than this are rejected on read (kInvalidArgument) and
/// refused on write — a defense against a desynchronized peer whose
/// "length" is really payload bytes.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Writes one frame, retrying on EINTR/partial writes. kUnavailable on
/// a closed peer (EPIPE/ECONNRESET), kInternal on other I/O errors.
[[nodiscard]] Status write_frame(int fd, std::string_view payload);

/// Reads one frame. nullopt on clean EOF at a frame boundary;
/// kUnavailable on a connection reset or EOF mid-frame; kInvalidArgument
/// on an oversized length prefix.
[[nodiscard]] Result<std::optional<std::string>> read_frame(int fd);

}  // namespace lrt::service

#endif  // LRT_SERVICE_FRAME_H_
