// A minimal blocking client for the lrtd socket: one connection, one
// request/response exchange at a time. The CLI verbs (`lrtd ping`,
// `lrtd shutdown`), the load generator, and the service tests sit on it.
#ifndef LRT_SERVICE_CLIENT_H_
#define LRT_SERVICE_CLIENT_H_

#include <string>
#include <string_view>

#include "support/status.h"

namespace lrt::service {

class Client {
 public:
  /// Connects to the server's AF_UNIX socket. kUnavailable when nothing
  /// listens at the path.
  [[nodiscard]] static Result<Client> Connect(
      const std::string& socket_path);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame and blocks for its response frame.
  /// kUnavailable when the server closes the connection mid-exchange.
  [[nodiscard]] Result<std::string> call(std::string_view request_frame);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace lrt::service

#endif  // LRT_SERVICE_CLIENT_H_
