// The lrtd request handler: batched multi-tenant analysis over the wire
// vocabulary (DESIGN.md §5k), independent of any transport.
//
// One Service instance serves many workloads concurrently. Workloads are
// keyed by lrt::fingerprint() of their canonical spec+arch serialization;
// a hot workload stays *resident* — its built models plus a live
// reliability::SrgEvaluator primed with the last analyzed implementation —
// so an analyze request that mutates one task's host set costs a single
// dirty-cone re-propagation instead of a full build-and-analyze. Delta
// analyzes answer with a compact verdict ({reliable, unsatisfied_comms})
// so the response cost matches the work; "full_report": true opts into
// the full per-communicator report, byte-identical to the cold path's.
// The resident set is LRU-bounded (ServiceOptions::max_resident_workloads);
// an evicted workload is simply rebuilt on its next full request.
//
// Guarantees:
//  * Responses are byte-identical to the one-shot facade calls they wrap
//    (the SrgEvaluator bit-identity contract carries the hit path), and
//    depend only on the request sequence observed — never on worker
//    count, cache temperature, or wall-clock time. Thread-variant fields
//    (campaign timing, search-effort counters) are excluded from the
//    wire.
//  * A failed request never poisons resident state: validation runs
//    before any mutation, and an evaluator is (re)primed only after a
//    fully successful cold analysis.
//  * Requests are idempotent by id: a replayed id returns the cached
//    response bytes without re-executing. Responses that advise retry
//    (kUnavailable, kDeadlineExceeded) are never cached.
//  * `deadline_ms` is enforced at verb boundaries: before a verb runs
//    and between batch items, where an expired deadline degrades the
//    remaining items to typed kDeadlineExceeded entries (partial
//    results) instead of discarding the finished ones.
#ifndef LRT_SERVICE_SERVICE_H_
#define LRT_SERVICE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/sink.h"
#include "service/protocol.h"
#include "support/status.h"

namespace lrt::service {

struct ServiceOptions {
  /// Workloads kept resident (built models + primed evaluator); least
  /// recently used is evicted beyond this. Minimum 1.
  std::size_t max_resident_workloads = 8;
  /// Request ids remembered for idempotent replay (FIFO eviction).
  std::size_t max_idempotency_entries = 1024;
  /// Monotonic milliseconds for deadline accounting; null uses
  /// std::chrono::steady_clock. Injectable for deterministic tests.
  std::function<std::int64_t()> clock_ms;
  /// Observability: service.* counters, per-request "service" spans, and
  /// the service.request_us latency histogram. Null falls back to the
  /// process-global sink.
  obs::Sink* sink = nullptr;
};

struct ServiceReply {
  /// The response frame payload (JSON, no length prefix).
  std::string frame;
  /// True once a shutdown request was accepted; the transport should
  /// stop accepting work after delivering this reply.
  bool shutdown = false;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Handles one request frame end to end. Thread-safe across frames;
  /// the transport must deliver each connection's frames in submission
  /// order (per-connection FIFO) for the determinism guarantee to apply
  /// to that connection's response sequence.
  [[nodiscard]] ServiceReply handle(std::string_view request_frame);

  /// Workloads currently resident (for tests and the bench).
  [[nodiscard]] std::size_t resident_count() const;

 private:
  struct Resident;

  [[nodiscard]] std::int64_t now_ms() const;
  [[nodiscard]] obs::Sink* sink() const;

  [[nodiscard]] Result<std::shared_ptr<Resident>> resolve_workload(
      const JsonValue& body, std::string_view where);
  void touch_locked(std::uint64_t fingerprint);

  [[nodiscard]] Result<std::string> run_verb(
      const Request& request, std::int64_t arrival_ms,
      std::optional<std::int64_t> deadline_at_ms, bool* shutdown,
      bool* deadline_in_batch);
  [[nodiscard]] Result<std::string> do_analyze(const JsonValue& body);
  [[nodiscard]] Result<std::string> do_synthesize(const JsonValue& body);
  [[nodiscard]] Result<std::string> do_validate(const JsonValue& body);
  [[nodiscard]] Result<std::string> do_lint(const JsonValue& body);
  [[nodiscard]] Result<std::string> do_update_check(const JsonValue& body);
  [[nodiscard]] Result<std::string> do_batch(
      const JsonValue& body, std::int64_t arrival_ms,
      std::optional<std::int64_t> deadline_at_ms, bool* deadline_in_batch);

  ServiceOptions options_;

  mutable std::mutex cache_mutex_;
  /// Most recently used first.
  std::list<std::uint64_t> lru_;
  struct CacheEntry {
    std::shared_ptr<Resident> resident;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::unordered_map<std::uint64_t, CacheEntry> residents_;

  std::mutex idempotency_mutex_;
  std::unordered_map<std::string, std::string> replays_;
  std::list<std::string> replay_order_;  ///< oldest first
};

}  // namespace lrt::service

#endif  // LRT_SERVICE_SERVICE_H_
