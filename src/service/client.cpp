#include "service/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/frame.h"

namespace lrt::service {

Result<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path '" + socket_path +
                                "' exceeds the AF_UNIX path limit");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket() failed: ") +
                         std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int error = errno;
    ::close(fd);
    return UnavailableError("connect('" + socket_path +
                            "') failed: " + std::strerror(error));
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> Client::call(std::string_view request_frame) {
  if (fd_ < 0) {
    return FailedPreconditionError("client connection was moved out");
  }
  LRT_RETURN_IF_ERROR(write_frame(fd_, request_frame));
  LRT_ASSIGN_OR_RETURN(std::optional<std::string> response,
                       read_frame(fd_));
  if (!response.has_value()) {
    return UnavailableError("server closed the connection");
  }
  return std::move(*response);
}

}  // namespace lrt::service
