// The lrtd wire vocabulary (DESIGN.md §5k): the request envelope, the
// verb set, and the two response shapes every reply uses.
//
// Request envelope (one JSON object per frame):
//   {"schema": 1, "id": "<caller-chosen>", "verb": "analyze",
//    "deadline_ms": 250, ...verb-specific fields...}
// `id` is required — it keys idempotent replay — and `deadline_ms` is
// optional, relative to the request's arrival at the service.
//
// Response envelope:
//   {"schema": 1, "id": <id|null>, "ok": true,  "result": {...}}
//   {"schema": 1, "id": <id|null>, "ok": false,
//    "error": {"code": "kInvalidArgument", "message": "..."}}
// Error codes travel as the wire-stable status_code_name() spellings; a
// null id means the request was too malformed to extract one.
#ifndef LRT_SERVICE_PROTOCOL_H_
#define LRT_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.h"
#include "support/status.h"

namespace lrt::service {

/// Version stamped on (and required from) every request and response
/// envelope. Distinct from spec::kConfigSchemaVersion: the envelope and
/// the config documents it embeds version independently.
inline constexpr std::int64_t kWireSchemaVersion = 1;

enum class Verb {
  kPing,
  kAnalyze,
  kSynthesize,
  kValidate,
  kLint,
  kUpdateCheck,
  kBatch,
  kShutdown,
};

/// Wire spelling ("update_check"); static storage, usable as a span name.
[[nodiscard]] const char* verb_name(Verb verb);
[[nodiscard]] std::optional<Verb> verb_from_name(std::string_view name);

/// The decoded envelope. `body` aliases the parsed request document (the
/// verb-specific fields live there); the document must outlive the
/// Request.
struct Request {
  std::string id;
  Verb verb = Verb::kPing;
  /// Relative deadline in milliseconds from arrival; nullopt = none.
  std::optional<std::int64_t> deadline_ms;
  const JsonValue* body = nullptr;
};

/// Decodes and validates the envelope fields. `where` prefixes error
/// paths ("request", "request.items[2]").
[[nodiscard]] Result<Request> parse_request(const JsonValue& document,
                                            std::string_view where);

/// {"schema":1,"id":"...","ok":true,"result":<result_json>}. The caller
/// vouches that `result_json` is one well-formed JSON value.
[[nodiscard]] std::string make_ok_frame(std::string_view id,
                                        std::string_view result_json);

/// {"schema":1,"id":...,"ok":false,"error":{...}}. A nullopt id renders
/// as null. Precondition: !error.ok().
[[nodiscard]] std::string make_error_frame(
    const std::optional<std::string>& id, const Status& error);

/// Best-effort id recovery from a raw request frame, for error replies to
/// requests that never reach the service (the reader-side load shed).
/// nullopt when the frame does not parse to an object with a string id.
[[nodiscard]] std::optional<std::string> extract_request_id(
    std::string_view frame);

/// The cache key rendered for the wire: 16 lowercase hex digits.
[[nodiscard]] std::string format_fingerprint(std::uint64_t fingerprint);
[[nodiscard]] std::optional<std::uint64_t> parse_fingerprint(
    std::string_view text);

}  // namespace lrt::service

#endif  // LRT_SERVICE_PROTOCOL_H_
