#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/sink.h"
#include "service/frame.h"
#include "service/protocol.h"

namespace lrt::service {

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  threads_ = options_.threads != 0
                 ? options_.threads
                 : std::max(1u, std::thread::hardware_concurrency());
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  LRT_RETURN_IF_ERROR(server->Bind());
  server->listener_ = std::thread([raw = server.get()] {
    raw->listener_loop();
  });
  server->pool_ = std::make_unique<ThreadPool>(server->threads_);
  server->dispatcher_ = std::thread([raw = server.get()] {
    raw->pool_->parallel_for(
        static_cast<std::int64_t>(raw->threads_),
        [raw](std::int64_t) { raw->worker_loop(); });
  });
  return server;
}

Status Server::Bind() {
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("ServerOptions::socket_path is required");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path '" + options_.socket_path +
                                "' exceeds the AF_UNIX path limit");
  }
  // A worker writing to a client that hung up must see EPIPE, not die.
  std::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket() failed: ") +
                         std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return InternalError("bind('" + options_.socket_path +
                         "') failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return InternalError(std::string("listen() failed: ") +
                         std::strerror(errno));
  }
  return Status::Ok();
}

void Server::listener_loop() {
  while (accepting_.load(std::memory_order_relaxed)) {
    pollfd poll_fd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_shared<Connection>(fd);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (draining_) {
        continue;  // Connection destructor closes the fd.
      }
      connections_.push_back(connection);
      readers_.emplace_back([this, connection] { reader_loop(connection); });
    }
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& connection) {
  obs::Sink* sink = obs::resolve_sink(options_.service.sink);
  while (true) {
    Result<std::optional<std::string>> frame = read_frame(connection->fd);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        // Oversized length prefix: the stream is beyond resync; answer
        // once, then drop the connection.
        const std::lock_guard<std::mutex> lock(connection->write_mutex);
        (void)write_frame(connection->fd,
                          make_error_frame(std::nullopt, frame.status()));
      }
      break;
    }
    if (!frame->has_value()) break;  // clean EOF
    std::string payload = std::move(**frame);

    bool shed = false;
    Status shed_status = Status::Ok();
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (draining_) {
        shed = true;
        shed_status = UnavailableError("server is shutting down");
      } else if (pending_ >= options_.max_pending) {
        shed = true;
        shed_status = UnavailableError(
            "server overloaded: " + std::to_string(pending_) +
            " requests pending; retry later");
      } else {
        ++pending_;
        connection->queue.push_back(std::move(payload));
        if (!connection->busy && connection->queue.size() == 1) {
          ready_.push_back(connection);
          ready_cv_.notify_one();
        }
      }
    }
    if (shed) {
      // Reader-side load shed: the request never reaches the service, so
      // the typed reply is written here, before the next read.
      if (sink != nullptr) sink->counter_add("service.shed");
      const std::lock_guard<std::mutex> lock(connection->write_mutex);
      (void)write_frame(connection->fd,
                        make_error_frame(extract_request_id(payload),
                                         shed_status));
    }
  }
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  connection->eof = true;
  remove_if_done_locked(connection);
}

void Server::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    ready_cv_.wait(lock,
                   [this] { return workers_done_ || !ready_.empty(); });
    if (workers_done_) return;
    const std::shared_ptr<Connection> connection = ready_.front();
    ready_.pop_front();
    connection->busy = true;
    std::string payload = std::move(connection->queue.front());
    connection->queue.pop_front();
    lock.unlock();

    const ServiceReply reply = service_.handle(payload);
    {
      const std::lock_guard<std::mutex> write_lock(
          connection->write_mutex);
      (void)write_frame(connection->fd, reply.frame);
    }

    lock.lock();
    connection->busy = false;
    --pending_;
    if (!connection->queue.empty()) {
      ready_.push_back(connection);
      ready_cv_.notify_one();
    } else {
      remove_if_done_locked(connection);
    }
    if (reply.shutdown) {
      draining_ = true;
      accepting_.store(false, std::memory_order_relaxed);
    }
    finish_if_drained_locked();
  }
}

void Server::finish_if_drained_locked() {
  if (!draining_ || pending_ != 0 || workers_done_) return;
  workers_done_ = true;
  accepting_.store(false, std::memory_order_relaxed);
  ready_cv_.notify_all();
  done_cv_.notify_all();
  // Unblock every reader parked in read(); they exit via EOF.
  for (const std::shared_ptr<Connection>& connection : connections_) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

void Server::remove_if_done_locked(
    const std::shared_ptr<Connection>& connection) {
  if (!connection->eof || connection->busy || !connection->queue.empty()) {
    return;
  }
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), connection),
      connections_.end());
}

void Server::Stop() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  draining_ = true;
  accepting_.store(false, std::memory_order_relaxed);
  finish_if_drained_locked();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    done_cv_.wait(lock, [this] { return workers_done_; });
    if (joined_) return;
    joined_ = true;
  }
  if (listener_.joinable()) listener_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> readers;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    readers.swap(readers_);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
}

Server::~Server() {
  Stop();
  if (listener_.joinable() || dispatcher_.joinable() || !joined_) {
    Wait();
  }
}

}  // namespace lrt::service
