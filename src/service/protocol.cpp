#include "service/protocol.h"

#include <array>
#include <utility>

namespace lrt::service {
namespace {

constexpr std::array<std::pair<Verb, const char*>, 8> kVerbNames = {{
    {Verb::kPing, "ping"},
    {Verb::kAnalyze, "analyze"},
    {Verb::kSynthesize, "synthesize"},
    {Verb::kValidate, "validate"},
    {Verb::kLint, "lint"},
    {Verb::kUpdateCheck, "update_check"},
    {Verb::kBatch, "batch"},
    {Verb::kShutdown, "shutdown"},
}};

}  // namespace

const char* verb_name(Verb verb) {
  for (const auto& [v, name] : kVerbNames) {
    if (v == verb) return name;
  }
  return "ping";
}

std::optional<Verb> verb_from_name(std::string_view name) {
  for (const auto& [v, n] : kVerbNames) {
    if (name == n) return v;
  }
  return std::nullopt;
}

Result<Request> parse_request(const JsonValue& document,
                              std::string_view where) {
  if (!document.is_object()) {
    return InvalidArgumentError(std::string(where) +
                                " must be a JSON object");
  }
  LRT_RETURN_IF_ERROR(
      json_check_schema(document, kWireSchemaVersion, where));
  Request request;
  LRT_ASSIGN_OR_RETURN(request.id,
                       json_member_string(document, "id", where));
  LRT_ASSIGN_OR_RETURN(const std::string verb,
                       json_member_string(document, "verb", where));
  const std::optional<Verb> parsed = verb_from_name(verb);
  if (!parsed.has_value()) {
    return InvalidArgumentError(std::string(where) + ".verb: unknown verb '" +
                                verb + "'");
  }
  request.verb = *parsed;
  if (const JsonValue* deadline = document.find("deadline_ms")) {
    LRT_ASSIGN_OR_RETURN(
        const std::int64_t ms,
        json_to_int(*deadline, std::string(where) + ".deadline_ms"));
    if (ms < 0) {
      return InvalidArgumentError(std::string(where) +
                                  ".deadline_ms must be >= 0");
    }
    request.deadline_ms = ms;
  }
  request.body = &document;
  return request;
}

std::string make_ok_frame(std::string_view id,
                          std::string_view result_json) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("ok");
  json.value(true);
  json.key("result");
  json.raw(result_json);
  json.end_object();
  return std::move(json).str();
}

std::string make_error_frame(const std::optional<std::string>& id,
                             const Status& error) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(kWireSchemaVersion);
  json.key("id");
  if (id.has_value()) {
    json.value(*id);
  } else {
    json.null();
  }
  json.key("ok");
  json.value(false);
  json.key("error");
  json.begin_object();
  json.key("code");
  json.value(status_code_name(error.code()));
  json.key("message");
  json.value(error.message());
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

std::optional<std::string> extract_request_id(std::string_view frame) {
  Result<JsonValue> parsed = parse_json(frame);
  if (!parsed.ok()) return std::nullopt;
  const JsonValue* id = parsed->find("id");
  if (id == nullptr || !id->is_string()) return std::nullopt;
  return id->string;
}

std::string format_fingerprint(std::uint64_t fingerprint) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_fingerprint(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

}  // namespace lrt::service
