// The lrtd transport: an AF_UNIX stream server delivering framed
// requests to a Service over a worker pool (DESIGN.md §5k).
//
// Threading model:
//  * one listener thread accepts connections;
//  * one reader thread per connection decodes frames and enqueues them.
//    Admission control happens here: when the global pending count is at
//    ServerOptions::max_pending, the reader sheds the request with a
//    typed kUnavailable reply instead of queueing unbounded work;
//  * a fixed pool of workers (support/thread_pool) drains a ready-queue
//    of connections. Each connection is FIFO: at most one of its
//    requests is in flight at a time and responses go back in request
//    order, which is what makes a connection's response bytes
//    independent of the worker count.
//
// Shutdown (the `shutdown` verb or Stop()) is graceful: the listener
// stops accepting, queued requests drain, workers exit, and the socket
// path is unlinked.
#ifndef LRT_SERVICE_SERVER_H_
#define LRT_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace lrt::service {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX socket; created on Start (an
  /// existing file at the path is replaced) and unlinked on shutdown.
  std::string socket_path;
  /// Worker parallelism (including the dispatcher); 0 picks
  /// std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Global bound on queued-but-unstarted requests; past it, new frames
  /// are answered with kUnavailable by the reader (load shed, counted as
  /// service.shed).
  std::size_t max_pending = 128;
  ServiceOptions service;
};

class Server {
 public:
  /// Binds the socket and starts the listener and worker threads.
  [[nodiscard]] static Result<std::unique_ptr<Server>> Start(
      ServerOptions options);

  /// Stops (if still running), joins every thread, closes every fd, and
  /// unlinks the socket path.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Begins a graceful shutdown: stop accepting, drain the queue.
  /// Idempotent; returns without waiting.
  void Stop();

  /// Blocks until shutdown completes (triggered by the `shutdown` verb
  /// or Stop()) and joins every thread.
  void Wait();

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  struct Connection {
    explicit Connection(int connection_fd) : fd(connection_fd) {}
    ~Connection();
    int fd = -1;
    std::mutex write_mutex;       ///< serializes response/shed frames
    std::deque<std::string> queue;  ///< decoded frames awaiting a worker
    bool busy = false;            ///< a worker is handling a request
    bool eof = false;             ///< reader finished
  };

  explicit Server(ServerOptions options);

  [[nodiscard]] Status Bind();
  void listener_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  void worker_loop();
  /// With queue_mutex_ held: completes the drain once stopping and idle.
  void finish_if_drained_locked();
  void remove_if_done_locked(const std::shared_ptr<Connection>& connection);

  ServerOptions options_;
  unsigned threads_ = 1;
  Service service_;

  int listen_fd_ = -1;
  std::atomic<bool> accepting_{true};
  std::thread listener_;
  std::thread dispatcher_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex queue_mutex_;
  std::condition_variable ready_cv_;  ///< workers: ready_ / workers_done_
  std::condition_variable done_cv_;   ///< Wait(): workers_done_ only
  std::deque<std::shared_ptr<Connection>> ready_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  std::size_t pending_ = 0;  ///< queued + in-flight requests
  bool draining_ = false;
  bool workers_done_ = false;
  bool joined_ = false;
};

}  // namespace lrt::service

#endif  // LRT_SERVICE_SERVER_H_
