// Internals shared between the synthesis engines, plus the fast engine
// itself (see synthesis.h for the user-facing contract).
//
// The fast engine evaluates candidates with reliability::SrgEvaluator
// (incremental SRG re-propagation, undo-trail backtracking) instead of the
// reference engine's per-candidate Implementation::Build + analyze, gates
// complete mappings with a memoized per-host EDF check, prunes subtrees by
// the admissible SRG ceiling (remaining tasks at full replication), and
// can explore top-level exhaustive subtrees in parallel while returning
// the exact mapping the sequential reference engine returns.
#ifndef LRT_SYNTH_FAST_ENGINE_H_
#define LRT_SYNTH_FAST_ENGINE_H_

#include <vector>

#include "synth/synthesis.h"

namespace lrt::synth::internal {

/// All nonempty subsets of the usable hosts with at most `max_size`
/// elements, ordered by cardinality ascending, each cardinality class by
/// descending combined reliability. Shared by both engines — the
/// exhaustive search order (and therefore the deterministic-result
/// contract) is defined by this list. `usable.size()` must be at most
/// kMaxExhaustiveHosts (enforced by synthesize()); the mask is 64-bit so
/// the enumeration itself is correct up to 63 hosts.
[[nodiscard]] std::vector<std::vector<arch::HostId>> candidate_subsets(
    const arch::Architecture& arch, const std::vector<arch::HostId>& usable,
    int max_size);

/// The ImplementationConfig for a host-set-per-task assignment, with the
/// options' per-task time redundancy applied. Shared by both engines so
/// their winning configs are structurally identical.
[[nodiscard]] impl::ImplementationConfig assignment_config(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<std::vector<arch::HostId>>& assignment,
    const SynthesisOptions& options);

/// True when every (task, usable host) pair has WCET and WCTT entries, so
/// the fast engine can precompute its timing tables up front. When false,
/// synthesize() falls back to the reference engine, which only touches
/// the table entries of candidates it actually evaluates (and therefore
/// may succeed, or fail later with the lookup error — either way exactly
/// as the reference engine always behaved).
[[nodiscard]] bool timing_tables_complete(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<arch::HostId>& usable);

/// Fast branch-and-bound exhaustive search. Deterministic: returns the
/// minimal-cost valid mapping that is lexicographically least in
/// candidate_subsets order, for every options.threads value — the same
/// mapping the reference engine finds. `usable` must be ascending and
/// duplicate-free.
[[nodiscard]] Result<SynthesisResult> fast_exhaustive(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<arch::HostId>& usable, const SynthesisOptions& options);

/// Fast greedy repair loop: replays the reference greedy's decision
/// sequence exactly (same start host, same most-violated communicator,
/// same repair move, same error messages) over incremental SRG updates.
[[nodiscard]] Result<SynthesisResult> fast_greedy(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<arch::HostId>& usable, const SynthesisOptions& options);

}  // namespace lrt::synth::internal

#endif  // LRT_SYNTH_FAST_ENGINE_H_
