// JSON codec for the synthesis result summary the lrtd synthesize verb
// returns: the winning implementation config (canonical impl document)
// plus the deterministic search statistics. Search-effort counters that
// vary with thread count (cache hits/misses, prunes, incumbent updates)
// are deliberately excluded — lrtd responses must be byte-identical for
// every worker count, so only the mapping and its cost travel the wire.
#ifndef LRT_SYNTH_SYNTH_JSON_H_
#define LRT_SYNTH_SYNTH_JSON_H_

#include <string>

#include "support/json.h"
#include "support/status.h"
#include "synth/synthesis.h"

namespace lrt::synth {

/// {"implementation": <canonical impl config>, "replication_count": n}.
void write_json(const SynthesisResult& result, JsonWriter& json);
[[nodiscard]] std::string to_json(const SynthesisResult& result);

/// Summary decoded from the wire: `config` and `replication_count` are
/// restored, the search-effort counters stay zero.
[[nodiscard]] Result<SynthesisResult> synthesis_result_from_json(
    const JsonValue& document);

}  // namespace lrt::synth

#endif  // LRT_SYNTH_SYNTH_JSON_H_
