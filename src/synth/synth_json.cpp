#include "synth/synth_json.h"

#include <utility>

#include "impl/impl_json.h"

namespace lrt::synth {

void write_json(const SynthesisResult& result, JsonWriter& json) {
  json.begin_object();
  json.key("implementation");
  impl::write_json(result.config, json);
  json.key("replication_count");
  json.value(result.replication_count);
  json.end_object();
}

std::string to_json(const SynthesisResult& result) {
  JsonWriter json;
  write_json(result, json);
  return std::move(json).str();
}

Result<SynthesisResult> synthesis_result_from_json(
    const JsonValue& document) {
  SynthesisResult result;
  LRT_ASSIGN_OR_RETURN(
      const JsonValue* implementation,
      json_member(document, "implementation", "synthesis"));
  LRT_ASSIGN_OR_RETURN(result.config,
                       impl::implementation_config_from_json(*implementation));
  LRT_ASSIGN_OR_RETURN(
      const std::int64_t replication_count,
      json_member_int(document, "replication_count", "synthesis"));
  result.replication_count =
      static_cast<std::size_t>(replication_count);
  return result;
}

}  // namespace lrt::synth
