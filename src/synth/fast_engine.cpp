#include "synth/fast_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "reliability/incremental.h"
#include "sched/schedulability.h"
#include "support/hash.h"
#include "support/thread_pool.h"

namespace lrt::synth::internal {
namespace {

using arch::HostId;
using spec::CommId;
using spec::TaskId;
using spec::Time;

constexpr std::int64_t kNoIncumbent = std::numeric_limits<std::int64_t>::max();

struct WordsHash {
  std::size_t operator()(const std::vector<std::uint64_t>& words) const {
    return static_cast<std::size_t>(hash_words(words));
  }
};

/// Per-(task, usable host) job templates: every candidate mapping's job
/// set is a selection from this table, so it is computed once per search.
struct TimingTables {
  std::vector<sched::JobWindow> jobs;  ///< [task * usable.size() + u]
  std::vector<Time> wctt;              ///< same indexing (bus demand)
};

/// Memoized per-host EDF feasibility. The verdict of one host's EDF
/// simulation depends only on the set of tasks mapped onto it (each
/// (task, host) job is fixed by the timing tables), so it is cached per
/// (usable host, task bitset). Thread-safe: one mutex-guarded map per
/// usable host; on a miss the simulation runs outside the lock (duplicate
/// computation between racing threads is benign — same verdict).
class SchedGate {
 public:
  SchedGate(std::size_t num_tasks, std::size_t num_usable,
            std::vector<sched::JobWindow> jobs)
      : words_((num_tasks + 63) / 64),
        num_usable_(num_usable),
        jobs_(std::move(jobs)),
        shards_(num_usable) {}

  /// Words per task bitset.
  [[nodiscard]] std::size_t words() const { return words_; }

  /// EDF feasibility of usable host `u` running exactly the tasks whose
  /// bits are set in `taskset`. `key_buf`/`job_buf` are caller-owned
  /// scratch (no allocation on the hit path in steady state).
  bool feasible(std::size_t u, std::span<const std::uint64_t> taskset,
                std::int64_t& hits, std::int64_t& misses,
                std::vector<std::uint64_t>& key_buf,
                std::vector<sched::JobWindow>& job_buf) {
    key_buf.assign(taskset.begin(), taskset.end());
    Shard& shard = shards_[u];
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.verdicts.find(key_buf);
      if (it != shard.verdicts.end()) {
        ++hits;
        return it->second;
      }
    }
    ++misses;
    job_buf.clear();
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = taskset[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        job_buf.push_back(jobs_[(w * 64 + bit) * num_usable_ + u]);
      }
    }
    const bool ok = sched::edf_feasible(job_buf);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.verdicts.emplace(key_buf, ok);
    return ok;
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::vector<std::uint64_t>, bool, WordsHash> verdicts;
  };

  std::size_t words_;
  std::size_t num_usable_;
  std::vector<sched::JobWindow> jobs_;
  std::vector<Shard> shards_;
};

/// The full-replication mapping over the usable hosts, with the options'
/// redundancy applied — one Implementation::Build that both validates the
/// caller's sensor bindings (identically to the reference engine's first
/// candidate build) and seeds the SRG ceiling evaluator.
Result<impl::Implementation> build_ceiling(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<HostId>& usable, const SynthesisOptions& options) {
  std::vector<std::vector<HostId>> assignment(spec.tasks().size(), usable);
  // A pinned task never leaves its pinned set, so the ceiling — the
  // admissible SRG upper bound every subtree is scored against — seeds it
  // with that set instead of full replication. This tightens the bound and
  // detects pin-infeasible problems before any search starts.
  if (!options.pinned_hosts.empty()) {
    for (std::size_t t = 0; t < assignment.size(); ++t) {
      if (!options.pinned_hosts[t].empty()) {
        assignment[t] = options.pinned_hosts[t];
      }
    }
  }
  return impl::Implementation::Build(
      spec, arch,
      assignment_config(spec, arch, bindings, assignment, options));
}

Result<TimingTables> build_timing_tables(const spec::Specification& spec,
                                         const arch::Architecture& arch,
                                         const std::vector<HostId>& usable,
                                         const impl::Implementation& ceiling) {
  TimingTables tables;
  const std::size_t num_tasks = spec.tasks().size();
  tables.jobs.resize(num_tasks * usable.size());
  tables.wctt.resize(num_tasks * usable.size());
  for (TaskId t = 0; t < static_cast<TaskId>(num_tasks); ++t) {
    const spec::Task& task = spec.task(t);
    for (std::size_t u = 0; u < usable.size(); ++u) {
      const HostId h = usable[u];
      LRT_ASSIGN_OR_RETURN(const Time wcet, arch.wcet(task.name, h));
      LRT_ASSIGN_OR_RETURN(const Time wctt, arch.wctt(task.name, h));
      sched::JobWindow job;
      job.task = t;
      job.host = h;
      job.release = spec.read_time(t);
      job.deadline = spec.write_time(t) - wctt;
      job.wcet = ceiling.reserved_demand(t, wcet);
      job.wctt = wctt;
      const std::size_t slot = static_cast<std::size_t>(t) * usable.size() + u;
      tables.jobs[slot] = job;
      tables.wctt[slot] = wctt;
    }
  }
  return tables;
}

/// Parallel best-first branch-and-bound over per-task host subsets.
///
/// Invariant: while the search sits at depth t, tasks [0, t) carry their
/// chosen subsets and tasks [t, n) still carry the full usable host set
/// (the ceiling the evaluator was seeded with). all_lrcs_satisfied() at
/// that state is therefore an admissible upper bound on every completion
/// of the prefix — if it already fails, the subtree cannot contain a
/// valid mapping.
///
/// Determinism: the incumbent is the minimum of (cost, path) over valid
/// leaves, where path is the per-task subset-index vector. A subtree is
/// pruned only when it provably cannot hold that minimum: its cost lower
/// bound strictly exceeds a known valid candidate's cost, or equals it
/// while the subtree's path prefix is already lexicographically greater
/// than that candidate's path. Both tests stay valid against a stale
/// incumbent snapshot, so the winner is independent of thread scheduling
/// and equal to the sequential reference engine's first minimal-cost leaf.
class BnbSearch {
 public:
  BnbSearch(const spec::Specification& spec, const arch::Architecture& arch,
            const std::vector<impl::ImplementationConfig::SensorBinding>&
                bindings,
            const std::vector<HostId>& usable, const SynthesisOptions& options)
      : spec_(spec),
        arch_(arch),
        bindings_(bindings),
        usable_(usable),
        options_(options),
        num_tasks_(static_cast<TaskId>(spec.tasks().size())),
        hyperperiod_(spec.hyperperiod()) {}

  Result<SynthesisResult> run() {
    LRT_ASSIGN_OR_RETURN(
        const impl::Implementation ceiling,
        build_ceiling(spec_, arch_, bindings_, usable_, options_));
    LRT_ASSIGN_OR_RETURN(
        base_, reliability::SrgEvaluator::FromImplementation(ceiling));
    base_->set_relaxed(options_.relaxed_lrcs);
    if (!base_->all_lrcs_satisfied()) {
      // Even full replication misses an unrelaxed LRC: the whole search
      // tree is one infeasible subtree.
      return unsatisfiable();
    }
    if (options_.require_schedulable) {
      LRT_ASSIGN_OR_RETURN(tables_,
                           build_timing_tables(spec_, arch_, usable_, ceiling));
      gate_ = std::make_unique<SchedGate>(static_cast<std::size_t>(num_tasks_),
                                          usable_.size(),
                                          std::move(tables_.jobs));
      words_ = gate_->words();
    }

    const std::vector<std::vector<HostId>> raw = candidate_subsets(
        arch_, usable_, options_.max_replication_per_task);
    std::vector<std::size_t> usable_index_of(arch_.hosts().size(), 0);
    for (std::size_t u = 0; u < usable_.size(); ++u) {
      usable_index_of[static_cast<std::size_t>(usable_[u])] = u;
    }
    subsets_.resize(raw.size());
    for (std::size_t s = 0; s < raw.size(); ++s) {
      subsets_[s].hosts = raw[s];
      for (const HostId h : raw[s]) {
        subsets_[s].usable_index.push_back(
            usable_index_of[static_cast<std::size_t>(h)]);
      }
    }
    // Resolve each pinned host set to its subset index. The match always
    // exists: pins are validated to be sorted, duplicate-free subsets of
    // the usable hosts within max_replication_per_task — exactly the
    // candidate enumeration.
    pinned_subset_.assign(static_cast<std::size_t>(num_tasks_), -1);
    if (!options_.pinned_hosts.empty()) {
      for (TaskId t = 0; t < num_tasks_; ++t) {
        const auto& pinned =
            options_.pinned_hosts[static_cast<std::size_t>(t)];
        if (pinned.empty()) continue;
        for (std::size_t s = 0; s < subsets_.size(); ++s) {
          if (subsets_[s].hosts == pinned) {
            pinned_subset_[static_cast<std::size_t>(t)] =
                static_cast<std::int32_t>(s);
            break;
          }
        }
      }
    }

    if (num_tasks_ == 0) {
      // Degenerate: the empty assignment is the only candidate.
      Worker w(*base_, 0, usable_.size() * words_);
      leaf(w, 0);
      collect(w);
    } else {
      // A pinned first task has exactly one live top-level subtree; listing
      // it alone keeps the parallel_for from burning a worker acquisition
      // per dead candidate.
      std::vector<std::size_t> tops;
      if (const std::int32_t pin = pin_of(0); pin >= 0) {
        tops.push_back(static_cast<std::size_t>(pin));
      } else {
        tops.resize(subsets_.size());
        std::iota(tops.begin(), tops.end(), std::size_t{0});
      }
      ThreadPool pool(options_.threads);
      pool.parallel_for(static_cast<std::int64_t>(tops.size()),
                        [this, &tops](std::int64_t i) {
                          std::unique_ptr<Worker> w = acquire();
                          top_level(*w, tops[static_cast<std::size_t>(i)]);
                          release(std::move(w));
                        });
      for (const std::unique_ptr<Worker>& w : idle_) collect(*w);
    }

    if (best_cost_exact_ == kNoIncumbent) return unsatisfiable();
    std::vector<std::vector<HostId>> assignment;
    assignment.reserve(static_cast<std::size_t>(num_tasks_));
    for (const std::int32_t s : best_path_) {
      assignment.push_back(subsets_[static_cast<std::size_t>(s)].hosts);
    }
    result_.config =
        assignment_config(spec_, arch_, bindings_, assignment, options_);
    result_.replication_count = static_cast<std::size_t>(best_cost_exact_);
    result_.candidates_evaluated =
        result_.full_evals + result_.incremental_evals;
    result_.incumbent_updates = incumbent_updates_;
    return result_;
  }

 private:
  struct Subset {
    std::vector<HostId> hosts;               ///< ascending
    std::vector<std::size_t> usable_index;   ///< same hosts, usable indices
  };

  struct Worker {
    Worker(const reliability::SrgEvaluator& base, TaskId num_tasks,
           std::size_t bit_words)
        : eval(base),
          path(static_cast<std::size_t>(num_tasks), 0),
          bits(bit_words, 0) {}

    reliability::SrgEvaluator eval;
    std::vector<std::int32_t> path;   ///< subset index per task
    std::vector<std::uint64_t> bits;  ///< [u * words + w] per-host task sets
    Time bus = 0;
    std::int64_t full_evals = 0;
    std::int64_t incremental_evals = 0;
    std::int64_t subtrees_pruned = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::vector<std::uint64_t> key_buf;
    std::vector<sched::JobWindow> job_buf;
    /// Possibly-stale copy of the incumbent. Staleness is safe: pruning
    /// only compares against it when it is a REAL valid candidate, and
    /// anything dominated by a stale incumbent is dominated by the final
    /// winner too.
    std::int64_t snap_cost = kNoIncumbent;
    std::vector<std::int32_t> snap_path;
  };

  static Status unsatisfiable() {
    return UnsatisfiableError(
        "no replication mapping satisfies every LRC (and schedulability) "
        "within the configured bounds");
  }

  std::unique_ptr<Worker> acquire() {
    {
      const std::lock_guard<std::mutex> lock(workers_mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<Worker> w = std::move(idle_.back());
        idle_.pop_back();
        return w;
      }
    }
    // At most pool-size workers are ever constructed; a finished worker's
    // DFS has fully unwound, so its evaluator is back at the ceiling.
    return std::make_unique<Worker>(*base_, num_tasks_,
                                    usable_.size() * words_);
  }

  void release(std::unique_ptr<Worker> w) {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    idle_.push_back(std::move(w));
  }

  void collect(const Worker& w) {
    result_.full_evals += w.full_evals;
    result_.incremental_evals += w.incremental_evals;
    result_.subtrees_pruned += w.subtrees_pruned;
    result_.cache_hits += w.cache_hits;
    result_.cache_misses += w.cache_misses;
  }

  void apply_sched(Worker& w, TaskId t, const Subset& sub) const {
    if (gate_ == nullptr) return;
    const auto ts = static_cast<std::size_t>(t);
    for (const std::size_t u : sub.usable_index) {
      w.bits[u * words_ + ts / 64] |= std::uint64_t{1} << (ts % 64);
      w.bus += tables_.wctt[ts * usable_.size() + u];
    }
  }

  void undo_sched(Worker& w, TaskId t, const Subset& sub) const {
    if (gate_ == nullptr) return;
    const auto ts = static_cast<std::size_t>(t);
    for (const std::size_t u : sub.usable_index) {
      w.bits[u * words_ + ts / 64] &= ~(std::uint64_t{1} << (ts % 64));
      w.bus -= tables_.wctt[ts * usable_.size() + u];
    }
  }

  /// Pulls the shared incumbent into the worker's snapshot when the
  /// atomic shows a cheaper one exists. The snapshot may still lag path
  /// improvements at equal cost; that only weakens pruning, never
  /// correctness.
  void maybe_refresh(Worker& w) {
    if (best_cost_.load(std::memory_order_relaxed) >= w.snap_cost) return;
    const std::lock_guard<std::mutex> lock(best_mutex_);
    w.snap_cost = best_cost_exact_;
    w.snap_path = best_path_;
  }

  /// True when the depth-(t+1) prefix (w.path[0..t), s) is lexicographically
  /// greater than the snapshot incumbent's prefix. Every leaf under the
  /// prefix then has path > snap_path, so at equal cost none can displace
  /// an incumbent that is itself a valid candidate — the subtree is dead
  /// even if the snapshot is stale, because the final winner is <= it.
  bool prefix_beaten(const Worker& w, TaskId t, std::size_t s) const {
    for (std::size_t i = 0; i < static_cast<std::size_t>(t); ++i) {
      if (w.path[i] != w.snap_path[i]) return w.path[i] > w.snap_path[i];
    }
    return static_cast<std::int32_t>(s) >
           w.snap_path[static_cast<std::size_t>(t)];
  }

  /// Assigns subset `s` to task `t` and, unless bounded out, recurses.
  void enter(Worker& w, TaskId t, std::size_t s, std::int64_t cost) {
    const Subset& sub = subsets_[s];
    w.path[static_cast<std::size_t>(t)] = static_cast<std::int32_t>(s);
    const reliability::SrgEvaluator::Mark m = w.eval.mark();
    ++w.incremental_evals;
    w.eval.set_task_hosts(t, sub.hosts);
    if (!w.eval.all_lrcs_satisfied()) {
      ++w.subtrees_pruned;  // SRG ceiling bound: no completion can pass
      w.eval.rollback(m);
      return;
    }
    apply_sched(w, t, sub);
    descend(w, t + 1, cost + static_cast<std::int64_t>(sub.hosts.size()));
    undo_sched(w, t, sub);
    w.eval.rollback(m);
  }

  /// The subset index task `t` is pinned to, or -1 when it is free.
  [[nodiscard]] std::int32_t pin_of(TaskId t) const {
    return pinned_subset_[static_cast<std::size_t>(t)];
  }

  void descend(Worker& w, TaskId t, std::int64_t cost) {
    if (t == num_tasks_) {
      leaf(w, cost);
      return;
    }
    if (const std::int32_t pin = pin_of(t); pin >= 0) {
      // A pinned task has exactly one branch; the incumbent bound still
      // applies to it.
      maybe_refresh(w);
      const auto s = static_cast<std::size_t>(pin);
      const std::int64_t lb =
          cost + static_cast<std::int64_t>(subsets_[s].hosts.size()) +
          (num_tasks_ - t - 1);
      if (lb > w.snap_cost ||
          (lb == w.snap_cost && prefix_beaten(w, t, s))) {
        ++w.subtrees_pruned;
        return;
      }
      enter(w, t, s, cost);
      return;
    }
    for (std::size_t s = 0; s < subsets_.size(); ++s) {
      maybe_refresh(w);
      const std::int64_t lb = cost +
                              static_cast<std::int64_t>(
                                  subsets_[s].hosts.size()) +
                              (num_tasks_ - t - 1);
      // Subsets are ordered by cardinality ascending, so once a subset is
      // bounded out every later one is too: a later subset's lb never
      // shrinks and, at equal lb, its larger index keeps the prefix
      // lexicographically beaten.
      if (lb > w.snap_cost ||
          (lb == w.snap_cost && prefix_beaten(w, t, s))) {
        w.subtrees_pruned += static_cast<std::int64_t>(subsets_.size() - s);
        break;
      }
      enter(w, t, s, cost);
    }
  }

  void top_level(Worker& w, std::size_t s) {
    maybe_refresh(w);
    const std::int64_t lb =
        static_cast<std::int64_t>(subsets_[s].hosts.size()) + (num_tasks_ - 1);
    if (lb > w.snap_cost || (lb == w.snap_cost && prefix_beaten(w, 0, s))) {
      ++w.subtrees_pruned;
      return;
    }
    enter(w, 0, s, 0);
  }

  void leaf(Worker& w, std::int64_t cost) {
    // Reaching a leaf means every task carries its chosen subset, so the
    // last enter()'s all_lrcs_satisfied() was the exact verdict; only the
    // schedulability gate remains.
    ++w.full_evals;
    if (gate_ != nullptr) {
      if (w.bus > hyperperiod_) return;
      for (std::size_t u = 0; u < usable_.size(); ++u) {
        const std::span<const std::uint64_t> taskset(
            w.bits.data() + u * words_, words_);
        bool empty = true;
        for (const std::uint64_t word : taskset) empty = empty && word == 0;
        if (empty) continue;  // hostless job set is trivially feasible
        if (!gate_->feasible(u, taskset, w.cache_hits, w.cache_misses,
                             w.key_buf, w.job_buf)) {
          return;
        }
      }
    }
    const std::lock_guard<std::mutex> lock(best_mutex_);
    if (cost < best_cost_exact_ ||
        (cost == best_cost_exact_ && w.path < best_path_)) {
      best_cost_exact_ = cost;
      best_path_ = w.path;
      best_cost_.store(cost, std::memory_order_relaxed);
      ++incumbent_updates_;
    }
    // Already under the lock: refresh the snapshot for free.
    w.snap_cost = best_cost_exact_;
    w.snap_path = best_path_;
  }

  const spec::Specification& spec_;
  const arch::Architecture& arch_;
  const std::vector<impl::ImplementationConfig::SensorBinding>& bindings_;
  const std::vector<HostId>& usable_;
  const SynthesisOptions& options_;
  const TaskId num_tasks_;
  const Time hyperperiod_;

  /// The ceiling evaluator workers are cloned from; optional only because
  /// SrgEvaluator has no public default constructor — set once in run().
  std::optional<reliability::SrgEvaluator> base_;
  std::vector<Subset> subsets_;
  /// Subset index each task is pinned to (-1 = free): options_.pinned_hosts
  /// resolved against subsets_ once, so the hot descend() path compares an
  /// int instead of host vectors.
  std::vector<std::int32_t> pinned_subset_;
  TimingTables tables_;
  std::unique_ptr<SchedGate> gate_;
  std::size_t words_ = 0;

  std::mutex workers_mutex_;
  std::vector<std::unique_ptr<Worker>> idle_;

  std::atomic<std::int64_t> best_cost_{kNoIncumbent};
  std::mutex best_mutex_;
  std::int64_t best_cost_exact_ = kNoIncumbent;
  std::vector<std::int32_t> best_path_;
  /// Times the shared incumbent actually improved (guarded by best_mutex_).
  std::int64_t incumbent_updates_ = 0;

  SynthesisResult result_;
};

}  // namespace

std::vector<std::vector<HostId>> candidate_subsets(
    const arch::Architecture& arch, const std::vector<HostId>& usable,
    int max_size) {
  const int hosts = static_cast<int>(usable.size());
  std::vector<std::vector<HostId>> subsets;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << hosts); ++mask) {
    std::vector<HostId> subset;
    for (int h = 0; h < hosts; ++h) {
      if ((mask >> h) & 1u) {
        subset.push_back(usable[static_cast<std::size_t>(h)]);
      }
    }
    if (static_cast<int>(subset.size()) <= max_size) {
      subsets.push_back(std::move(subset));
    }
  }
  std::sort(subsets.begin(), subsets.end(),
            [&arch](const std::vector<HostId>& a,
                    const std::vector<HostId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              const auto rel = [&arch](const std::vector<HostId>& s) {
                double fail = 1.0;
                for (const HostId h : s) fail *= 1.0 - arch.host(h).reliability;
                return 1.0 - fail;
              };
              return rel(a) > rel(b);
            });
  return subsets;
}

impl::ImplementationConfig assignment_config(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<std::vector<HostId>>& assignment,
    const SynthesisOptions& options) {
  impl::ImplementationConfig config;
  config.name = "synthesized";
  for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
    impl::ImplementationConfig::TaskMapping mapping;
    mapping.task = spec.task(t).name;
    for (const HostId h : assignment[static_cast<std::size_t>(t)]) {
      mapping.hosts.push_back(arch.host(h).name);
    }
    if (!options.task_redundancy.empty()) {
      const auto& redundancy =
          options.task_redundancy[static_cast<std::size_t>(t)];
      mapping.reexecutions = redundancy.reexecutions;
      mapping.checkpoints = redundancy.checkpoints;
      mapping.checkpoint_overhead = redundancy.checkpoint_overhead;
    }
    config.task_mappings.push_back(std::move(mapping));
  }
  config.sensor_bindings = bindings;
  return config;
}

bool timing_tables_complete(const spec::Specification& spec,
                            const arch::Architecture& arch,
                            const std::vector<HostId>& usable) {
  for (const spec::Task& task : spec.tasks()) {
    for (const HostId h : usable) {
      if (!arch.wcet(task.name, h).ok()) return false;
      if (!arch.wctt(task.name, h).ok()) return false;
    }
  }
  return true;
}

Result<SynthesisResult> fast_exhaustive(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<HostId>& usable, const SynthesisOptions& options) {
  BnbSearch search(spec, arch, bindings, usable, options);
  return search.run();
}

Result<SynthesisResult> fast_greedy(
    const spec::Specification& spec, const arch::Architecture& arch,
    const std::vector<impl::ImplementationConfig::SensorBinding>& bindings,
    const std::vector<HostId>& usable, const SynthesisOptions& options) {
  LRT_ASSIGN_OR_RETURN(
      const impl::Implementation ceiling,
      build_ceiling(spec, arch, bindings, usable, options));
  LRT_ASSIGN_OR_RETURN(reliability::SrgEvaluator eval,
                       reliability::SrgEvaluator::FromImplementation(ceiling));
  eval.set_relaxed(options.relaxed_lrcs);

  const auto num_tasks = static_cast<TaskId>(spec.tasks().size());
  const auto num_comms = static_cast<CommId>(spec.communicators().size());
  std::vector<std::uint8_t> relaxed(static_cast<std::size_t>(num_comms), 0);
  for (const CommId c : options.relaxed_lrcs) {
    relaxed[static_cast<std::size_t>(c)] = 1;
  }

  SynthesisResult result;

  // Start: every task on the single most reliable usable host — the
  // reference engine's starting point, ties to the lowest HostId.
  HostId best_host = usable.front();
  for (const HostId h : usable) {
    if (arch.host(h).reliability > arch.host(best_host).reliability) {
      best_host = h;
    }
  }
  const auto pinned_set = [&options](TaskId t) -> const std::vector<HostId>* {
    if (options.pinned_hosts.empty()) return nullptr;
    const auto& pinned = options.pinned_hosts[static_cast<std::size_t>(t)];
    return pinned.empty() ? nullptr : &pinned;
  };
  std::vector<std::vector<HostId>> assignment(
      static_cast<std::size_t>(num_tasks), std::vector<HostId>{best_host});
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (const std::vector<HostId>* pinned = pinned_set(t)) {
      assignment[static_cast<std::size_t>(t)] = *pinned;
    }
    ++result.incremental_evals;
    eval.set_task_hosts(t, assignment[static_cast<std::size_t>(t)]);
  }
  eval.discard_trail();  // the repair loop never backtracks

  // Schedulability state: per-host task bitsets and the running bus
  // demand, updated once per repair move.
  const bool sched = options.require_schedulable;
  TimingTables tables;
  std::unique_ptr<SchedGate> gate;
  std::vector<std::size_t> usable_index_of(arch.hosts().size(), 0);
  std::vector<std::uint64_t> bits;
  std::size_t words = 0;
  Time bus = 0;
  if (sched) {
    LRT_ASSIGN_OR_RETURN(tables,
                         build_timing_tables(spec, arch, usable, ceiling));
    gate = std::make_unique<SchedGate>(static_cast<std::size_t>(num_tasks),
                                       usable.size(), std::move(tables.jobs));
    words = gate->words();
    for (std::size_t u = 0; u < usable.size(); ++u) {
      usable_index_of[static_cast<std::size_t>(usable[u])] = u;
    }
    bits.assign(usable.size() * words, 0);
    for (TaskId t = 0; t < num_tasks; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      for (const HostId h : assignment[ts]) {
        const std::size_t u = usable_index_of[static_cast<std::size_t>(h)];
        bits[u * words + ts / 64] |= std::uint64_t{1} << (ts % 64);
        bus += tables.wctt[ts * usable.size() + u];
      }
    }
  }
  std::vector<std::uint64_t> key_buf;
  std::vector<sched::JobWindow> job_buf;

  // Support set of a communicator: the tasks whose reliability its SRG
  // depends on (writer, then transitively the writers of its inputs,
  // stopping at independent-model tasks).
  const auto support = [&spec](CommId comm) {
    std::vector<TaskId> tasks;
    std::set<CommId> visited;
    std::vector<CommId> stack = {comm};
    while (!stack.empty()) {
      const CommId c = stack.back();
      stack.pop_back();
      if (!visited.insert(c).second) continue;
      const auto writer = spec.writer_of(c);
      if (!writer.has_value()) continue;
      tasks.push_back(*writer);
      if (spec.task(*writer).model != spec::FailureModel::kIndependent) {
        for (const CommId in : spec.input_comm_set(*writer)) {
          stack.push_back(in);
        }
      }
    }
    return tasks;
  };

  const std::size_t max_total =
      static_cast<std::size_t>(num_tasks) *
      std::min<std::size_t>(usable.size(),
                            static_cast<std::size_t>(
                                options.max_replication_per_task));
  while (true) {
    ++result.full_evals;
    bool ok = eval.all_lrcs_satisfied();
    if (ok && sched) {
      ok = bus <= spec.hyperperiod();
      for (std::size_t u = 0; ok && u < usable.size(); ++u) {
        const std::span<const std::uint64_t> taskset(bits.data() + u * words,
                                                     words);
        bool empty = true;
        for (const std::uint64_t word : taskset) empty = empty && word == 0;
        if (empty) continue;
        ok = gate->feasible(u, taskset, result.cache_hits,
                            result.cache_misses, key_buf, job_buf);
      }
    }
    if (ok) break;

    // Most-violated unrelaxed communicator; CommId order with ties to the
    // first, exactly the reference loop's min_element over violations().
    CommId worst = -1;
    double worst_slack = 0.0;
    for (CommId c = 0; c < num_comms; ++c) {
      if (eval.satisfied(c) || relaxed[static_cast<std::size_t>(c)] != 0) {
        continue;
      }
      const double s = eval.slack(c);
      if (worst == -1 || s < worst_slack) {
        worst = c;
        worst_slack = s;
      }
    }
    if (worst == -1) {
      // Reliable but unschedulable: replication only adds load, so greedy
      // cannot repair it.
      return UnsatisfiableError(
          "greedy synthesis: mapping is reliable but not schedulable; "
          "no repair move available");
    }

    // Best move: add the most reliable unused host to the support task
    // with the lowest current task reliability.
    TaskId move_task = -1;
    HostId move_host = -1;
    double move_score = -1.0;
    for (const TaskId t : support(worst)) {
      if (pinned_set(t) != nullptr) continue;  // pinned: not a repair knob
      auto& hosts = assignment[static_cast<std::size_t>(t)];
      if (static_cast<int>(hosts.size()) >=
          options.max_replication_per_task) {
        continue;
      }
      for (const HostId h : usable) {
        if (std::find(hosts.begin(), hosts.end(), h) != hosts.end()) continue;
        // Marginal gain on lambda_t of adding h to t.
        double fail = 1.0;
        for (const HostId existing : hosts) {
          fail *= 1.0 - arch.host(existing).reliability;
        }
        const double gain = fail * arch.host(h).reliability;
        if (gain > move_score) {
          move_score = gain;
          move_task = t;
          move_host = h;
        }
      }
    }
    if (move_task == -1) {
      return UnsatisfiableError(
          "greedy synthesis: LRC of '" + spec.communicator(worst).name +
          "' unmet and every supporting task is fully replicated");
    }
    auto& hosts = assignment[static_cast<std::size_t>(move_task)];
    hosts.push_back(move_host);
    std::sort(hosts.begin(), hosts.end());
    ++result.incremental_evals;
    eval.set_task_hosts(move_task, hosts);
    eval.discard_trail();
    if (sched) {
      const auto ts = static_cast<std::size_t>(move_task);
      const std::size_t u =
          usable_index_of[static_cast<std::size_t>(move_host)];
      bits[u * words + ts / 64] |= std::uint64_t{1} << (ts % 64);
      bus += tables.wctt[ts * usable.size() + u];
    }

    std::size_t total = 0;
    for (const auto& set : assignment) total += set.size();
    if (total > max_total) {
      return InternalError("greedy synthesis failed to terminate");
    }
  }

  result.config = assignment_config(spec, arch, bindings, assignment, options);
  for (const auto& set : assignment) result.replication_count += set.size();
  result.candidates_evaluated = result.full_evals + result.incremental_evals;
  return result;
}

}  // namespace lrt::synth::internal
