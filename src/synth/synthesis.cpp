#include "synth/synthesis.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <set>

#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "spec/spec_graph.h"
#include "synth/fast_engine.h"

namespace lrt::synth {
namespace {

using arch::HostId;
using spec::CommId;
using spec::TaskId;

/// Reference-engine search state: builds candidate Implementations and
/// evaluates validity (reliability + optional schedulability) from
/// scratch per candidate. Kept verbatim as the differential oracle for
/// the fast engine (tests assert identical mappings) and as the bench
/// baseline the speedup numbers are measured against.
class Evaluator {
 public:
  Evaluator(const spec::Specification& spec, const arch::Architecture& arch,
            std::vector<impl::ImplementationConfig::SensorBinding> bindings,
            std::vector<HostId> usable, const SynthesisOptions& options)
      : spec_(spec), arch_(arch), bindings_(std::move(bindings)),
        usable_(std::move(usable)), options_(options) {
    relaxed_.assign(spec.communicators().size(), false);
    for (const CommId c : options.relaxed_lrcs) {
      relaxed_[static_cast<std::size_t>(c)] = true;
    }
  }

  /// Builds the ImplementationConfig for an assignment (host set per task).
  [[nodiscard]] impl::ImplementationConfig to_config(
      const std::vector<std::vector<HostId>>& assignment) const {
    return internal::assignment_config(spec_, arch_, bindings_, assignment,
                                       options_);
  }

  /// Evaluates an assignment; true iff the mapping is valid: every
  /// unrelaxed LRC satisfied, and (optionally) schedulable.
  [[nodiscard]] Result<bool> valid(
      const std::vector<std::vector<HostId>>& assignment) {
    ++candidates_;
    auto impl_result =
        impl::Implementation::Build(spec_, arch_, to_config(assignment));
    if (!impl_result.ok()) return impl_result.status();
    LRT_ASSIGN_OR_RETURN(const reliability::ReliabilityReport report,
                         reliability::analyze(*impl_result));
    for (const reliability::CommunicatorVerdict& verdict : report.verdicts) {
      if (!verdict.satisfied && !relaxed(verdict.comm)) return false;
    }
    if (options_.require_schedulable) {
      LRT_ASSIGN_OR_RETURN(const sched::SchedulabilityReport sched_report,
                           sched::analyze_schedulability(*impl_result));
      if (!sched_report.schedulable) return false;
    }
    return true;
  }

  /// Reliability report for an assignment (used by the greedy repair loop).
  [[nodiscard]] Result<reliability::ReliabilityReport> report(
      const std::vector<std::vector<HostId>>& assignment) {
    auto impl_result =
        impl::Implementation::Build(spec_, arch_, to_config(assignment));
    if (!impl_result.ok()) return impl_result.status();
    return reliability::analyze(*impl_result);
  }

  [[nodiscard]] std::int64_t candidates() const { return candidates_; }
  [[nodiscard]] bool relaxed(CommId comm) const {
    return relaxed_[static_cast<std::size_t>(comm)];
  }

  const spec::Specification& spec() const { return spec_; }
  const arch::Architecture& arch() const { return arch_; }
  /// Hosts the search may use, ascending and duplicate-free.
  [[nodiscard]] const std::vector<HostId>& usable() const { return usable_; }

 private:
  const spec::Specification& spec_;
  const arch::Architecture& arch_;
  std::vector<impl::ImplementationConfig::SensorBinding> bindings_;
  std::vector<HostId> usable_;
  std::vector<bool> relaxed_;  // by CommId
  const SynthesisOptions& options_;
  std::int64_t candidates_ = 0;
};

Result<SynthesisResult> reference_exhaustive(Evaluator& evaluator,
                                             const SynthesisOptions& options) {
  const auto num_tasks =
      static_cast<TaskId>(evaluator.spec().tasks().size());
  const std::vector<std::vector<HostId>> subsets =
      internal::candidate_subsets(evaluator.arch(), evaluator.usable(),
                                  options.max_replication_per_task);

  std::vector<std::vector<HostId>> assignment(
      static_cast<std::size_t>(num_tasks));
  std::vector<std::vector<HostId>> best;
  std::size_t best_cost = SIZE_MAX;
  Status failure = Status::Ok();

  // Depth-first over tasks; prune when the partial cost plus one replica
  // per remaining task cannot beat the incumbent. A pinned task explores
  // exactly its pinned set.
  const std::function<Status(TaskId, std::size_t)> descend =
      [&](TaskId t, std::size_t cost) -> Status {
    if (cost + static_cast<std::size_t>(num_tasks - t) >= best_cost) {
      return Status::Ok();  // bound
    }
    if (t == num_tasks) {
      LRT_ASSIGN_OR_RETURN(const bool ok, evaluator.valid(assignment));
      if (ok) {
        best = assignment;
        best_cost = cost;
      }
      return Status::Ok();
    }
    if (!options.pinned_hosts.empty() &&
        !options.pinned_hosts[static_cast<std::size_t>(t)].empty()) {
      const std::vector<HostId>& pinned =
          options.pinned_hosts[static_cast<std::size_t>(t)];
      assignment[static_cast<std::size_t>(t)] = pinned;
      return descend(t + 1, cost + pinned.size());
    }
    for (const std::vector<HostId>& subset : subsets) {
      assignment[static_cast<std::size_t>(t)] = subset;
      LRT_RETURN_IF_ERROR(descend(t + 1, cost + subset.size()));
    }
    return Status::Ok();
  };
  LRT_RETURN_IF_ERROR(descend(0, 0));

  if (best_cost == SIZE_MAX) {
    return UnsatisfiableError(
        "no replication mapping satisfies every LRC (and schedulability) "
        "within the configured bounds");
  }
  SynthesisResult result;
  result.config = evaluator.to_config(best);
  result.replication_count = best_cost;
  result.candidates_evaluated = evaluator.candidates();
  result.full_evals = evaluator.candidates();
  return result;
}

Result<SynthesisResult> reference_greedy(Evaluator& evaluator,
                                         const SynthesisOptions& options) {
  const spec::Specification& spec = evaluator.spec();
  const arch::Architecture& arch = evaluator.arch();
  const auto num_tasks = static_cast<TaskId>(spec.tasks().size());
  const std::vector<HostId>& usable = evaluator.usable();

  // Start: every task on the single most reliable usable host; a pinned
  // task starts (and stays) on its pinned set.
  HostId best_host = usable.front();
  for (const HostId h : usable) {
    if (arch.host(h).reliability > arch.host(best_host).reliability) {
      best_host = h;
    }
  }
  const auto pinned_set = [&options](TaskId t) -> const std::vector<HostId>* {
    if (options.pinned_hosts.empty()) return nullptr;
    const auto& pinned = options.pinned_hosts[static_cast<std::size_t>(t)];
    return pinned.empty() ? nullptr : &pinned;
  };
  std::vector<std::vector<HostId>> assignment(
      static_cast<std::size_t>(num_tasks), std::vector<HostId>{best_host});
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (const std::vector<HostId>* pinned = pinned_set(t)) {
      assignment[static_cast<std::size_t>(t)] = *pinned;
    }
  }

  // Support set of a communicator: the tasks whose reliability its SRG
  // depends on (writer, then transitively the writers of its inputs,
  // stopping at independent-model tasks).
  const auto support = [&spec](CommId comm) {
    std::vector<TaskId> tasks;
    std::set<CommId> visited;
    std::vector<CommId> stack = {comm};
    while (!stack.empty()) {
      const CommId c = stack.back();
      stack.pop_back();
      if (!visited.insert(c).second) continue;
      const auto writer = spec.writer_of(c);
      if (!writer.has_value()) continue;
      tasks.push_back(*writer);
      if (spec.task(*writer).model != spec::FailureModel::kIndependent) {
        for (const CommId in : spec.input_comm_set(*writer)) {
          stack.push_back(in);
        }
      }
    }
    return tasks;
  };

  const std::size_t max_total =
      static_cast<std::size_t>(num_tasks) *
      std::min<std::size_t>(usable.size(),
                            static_cast<std::size_t>(
                                options.max_replication_per_task));
  while (true) {
    LRT_ASSIGN_OR_RETURN(const bool ok, evaluator.valid(assignment));
    if (ok) break;

    LRT_ASSIGN_OR_RETURN(const reliability::ReliabilityReport report,
                         evaluator.report(assignment));
    auto violations = report.violations();
    std::erase_if(violations,
                  [&evaluator](const reliability::CommunicatorVerdict& v) {
                    return evaluator.relaxed(v.comm);
                  });
    if (violations.empty()) {
      // Reliable but unschedulable: replication only adds load, so greedy
      // cannot repair it.
      return UnsatisfiableError(
          "greedy synthesis: mapping is reliable but not schedulable; "
          "no repair move available");
    }
    // Most-violated communicator first.
    const auto worst = std::min_element(
        violations.begin(), violations.end(),
        [](const reliability::CommunicatorVerdict& a,
           const reliability::CommunicatorVerdict& b) {
          return a.slack < b.slack;
        });

    // Best move: add the most reliable unused host to the support task
    // with the lowest current task reliability.
    TaskId move_task = -1;
    HostId move_host = -1;
    double move_score = -1.0;
    for (const TaskId t : support(worst->comm)) {
      if (pinned_set(t) != nullptr) continue;  // pinned: not a repair knob
      auto& hosts = assignment[static_cast<std::size_t>(t)];
      if (static_cast<int>(hosts.size()) >=
          options.max_replication_per_task) {
        continue;
      }
      for (const HostId h : usable) {
        if (std::find(hosts.begin(), hosts.end(), h) != hosts.end()) continue;
        // Marginal gain on lambda_t of adding h to t.
        double fail = 1.0;
        for (const HostId existing : hosts) {
          fail *= 1.0 - arch.host(existing).reliability;
        }
        const double gain = fail * arch.host(h).reliability;
        if (gain > move_score) {
          move_score = gain;
          move_task = t;
          move_host = h;
        }
      }
    }
    if (move_task == -1) {
      return UnsatisfiableError(
          "greedy synthesis: LRC of '" + worst->name +
          "' unmet and every supporting task is fully replicated");
    }
    auto& hosts = assignment[static_cast<std::size_t>(move_task)];
    hosts.push_back(move_host);
    std::sort(hosts.begin(), hosts.end());

    std::size_t total = 0;
    for (const auto& set : assignment) total += set.size();
    if (total > max_total) {
      return InternalError("greedy synthesis failed to terminate");
    }
  }

  SynthesisResult result;
  result.config = evaluator.to_config(assignment);
  for (const auto& set : assignment) result.replication_count += set.size();
  result.candidates_evaluated = evaluator.candidates();
  result.full_evals = evaluator.candidates();
  return result;
}

/// The actual search; synthesize() wraps it with observability.
Result<SynthesisResult> synthesize_impl(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const SynthesisOptions& options) {
  const spec::SpecificationGraph graph(spec);
  if (!graph.is_cycle_safe()) {
    return FailedPreconditionError(
        "synthesis requires a cycle-safe specification:\n" +
        graph.describe_cycles());
  }
  if (options.max_replication_per_task < 1) {
    return InvalidArgumentError("max_replication_per_task must be >= 1");
  }
  const auto num_hosts = static_cast<HostId>(arch.hosts().size());
  std::vector<HostId> usable = options.allowed_hosts;
  if (usable.empty()) {
    for (HostId h = 0; h < num_hosts; ++h) usable.push_back(h);
  } else {
    std::sort(usable.begin(), usable.end());
    usable.erase(std::unique(usable.begin(), usable.end()), usable.end());
    if (usable.front() < 0 || usable.back() >= num_hosts) {
      return InvalidArgumentError("allowed_hosts references a host outside "
                                  "the architecture");
    }
  }
  if (usable.empty()) {
    return InvalidArgumentError("synthesis needs at least one usable host");
  }
  if (options.strategy == SynthesisOptions::Strategy::kExhaustive &&
      usable.size() > static_cast<std::size_t>(kMaxExhaustiveHosts)) {
    return InvalidArgumentError(
        "exhaustive synthesis supports at most " +
        std::to_string(kMaxExhaustiveHosts) + " usable hosts (got " +
        std::to_string(usable.size()) +
        "); use the greedy strategy for larger architectures");
  }
  for (const CommId c : options.relaxed_lrcs) {
    if (c < 0 || c >= static_cast<CommId>(spec.communicators().size())) {
      return InvalidArgumentError("relaxed_lrcs references communicator " +
                                  std::to_string(c));
    }
  }
  if (!options.task_redundancy.empty() &&
      options.task_redundancy.size() != spec.tasks().size()) {
    return InvalidArgumentError(
        "task_redundancy must be empty or give one entry per task");
  }
  // Normalize the pins (engines rely on ascending, duplicate-free sets
  // that are subsets of `usable`, so the search never leaves the region
  // the schedulability tables cover).
  SynthesisOptions opts = options;
  if (!opts.pinned_hosts.empty()) {
    if (opts.pinned_hosts.size() != spec.tasks().size()) {
      return InvalidArgumentError(
          "pinned_hosts must be empty or give one (possibly empty) host "
          "set per task");
    }
    for (auto& pinned : opts.pinned_hosts) {
      std::sort(pinned.begin(), pinned.end());
      pinned.erase(std::unique(pinned.begin(), pinned.end()), pinned.end());
      for (const HostId h : pinned) {
        if (!std::binary_search(usable.begin(), usable.end(), h)) {
          return InvalidArgumentError(
              "pinned_hosts references host " + std::to_string(h) +
              " outside the usable (allowed) host set");
        }
      }
      if (static_cast<int>(pinned.size()) > opts.max_replication_per_task) {
        return InvalidArgumentError(
            "a pinned_hosts set exceeds max_replication_per_task");
      }
    }
  }

  // The fast path precomputes its timing tables for every (task, usable
  // host) pair; an architecture with holes in its WCET/WCTT tables falls
  // back to the reference engine, which only touches the entries of
  // candidates it actually evaluates.
  const bool fast =
      opts.engine == SynthesisOptions::Engine::kFast &&
      (!opts.require_schedulable ||
       internal::timing_tables_complete(spec, arch, usable));
  if (fast) {
    switch (opts.strategy) {
      case SynthesisOptions::Strategy::kExhaustive:
        return internal::fast_exhaustive(spec, arch, sensor_bindings, usable,
                                         opts);
      case SynthesisOptions::Strategy::kGreedy:
        return internal::fast_greedy(spec, arch, sensor_bindings, usable,
                                     opts);
    }
    return InternalError("unknown synthesis strategy");
  }

  Evaluator evaluator(spec, arch, std::move(sensor_bindings),
                      std::move(usable), opts);
  switch (opts.strategy) {
    case SynthesisOptions::Strategy::kExhaustive:
      return reference_exhaustive(evaluator, opts);
    case SynthesisOptions::Strategy::kGreedy:
      return reference_greedy(evaluator, opts);
  }
  return InternalError("unknown synthesis strategy");
}

}  // namespace

Result<SynthesisResult> synthesize(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const SynthesisOptions& options) {
  obs::Sink* sink = obs::resolve_sink(options.sink);
  if (sink == nullptr) {
    return synthesize_impl(spec, arch, std::move(sensor_bindings), options);
  }
  const obs::SpanGuard span(sink, "synth", "run");
  const auto start = std::chrono::steady_clock::now();
  auto result =
      synthesize_impl(spec, arch, std::move(sensor_bindings), options);
  sink->histogram_record(
      "synth.wall_ms", std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count());
  sink->counter_add("synth.runs");
  if (result.ok()) {
    sink->counter_add("synth.candidates", result->candidates_evaluated);
    sink->counter_add("synth.full_evals", result->full_evals);
    sink->counter_add("synth.incremental_evals",
                      result->incremental_evals);
    sink->counter_add("synth.prunes", result->subtrees_pruned);
    sink->counter_add("synth.cache_hits", result->cache_hits);
    sink->counter_add("synth.cache_misses", result->cache_misses);
    sink->counter_add("synth.incumbent_updates",
                      result->incumbent_updates);
  } else {
    sink->counter_add("synth.failures");
    if (result.status().code() == StatusCode::kUnsatisfiable)
      sink->counter_add("synth.unsat");
  }
  return result;
}

Result<std::vector<double>> max_achievable_srgs(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings) {
  if (arch.hosts().empty()) {
    return InvalidArgumentError(
        "the SRG ceiling needs at least one host to map tasks onto");
  }
  impl::ImplementationConfig config;
  config.name = "srg_ceiling";
  for (const spec::Task& task : spec.tasks()) {
    impl::ImplementationConfig::TaskMapping mapping;
    mapping.task = task.name;
    for (const arch::Host& host : arch.hosts()) {
      mapping.hosts.push_back(host.name);
    }
    config.task_mappings.push_back(std::move(mapping));
  }
  // Keep only bindings Implementation::Build would accept; the ceiling is
  // a probe, so a stray bind declaration must not abort it.
  std::set<spec::CommId> bound;
  for (auto& binding : sensor_bindings) {
    const auto comm = spec.find_communicator(binding.communicator);
    if (!comm.has_value() || !spec.is_input_communicator(*comm)) continue;
    if (!arch.find_sensor(binding.sensor).has_value()) continue;
    if (!bound.insert(*comm).second) continue;
    config.sensor_bindings.push_back(std::move(binding));
  }
  // Unbound read input communicators get the most reliable sensor: any
  // other choice only lowers the ceiling.
  const auto best_sensor = std::max_element(
      arch.sensors().begin(), arch.sensors().end(),
      [](const arch::Sensor& a, const arch::Sensor& b) {
        return a.reliability < b.reliability;
      });
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
    if (!spec.is_input_communicator(c) || spec.readers_of(c).empty()) {
      continue;
    }
    if (bound.count(c) != 0) continue;
    if (best_sensor == arch.sensors().end()) {
      return InvalidArgumentError(
          "read input communicator '" + spec.communicator(c).name +
          "' needs a sensor but the architecture declares none");
    }
    config.sensor_bindings.push_back(
        {spec.communicator(c).name, best_sensor->name});
  }
  LRT_ASSIGN_OR_RETURN(
      impl::Implementation impl,
      impl::Implementation::Build(spec, arch, std::move(config)));
  return reliability::compute_srgs(impl);
}

}  // namespace lrt::synth
