// Automatic replication-mapping synthesis.
//
// The paper derives its Section-4 mappings by hand ("the tasks t1 and t2
// are mapped to both hosts h1 and h2"); this module automates the step: it
// searches for an implementation I : tset -> 2^hset whose SRGs satisfy
// every LRC (Prop. 1) and which is schedulable, minimizing the total number
// of task replications (the space-redundancy cost).
//
// Two strategies:
//  * kExhaustive — best-first branch-and-bound over per-task host subsets;
//    returns a provably minimal-cost valid mapping or kUnsatisfiable.
//    Worst-case exponential in |tset| * 2^|hset|, but the fast engine
//    prunes any subtree whose SRG ceiling (remaining tasks at full
//    replication — admissible by the Section-3 induction's monotonicity)
//    cannot meet an unrelaxed LRC or beat the incumbent cost, and can
//    explore top-level subtrees in parallel. The result is deterministic
//    for every thread count: the lexicographically-least minimal-cost
//    mapping in candidate order, exactly what the sequential reference
//    engine returns.
//  * kGreedy — start every task on its most reliable feasible host, then
//    repeatedly add the best replica to a task supporting the most-violated
//    communicator until all LRCs hold. Fast and, on series-dominated
//    dataflows, usually optimal (bench_synthesis quantifies the gap).
//
// Two engines produce those strategies:
//  * kFast (default) — reliability::SrgEvaluator re-propagates SRGs only
//    through the dirty downstream cone of a host-set change (no
//    Implementation::Build, no per-candidate allocation) and the
//    schedulability check is a memoized last gate keyed on the per-host
//    task set.
//  * kReference — the original build-and-analyze loop, kept as the
//    differential oracle: same mappings, orders of magnitude slower.
#ifndef LRT_SYNTH_SYNTHESIS_H_
#define LRT_SYNTH_SYNTHESIS_H_

#include <cstdint>
#include <vector>

#include "impl/implementation.h"
#include "obs/sink.h"
#include "support/status.h"

namespace lrt::synth {

/// Most usable hosts the exhaustive strategy accepts. The subset
/// enumeration uses 64-bit masks (correct up to 63 hosts), but 2^20
/// candidate host sets per task is already far beyond any practical
/// branch-and-bound run, so the limit is a clean kInvalidArgument instead
/// of an effectively-hung search. The greedy strategy has no such limit.
inline constexpr int kMaxExhaustiveHosts = 20;

struct SynthesisOptions {
  enum class Strategy { kExhaustive, kGreedy };
  Strategy strategy = Strategy::kGreedy;
  /// Search machinery: the incremental/pruned/parallel fast path, or the
  /// original full build-and-analyze loop (the differential oracle; see
  /// the header comment). Both return identical mappings.
  enum class Engine { kFast, kReference };
  Engine engine = Engine::kFast;
  /// Worker threads (including the caller) for the fast exhaustive
  /// search; 0 picks std::thread::hardware_concurrency(). The synthesized
  /// mapping is identical for every value. Ignored by the greedy strategy
  /// and the reference engine.
  unsigned threads = 1;
  /// Also require sched::analyze_schedulability to pass.
  bool require_schedulable = true;
  /// Upper bound on |I(t)| per task.
  int max_replication_per_task = 1 << 20;
  /// Hosts the search may map tasks onto; empty = every architecture host.
  /// The adaptive layer passes the surviving hosts after a permanent loss.
  std::vector<arch::HostId> allowed_hosts;
  /// Communicators whose LRC is waived during validation (their verdicts
  /// are reported but do not reject a candidate) — the degraded-mode
  /// "shed" set of the adaptive layer's repair planner.
  std::vector<spec::CommId> relaxed_lrcs;
  /// Pinned host sets, indexed by TaskId: a non-empty inner vector fixes
  /// that task's replication set exactly (the search neither shrinks nor
  /// grows it); an empty inner vector leaves the task free. Empty outer
  /// vector = nothing pinned. Pinned hosts must lie inside allowed_hosts
  /// and respect max_replication_per_task. The live-update engine pins
  /// every task outside the dirty cone to its running mapping, so
  /// re-synthesis explores only the changed region of the workload.
  std::vector<std::vector<arch::HostId>> pinned_hosts;
  /// Per-task time redundancy applied verbatim to every candidate mapping.
  struct TaskRedundancy {
    int reexecutions = 0;
    int checkpoints = 0;
    spec::Time checkpoint_overhead = 0;
  };
  /// Indexed by TaskId; empty = no re-executions anywhere. Lets a repair
  /// re-spend the current implementation's re-execution budget on the
  /// replacement hosts.
  std::vector<TaskRedundancy> task_redundancy;
  /// Observability sink: per-run "synth.*" counters (full/incremental
  /// evals, prunes, gate cache hits, incumbent updates) and a "synth.run"
  /// span. Null falls back to the process-global sink (null = disabled).
  obs::Sink* sink = nullptr;
};

struct SynthesisResult {
  /// The synthesized mapping, ready for Implementation::Build.
  impl::ImplementationConfig config;
  /// Total replications of the winner.
  std::size_t replication_count = 0;
  /// Candidate mappings examined, fully or incrementally (search effort;
  /// full_evals + incremental_evals for the fast engine).
  std::int64_t candidates_evaluated = 0;
  /// Complete mappings whose final (schedulability) gate ran.
  std::int64_t full_evals = 0;
  /// Single-task host-set changes evaluated via SRG cone re-propagation.
  std::int64_t incremental_evals = 0;
  /// Subtrees discarded by the admissible SRG/cost bounds.
  std::int64_t subtrees_pruned = 0;
  /// Memoized schedulability gate: per-host task-set lookups served from
  /// cache vs computed by EDF simulation.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Times the branch-and-bound incumbent improved (fast exhaustive
  /// engine only; 0 for the greedy strategy and the reference engine).
  std::int64_t incumbent_updates = 0;
};

/// Synthesizes a valid implementation. `sensor_bindings` fixes the sensor
/// for each input communicator (sensing hardware is not a degree of
/// freedom here). Returns kUnsatisfiable when no mapping within the
/// options' bounds meets all (unrelaxed) LRCs (e.g. the LRC exceeds what
/// full replication on the allowed hosts can deliver), kInvalidArgument
/// for out-of-range option ids, and kFailedPrecondition for
/// specifications whose SRGs are undefined (unsafe cycles).
[[nodiscard]] Result<SynthesisResult> synthesize(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const SynthesisOptions& options = {});

/// The SRG ceiling of the architecture, one entry per communicator: the
/// SRGs of the full-replication mapping (every task on every host). By the
/// monotonicity of the Section-3 induction no mapping achieves a higher
/// lambda_c, so mu_c above the ceiling proves the LRC infeasible — the
/// feasibility probe behind lint rule LRT004 and a quick pre-check before
/// an expensive synthesis run. Bindings that cannot possibly belong to a
/// valid implementation (unknown communicator or sensor, written
/// communicator, duplicate) are dropped rather than rejected; read input
/// communicators left unbound get the most reliable sensor. Fails with
/// kFailedPrecondition when the SRGs are undefined (unsafe cycles) and
/// kInvalidArgument when the architecture has no hosts, or no sensors
/// while a read input communicator needs one.
[[nodiscard]] Result<std::vector<double>> max_achievable_srgs(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings =
        {});

}  // namespace lrt::synth

#endif  // LRT_SYNTH_SYNTHESIS_H_
