// Automatic replication-mapping synthesis.
//
// The paper derives its Section-4 mappings by hand ("the tasks t1 and t2
// are mapped to both hosts h1 and h2"); this module automates the step: it
// searches for an implementation I : tset -> 2^hset whose SRGs satisfy
// every LRC (Prop. 1) and which is schedulable, minimizing the total number
// of task replications (the space-redundancy cost).
//
// Two strategies:
//  * kExhaustive — branch-and-bound over per-task host subsets; returns a
//    provably minimal-cost valid mapping or kUnsatisfiable. Exponential in
//    |tset| * 2^|hset|; intended for small systems and as the optimality
//    oracle for the greedy strategy's benchmark.
//  * kGreedy — start every task on its most reliable feasible host, then
//    repeatedly add the best replica to a task supporting the most-violated
//    communicator until all LRCs hold. Fast and, on series-dominated
//    dataflows, usually optimal (bench_synthesis quantifies the gap).
#ifndef LRT_SYNTH_SYNTHESIS_H_
#define LRT_SYNTH_SYNTHESIS_H_

#include <cstdint>
#include <vector>

#include "impl/implementation.h"
#include "support/status.h"

namespace lrt::synth {

struct SynthesisOptions {
  enum class Strategy { kExhaustive, kGreedy };
  Strategy strategy = Strategy::kGreedy;
  /// Also require sched::analyze_schedulability to pass.
  bool require_schedulable = true;
  /// Upper bound on |I(t)| per task.
  int max_replication_per_task = 1 << 20;
  /// Hosts the search may map tasks onto; empty = every architecture host.
  /// The adaptive layer passes the surviving hosts after a permanent loss.
  std::vector<arch::HostId> allowed_hosts;
  /// Communicators whose LRC is waived during validation (their verdicts
  /// are reported but do not reject a candidate) — the degraded-mode
  /// "shed" set of the adaptive layer's repair planner.
  std::vector<spec::CommId> relaxed_lrcs;
  /// Per-task time redundancy applied verbatim to every candidate mapping.
  struct TaskRedundancy {
    int reexecutions = 0;
    int checkpoints = 0;
    spec::Time checkpoint_overhead = 0;
  };
  /// Indexed by TaskId; empty = no re-executions anywhere. Lets a repair
  /// re-spend the current implementation's re-execution budget on the
  /// replacement hosts.
  std::vector<TaskRedundancy> task_redundancy;
};

struct SynthesisResult {
  /// The synthesized mapping, ready for Implementation::Build.
  impl::ImplementationConfig config;
  /// Total replications of the winner.
  std::size_t replication_count = 0;
  /// Candidate mappings evaluated (search effort).
  std::int64_t candidates_evaluated = 0;
};

/// Synthesizes a valid implementation. `sensor_bindings` fixes the sensor
/// for each input communicator (sensing hardware is not a degree of
/// freedom here). Returns kUnsatisfiable when no mapping within the
/// options' bounds meets all (unrelaxed) LRCs (e.g. the LRC exceeds what
/// full replication on the allowed hosts can deliver), kInvalidArgument
/// for out-of-range option ids, and kFailedPrecondition for
/// specifications whose SRGs are undefined (unsafe cycles).
[[nodiscard]] Result<SynthesisResult> synthesize(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const SynthesisOptions& options = {});

/// The SRG ceiling of the architecture, one entry per communicator: the
/// SRGs of the full-replication mapping (every task on every host). By the
/// monotonicity of the Section-3 induction no mapping achieves a higher
/// lambda_c, so mu_c above the ceiling proves the LRC infeasible — the
/// feasibility probe behind lint rule LRT004 and a quick pre-check before
/// an expensive synthesis run. Bindings that cannot possibly belong to a
/// valid implementation (unknown communicator or sensor, written
/// communicator, duplicate) are dropped rather than rejected; read input
/// communicators left unbound get the most reliable sensor. Fails with
/// kFailedPrecondition when the SRGs are undefined (unsafe cycles) and
/// kInvalidArgument when the architecture has no hosts, or no sensors
/// while a read input communicator needs one.
[[nodiscard]] Result<std::vector<double>> max_achievable_srgs(
    const spec::Specification& spec, const arch::Architecture& arch,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings =
        {});

}  // namespace lrt::synth

#endif  // LRT_SYNTH_SYNTHESIS_H_
