// Fault injection configuration for the distributed runtime.
//
// Two fault sources, mirroring the paper's model:
//  * stochastic per-invocation failures — a task invocation on host h fails
//    (the fail-silent host produces no output for it) with probability
//    1 - hrel(h), and a sensor update fails with probability 1 - srel(s);
//  * scripted availability events — "unplugging one of the two hosts from
//    the network" (paper Section 4) is a HostEvent{time, host, up=false}.
#ifndef LRT_SIM_FAULT_PLAN_H_
#define LRT_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "arch/architecture.h"
#include "spec/declarations.h"
#include "support/rng.h"

namespace lrt::sim {

struct FaultPlan {
  /// Draw Bernoulli(1 - hrel(h)) per task invocation per replication.
  bool inject_invocation_faults = true;
  /// Draw Bernoulli(1 - srel(s)) per sensor update.
  bool inject_sensor_faults = true;

  /// Scripted host kill/restore, applied at the start of the given tick.
  struct HostEvent {
    spec::Time time = 0;
    arch::HostId host = -1;
    bool up = false;  ///< false = unplug (fail-silent), true = restore
  };
  std::vector<HostEvent> host_events;

  /// RNG seed; every run with the same seed is bit-identical.
  std::uint64_t seed = kDefaultRngSeed;
};

}  // namespace lrt::sim

#endif  // LRT_SIM_FAULT_PLAN_H_
