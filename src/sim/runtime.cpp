#include "sim/runtime.h"

#include <algorithm>
#include <utility>

#include "sim/event_runtime.h"
#include "sim/parallel_runtime.h"
#include "sim/runtime_core.h"
#include "support/json.h"
#include "support/math_util.h"

namespace lrt::sim {
namespace {

using spec::Time;

/// The reference engine: visits every instant of the harmonic grid. Kept
/// deliberately naive — it IS the semantics the event engine is
/// differential-tested against.
Result<SimulationResult> run_tick_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options) {
  detail::RuntimeCore core(phases, env, options);
  LRT_RETURN_IF_ERROR(core.init());
  const Time duration = core.duration();
  // The step is re-read every iteration: a live update (monitor hot-swap)
  // may rebase the grid mid-run. The horizon is frozen at init.
  for (Time now = 0; now < duration; now += core.step()) {
    LRT_RETURN_IF_ERROR(core.tick(now));
    const Time next = std::min(now + core.step(), duration);
    core.advance_processors(now, next);
    core.advance_environment(now, next);
  }
  return core.finish();
}

}  // namespace

std::string to_json(const SimulationResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("periods");
  json.value(result.periods);
  json.key("ticks");
  json.value(result.ticks);
  json.key("invocations");
  json.value(result.invocations);
  json.key("invocation_failures");
  json.value(result.invocation_failures);
  json.key("committed_updates");
  json.value(result.committed_updates);
  json.key("vote_divergences");
  json.value(result.vote_divergences);
  json.key("deadline_misses");
  json.value(result.deadline_misses);
  json.key("remaps_installed");
  json.value(result.remaps_installed);
  json.key("spec_swaps");
  json.value(result.spec_swaps);
  json.key("communicators");
  json.begin_array();
  for (const CommStats& stats : result.comm_stats) {
    const ConfidenceInterval ci = stats.update_rate_interval();
    json.begin_object();
    json.key("name");
    json.value(stats.name);
    json.key("limit_average");
    json.value(stats.limit_average);
    json.key("updates");
    json.value(stats.updates);
    json.key("reliable_updates");
    json.value(stats.reliable_updates);
    json.key("update_rate");
    json.value(stats.update_rate());
    json.key("ci_low");
    json.value(ci.low);
    json.key("ci_high");
    json.value(ci.high);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

const CommStats* SimulationResult::find(std::string_view name) const {
  for (const CommStats& stats : comm_stats) {
    if (stats.name == name) return &stats;
  }
  return nullptr;
}

Result<SimulationResult> simulate_time_dependent(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options) {
  if (phases.empty()) {
    return InvalidArgumentError("simulation needs >= 1 mapping phase");
  }
  for (const impl::Implementation& phase : phases) {
    if (&phase.specification() != &phases.front().specification() ||
        &phase.architecture() != &phases.front().architecture()) {
      return InvalidArgumentError(
          "all phases of a time-dependent implementation must share one "
          "specification and architecture");
    }
  }
  if (options.periods <= 0) {
    return InvalidArgumentError("simulation needs a positive period count");
  }
  if (!is_probability(options.broadcast_reliability) ||
      options.broadcast_reliability <= 0.0) {
    return InvalidArgumentError("broadcast reliability must be in (0, 1]");
  }
  switch (options.engine) {
    case SimulationOptions::Engine::kEvent:
      return detail::run_event_engine(phases, env, options);
    case SimulationOptions::Engine::kParallelEvent:
      return detail::run_parallel_engine(phases, env, options);
    case SimulationOptions::Engine::kTick:
      break;
  }
  return run_tick_engine(phases, env, options);
}

Result<SimulationResult> simulate(const impl::Implementation& impl,
                                  Environment& env,
                                  const SimulationOptions& options) {
  return simulate_time_dependent({&impl, 1}, env, options);
}

}  // namespace lrt::sim
