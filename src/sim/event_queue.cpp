#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lrt::sim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

EventQueue::EventQueue(spec::Time bucket_width, std::size_t num_buckets)
    : buckets_(std::max<std::size_t>(num_buckets, 2)),
      bucket_width_(std::max<spec::Time>(bucket_width, 1)) {}

bool EventQueue::before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.klass != b.klass) return a.klass < b.klass;
  return a.seq < b.seq;
}

EventQueue::Handle EventQueue::schedule(spec::Time time, EventClass klass,
                                        std::uint64_t payload) {
  assert(time >= 0 && "event times are nonnegative ticks");
  Entry entry;
  entry.event = {time, klass, payload, next_seq_++};
  entry.handle = next_handle_++;
  pending_.insert(entry.handle);
  buckets_[bucket_of(time)].push_back(entry);
  ++live_;
  // An event behind the scan position would be missed this rotation:
  // rewind the cursor to its slot. Monotone schedulers never hit this.
  const spec::Time year = year_of(time);
  const std::size_t slot = bucket_of(time);
  if (year < cursor_year_ || (year == cursor_year_ && slot < cursor_)) {
    cursor_year_ = year;
    cursor_ = slot;
  }
  return entry.handle;
}

bool EventQueue::cancel(Handle handle) {
  if (pending_.erase(handle) == 0) return false;
  --live_;
  return true;
}

std::size_t EventQueue::sweep_and_min(std::vector<Entry>& bucket) {
  // Lazy cancellation: compact out entries whose handle is gone.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (pending_.count(bucket[i].handle) == 0) continue;
    if (kept != i) bucket[kept] = std::move(bucket[i]);
    ++kept;
  }
  bucket.resize(kept);
  if (bucket.empty()) return kNpos;
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (before(bucket[i].event, bucket[best].event)) best = i;
  }
  return best;
}

std::size_t EventQueue::locate_min() {
  assert(live_ > 0 && "locate_min on an empty queue");
  const auto wheel_span =
      bucket_width_ * static_cast<spec::Time>(buckets_.size());
  // One rotation: visit each bucket once, accepting only entries that
  // belong to the rotation the cursor is scanning.
  for (std::size_t visited = 0; visited < buckets_.size(); ++visited) {
    auto& bucket = buckets_[cursor_];
    const std::size_t min_index = sweep_and_min(bucket);
    if (min_index != kNpos) {
      // The bucket's minimum may still belong to a later year (calendar
      // overflow); only an in-year entry stops the scan.
      const spec::Time year_start = cursor_year_ * wheel_span;
      const spec::Time slot_start =
          year_start + static_cast<spec::Time>(cursor_) * bucket_width_;
      std::size_t best = kNpos;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].event.time < slot_start ||
            bucket[i].event.time >= slot_start + bucket_width_) {
          continue;
        }
        if (best == kNpos ||
            before(bucket[i].event, bucket[best].event)) {
          best = i;
        }
      }
      if (best != kNpos) return best;
    }
    // Advance the cursor, wrapping into the next year.
    if (++cursor_ == buckets_.size()) {
      cursor_ = 0;
      ++cursor_year_;
    }
  }
  // Empty-calendar fast-forward: a full rotation found nothing due, so
  // the next event lies beyond the current year. Jump the cursor to the
  // global minimum instead of spinning through empty rotations.
  std::size_t best_bucket = kNpos;
  std::size_t best_index = kNpos;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::size_t min_index = sweep_and_min(buckets_[b]);
    if (min_index == kNpos) continue;
    if (best_bucket == kNpos ||
        before(buckets_[b][min_index].event,
               buckets_[best_bucket][best_index].event)) {
      best_bucket = b;
      best_index = min_index;
    }
  }
  assert(best_bucket != kNpos && "live_ > 0 but no live entry found");
  cursor_ = best_bucket;
  cursor_year_ = year_of(buckets_[best_bucket][best_index].event.time);
  return best_index;
}

spec::Time EventQueue::next_time() {
  const std::size_t index = locate_min();
  return buckets_[cursor_][index].event.time;
}

Event EventQueue::pop() {
  const std::size_t index = locate_min();
  auto& bucket = buckets_[cursor_];
  const Event event = bucket[index].event;
  pending_.erase(bucket[index].handle);
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(index));
  --live_;
  return event;
}

}  // namespace lrt::sim
