#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace lrt::sim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
/// Resize policy: grow when the population packs buckets past
/// kGrowFactor entries each, shrink when it falls below 1/kShrinkFactor —
/// far enough apart that a population oscillating around one threshold
/// never thrashes. The wheel stays within [kMinBuckets, kMaxBuckets].
constexpr std::size_t kGrowFactor = 4;
constexpr std::size_t kShrinkFactor = 16;
constexpr std::size_t kMinBuckets = 2;
constexpr std::size_t kMaxBuckets = 1 << 16;
}  // namespace

EventQueue::EventQueue(spec::Time bucket_width, std::size_t num_buckets)
    : buckets_(std::clamp(num_buckets, kMinBuckets, kMaxBuckets)),
      bucket_width_(std::max<spec::Time>(bucket_width, 1)) {}

bool EventQueue::before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.klass != b.klass) return a.klass < b.klass;
  return a.seq < b.seq;
}

void EventQueue::push_entry(std::vector<Entry>& bucket, Entry&& entry) {
  if (bucket.size() == bucket.capacity()) ++stats_.allocations;
  bucket.push_back(std::move(entry));
}

EventQueue::Handle EventQueue::schedule(spec::Time time, EventClass klass,
                                        std::uint64_t payload) {
  assert(time >= 0 && "event times are nonnegative ticks");
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = generations_.size();
    if (generations_.size() == generations_.capacity()) ++stats_.allocations;
    generations_.push_back(0);
  }
  ++generations_[slot];  // odd: pending
  const Handle handle =
      (static_cast<Handle>(generations_[slot]) << 32) |
      static_cast<Handle>(slot + 1);
  Entry entry;
  entry.event = {time, klass, payload, next_seq_++};
  entry.handle = handle;
  push_entry(buckets_[bucket_of(time)], std::move(entry));
  ++live_;
  ++stats_.scheduled;
  // An event behind the scan position would be missed this rotation:
  // rewind the cursor to its slot. Monotone schedulers never hit this.
  const spec::Time year = year_of(time);
  const std::size_t bucket = bucket_of(time);
  if (year < cursor_year_ || (year == cursor_year_ && bucket < cursor_)) {
    cursor_year_ = year;
    cursor_ = bucket;
  }
  if (live_ > buckets_.size() * kGrowFactor &&
      buckets_.size() < kMaxBuckets) {
    rehash(buckets_.size() * 2);
  }
  return handle;
}

bool EventQueue::cancel(Handle handle) {
  if (!is_live(handle)) return false;
  const std::size_t slot = slot_of(handle);
  ++generations_[slot];  // even: free; the bucket entry is now a tombstone
  if (free_slots_.size() == free_slots_.capacity()) ++stats_.allocations;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  --live_;
  ++stats_.cancelled;
  if (live_ * kShrinkFactor < buckets_.size() &&
      buckets_.size() > kMinBuckets) {
    rehash(buckets_.size() / 2);
  }
  return true;
}

void EventQueue::rehash(std::size_t new_count) {
  ++stats_.resizes;
  scratch_.clear();
  if (scratch_.capacity() < live_) ++stats_.allocations;
  scratch_.reserve(live_);
  for (auto& bucket : buckets_) {
    for (Entry& entry : bucket) {
      if (is_live(entry.handle)) scratch_.push_back(std::move(entry));
    }
    bucket.clear();
  }
  // The outgoing wheel becomes the spare; its bucket arrays keep their
  // heap buffers for the resize after this one.
  if (spare_.size() != new_count) {
    ++stats_.allocations;
    spare_.resize(new_count);
  }
  std::swap(buckets_, spare_);
  for (auto& bucket : buckets_) bucket.clear();
  const Entry* min_entry = nullptr;
  for (Entry& entry : scratch_) {
    if (min_entry == nullptr || before(entry.event, min_entry->event)) {
      min_entry = &entry;
    }
  }
  if (min_entry != nullptr) {
    cursor_ = bucket_of(min_entry->event.time);
    cursor_year_ = year_of(min_entry->event.time);
  } else {
    cursor_ = 0;
    cursor_year_ = 0;
  }
  for (Entry& entry : scratch_) {
    push_entry(buckets_[bucket_of(entry.event.time)], std::move(entry));
  }
  scratch_.clear();
}

std::size_t EventQueue::sweep_and_min(std::vector<Entry>& bucket) {
  // Lazy cancellation: compact out entries whose slot generation moved on.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (!is_live(bucket[i].handle)) continue;
    if (kept != i) bucket[kept] = std::move(bucket[i]);
    ++kept;
  }
  bucket.resize(kept);
  if (bucket.empty()) return kNpos;
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.size(); ++i) {
    if (before(bucket[i].event, bucket[best].event)) best = i;
  }
  return best;
}

std::size_t EventQueue::locate_min() {
  assert(live_ > 0 && "locate_min on an empty queue");
  const auto wheel_span =
      bucket_width_ * static_cast<spec::Time>(buckets_.size());
  // One rotation: visit each bucket once, accepting only entries that
  // belong to the rotation the cursor is scanning.
  for (std::size_t visited = 0; visited < buckets_.size(); ++visited) {
    auto& bucket = buckets_[cursor_];
    const std::size_t min_index = sweep_and_min(bucket);
    if (min_index != kNpos) {
      // The bucket's minimum may still belong to a later year (calendar
      // overflow); only an in-year entry stops the scan.
      const spec::Time year_start = cursor_year_ * wheel_span;
      const spec::Time slot_start =
          year_start + static_cast<spec::Time>(cursor_) * bucket_width_;
      std::size_t best = kNpos;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].event.time < slot_start ||
            bucket[i].event.time >= slot_start + bucket_width_) {
          continue;
        }
        if (best == kNpos ||
            before(bucket[i].event, bucket[best].event)) {
          best = i;
        }
      }
      if (best != kNpos) return best;
    }
    // Advance the cursor, wrapping into the next year.
    if (++cursor_ == buckets_.size()) {
      cursor_ = 0;
      ++cursor_year_;
    }
  }
  // Empty-calendar fast-forward: a full rotation found nothing due, so
  // the next event lies beyond the current year. Jump the cursor to the
  // global minimum instead of spinning through empty rotations.
  std::size_t best_bucket = kNpos;
  std::size_t best_index = kNpos;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::size_t min_index = sweep_and_min(buckets_[b]);
    if (min_index == kNpos) continue;
    if (best_bucket == kNpos ||
        before(buckets_[b][min_index].event,
               buckets_[best_bucket][best_index].event)) {
      best_bucket = b;
      best_index = min_index;
    }
  }
  assert(best_bucket != kNpos && "live_ > 0 but no live entry found");
  cursor_ = best_bucket;
  cursor_year_ = year_of(buckets_[best_bucket][best_index].event.time);
  return best_index;
}

spec::Time EventQueue::next_time() {
  const std::size_t index = locate_min();
  return buckets_[cursor_][index].event.time;
}

Event EventQueue::pop() {
  const std::size_t index = locate_min();
  auto& bucket = buckets_[cursor_];
  const Event event = bucket[index].event;
  const std::size_t slot = slot_of(bucket[index].handle);
  ++generations_[slot];  // even: free
  if (free_slots_.size() == free_slots_.capacity()) ++stats_.allocations;
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(index));
  --live_;
  ++stats_.popped;
  if (live_ * kShrinkFactor < buckets_.size() &&
      buckets_.size() > kMinBuckets) {
    rehash(buckets_.size() / 2);
  }
  return event;
}

}  // namespace lrt::sim
