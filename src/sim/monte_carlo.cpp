#include "sim/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "reliability/analysis.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace lrt::sim {

namespace {

/// Everything one trial contributes to the aggregate. SimulationResult
/// value traces are dropped eagerly so a large campaign with a recording
/// SimulationOptions does not hold every trial's traces at once.
struct TrialOutcome {
  Status error;  ///< OK unless the trial's simulate() failed
  std::vector<CommStats> comm_stats;
  std::int64_t invocations = 0;
  std::int64_t invocation_failures = 0;
  std::int64_t committed_updates = 0;
  std::int64_t vote_divergences = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t remaps_installed = 0;
};

}  // namespace

const CommAggregate* ValidationReport::find(std::string_view name) const {
  for (const CommAggregate& comm : communicators) {
    if (comm.name == name) return &comm;
  }
  return nullptr;
}

std::string ValidationReport::summary() const {
  std::string out = "monte carlo: " + std::to_string(trials) + " trials x " +
                    std::to_string(periods_per_trial) + " periods, " +
                    std::to_string(threads) + " threads, " +
                    format_double(trials_per_second) + " trials/s\n";
  if (failed_trials > 0) {
    out += "degraded: " + std::to_string(failed_trials) +
           " trial(s) failed, pooled over the survivors (first " +
           first_trial_error + ")\n";
  }
  out += analysis_sound ? "analysis SOUND" : "analysis UNSOUND";
  out += implementation_reliable ? ", implementation RELIABLE\n"
                                 : ", implementation UNRELIABLE\n";
  for (const CommAggregate& c : communicators) {
    out += "  " + c.name + ": empirical=" + format_double(c.empirical) +
           " ci=[" + format_double(c.interval.low) + ", " +
           format_double(c.interval.high) +
           "] lambda=" + format_double(c.analytic_srg) +
           " mu=" + format_double(c.lrc) +
           (c.analysis_sound ? "" : " ANALYSIS-UNSOUND") +
           (c.meets_lrc ? " OK" : " VIOLATED") + "\n";
  }
  return out;
}

std::string to_json(const ValidationReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("implementation");
  json.value(report.implementation);
  json.key("trials");
  json.value(report.trials);
  json.key("seed");
  json.value(static_cast<std::int64_t>(report.seed));
  json.key("threads");
  json.value(static_cast<std::int64_t>(report.threads));
  json.key("periods_per_trial");
  json.value(report.periods_per_trial);
  json.key("z");
  json.value(report.z);
  json.key("elapsed_seconds");
  json.value(report.elapsed_seconds);
  json.key("trials_per_second");
  json.value(report.trials_per_second);
  json.key("invocations");
  json.value(report.invocations);
  json.key("invocation_failures");
  json.value(report.invocation_failures);
  json.key("committed_updates");
  json.value(report.committed_updates);
  json.key("vote_divergences");
  json.value(report.vote_divergences);
  json.key("deadline_misses");
  json.value(report.deadline_misses);
  json.key("remaps_installed");
  json.value(report.remaps_installed);
  json.key("failed_trials");
  json.value(report.failed_trials);
  json.key("first_trial_error");
  json.value(report.first_trial_error);
  json.key("analysis_sound");
  json.value(report.analysis_sound);
  json.key("implementation_reliable");
  json.value(report.implementation_reliable);
  json.key("communicators");
  json.begin_array();
  for (const CommAggregate& c : report.communicators) {
    json.begin_object();
    json.key("name");
    json.value(c.name);
    json.key("updates");
    json.value(c.updates);
    json.key("reliable_updates");
    json.value(c.reliable_updates);
    json.key("empirical");
    json.value(c.empirical);
    json.key("ci_low");
    json.value(c.interval.low);
    json.key("ci_high");
    json.value(c.interval.high);
    json.key("mean_limit_average");
    json.value(c.mean_limit_average);
    json.key("stddev_limit_average");
    json.value(c.stddev_limit_average);
    json.key("min_trial_rate");
    json.value(c.min_trial_rate);
    json.key("max_trial_rate");
    json.value(c.max_trial_rate);
    json.key("analytic_srg");
    json.value(c.analytic_srg);
    json.key("lrc");
    json.value(c.lrc);
    json.key("analysis_sound");
    json.value(c.analysis_sound);
    json.key("meets_lrc");
    json.value(c.meets_lrc);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

MonteCarloRunner::MonteCarloRunner(MonteCarloOptions options)
    : options_(std::move(options)) {}

Result<ValidationReport> MonteCarloRunner::run(
    const impl::Implementation& impl) const {
  if (options_.trials <= 0) {
    return InvalidArgumentError("monte carlo: trials must be positive, got " +
                                std::to_string(options_.trials));
  }
  const auto num_trials = static_cast<std::size_t>(options_.trials);

  // Expand the base seed into one independent stream seed per trial,
  // up front and in trial order: trial k's stream never depends on which
  // thread runs it.
  std::vector<std::uint64_t> seeds(num_trials);
  SplitMix64 root(options_.seed);
  for (auto& seed : seeds) seed = root.next();

  std::vector<TrialOutcome> outcomes(num_trials);
  ThreadPool pool(options_.threads);

  obs::Sink* sink = obs::resolve_sink(options_.sink);
  obs::Tracer* tracer = sink != nullptr ? sink->tracer() : nullptr;
  const obs::SpanGuard campaign_span(sink, "mc", "run");
  // Workers sample how many trials are in flight when theirs starts; the
  // counts are timing-dependent, so they live in a histogram, not in the
  // deterministic counter set.
  std::atomic<int> active_trials{0};

  const auto start = std::chrono::steady_clock::now();
  pool.parallel_for(options_.trials, [&](std::int64_t trial) {
    SimulationOptions trial_options = options_.simulation;
    trial_options.faults.seed = seeds[static_cast<std::size_t>(trial)];
    // Nesting precedence: a multi-threaded trial pool already saturates
    // the cores, so per-trial engine parallelism is forced off — K trial
    // threads times L LP threads would oversubscribe the machine. The
    // engine budget passes through only for single-threaded campaigns.
    if (pool.size() > 1) trial_options.threads = 1;
    if (trial_options.sink == nullptr) trial_options.sink = sink;
    std::unique_ptr<Environment> owned_env =
        options_.environment_factory ? options_.environment_factory()
                                     : std::make_unique<NullEnvironment>();
    trial_options.monitor =
        options_.monitor_factory ? options_.monitor_factory(trial) : nullptr;
    std::int64_t trial_start_us = 0;
    if (sink != nullptr) {
      sink->histogram_record(
          "mc.pool_active",
          active_trials.fetch_add(1, std::memory_order_relaxed) + 1);
      if (tracer != nullptr) trial_start_us = tracer->now_us();
    }
    const auto wall_start = std::chrono::steady_clock::now();
    auto result = simulate(impl, *owned_env, trial_options);
    if (sink != nullptr) {
      active_trials.fetch_sub(1, std::memory_order_relaxed);
      sink->histogram_record(
          "mc.trial_ms",
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start)
              .count());
      if (tracer != nullptr)
        tracer->complete("mc", "trial", trial_start_us, tracer->now_us(),
                         {{"trial", static_cast<double>(trial)},
                          {"ok", result.ok() ? 1.0 : 0.0}});
    }
    TrialOutcome& out = outcomes[static_cast<std::size_t>(trial)];
    if (!result.ok()) {
      out.error = result.status();
      return;
    }
    out.comm_stats = std::move(result->comm_stats);
    out.invocations = result->invocations;
    out.invocation_failures = result->invocation_failures;
    out.committed_updates = result->committed_updates;
    out.vote_divergences = result->vote_divergences;
    out.deadline_misses = result->deadline_misses;
    out.remaps_installed = result->remaps_installed;
  });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  // Graceful degradation: failed trials are recorded and excluded from the
  // pool (deterministically — the lowest failing trial names the error);
  // the campaign itself dies only when no trial survived.
  std::int64_t failed_trials = 0;
  std::string first_trial_error;
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    if (outcomes[trial].error.ok()) continue;
    ++failed_trials;
    // Failure causes are counted here, in the sequential reduction, so
    // the metric snapshot is identical for every thread count.
    if (sink != nullptr)
      sink->counter_add(
          "sim.trial_failures." +
          std::string(to_string(outcomes[trial].error.code())));
    if (first_trial_error.empty()) {
      first_trial_error = "trial " + std::to_string(trial) + ": " +
                          outcomes[trial].error.to_string();
    }
  }
  if (sink != nullptr) {
    sink->counter_add("sim.trials", options_.trials - failed_trials);
    sink->counter_add("sim.trial_failures", failed_trials);
    sink->gauge_set("mc.threads", pool.size());
  }
  if (failed_trials == options_.trials) {
    const Status& error = outcomes[0].error;
    return Status(error.code(),
                  "monte carlo: all " + std::to_string(options_.trials) +
                      " trials failed; first " + first_trial_error);
  }
  const auto survivors =
      static_cast<double>(options_.trials - failed_trials);

  const spec::Specification& spec = impl.specification();
  const std::size_t num_comms = spec.communicators().size();
  // The greatest-fixpoint SRGs are defined for every specification and
  // coincide with the inductive ones whenever those exist (on unsafe
  // cycles they converge to the paper's long-run value 0), so the
  // cross-check never has to reject an implementation.
  const std::vector<double> srgs =
      reliability::compute_srgs_fixpoint(impl);

  ValidationReport report;
  report.implementation = impl.name();
  report.trials = options_.trials;
  report.seed = options_.seed;
  report.threads = pool.size();
  report.periods_per_trial = options_.simulation.periods;
  report.z = options_.z;
  report.elapsed_seconds = elapsed.count();
  report.trials_per_second =
      elapsed.count() > 0.0
          ? static_cast<double>(options_.trials) / elapsed.count()
          : 0.0;
  report.communicators.resize(num_comms);

  report.failed_trials = failed_trials;
  report.first_trial_error = first_trial_error;

  // All reductions below run sequentially in trial order, so the report
  // is bit-identical for every thread count.
  for (const TrialOutcome& out : outcomes) {
    if (!out.error.ok()) continue;
    report.invocations += out.invocations;
    report.invocation_failures += out.invocation_failures;
    report.committed_updates += out.committed_updates;
    report.vote_divergences += out.vote_divergences;
    report.deadline_misses += out.deadline_misses;
    report.remaps_installed += out.remaps_installed;
  }

  for (std::size_t c = 0; c < num_comms; ++c) {
    CommAggregate& agg = report.communicators[c];
    agg.name = spec.communicators()[c].name;
    agg.analytic_srg = srgs[c];
    agg.lrc = spec.communicators()[c].lrc;

    double sum_limavg = 0.0;
    double sum_sq_limavg = 0.0;
    agg.min_trial_rate = 1.0;
    agg.max_trial_rate = 0.0;
    for (const TrialOutcome& out : outcomes) {
      if (!out.error.ok()) continue;
      const CommStats& stats = out.comm_stats[c];
      agg.updates += stats.updates;
      agg.reliable_updates += stats.reliable_updates;
      const double rate = stats.update_rate();
      agg.min_trial_rate = std::min(agg.min_trial_rate, rate);
      agg.max_trial_rate = std::max(agg.max_trial_rate, rate);
      sum_limavg += stats.limit_average;
      sum_sq_limavg += stats.limit_average * stats.limit_average;
    }
    const double n = survivors;
    agg.empirical = agg.updates == 0
                        ? 1.0
                        : static_cast<double>(agg.reliable_updates) /
                              static_cast<double>(agg.updates);
    agg.interval = wilson_interval(agg.reliable_updates, agg.updates,
                                   options_.z);
    agg.mean_limit_average = sum_limavg / n;
    const double variance =
        n > 1.0
            ? std::max(0.0, (sum_sq_limavg - sum_limavg * sum_limavg / n) /
                                (n - 1.0))
            : 0.0;
    agg.stddev_limit_average = std::sqrt(variance);
    agg.analysis_sound = agg.interval.high >= agg.analytic_srg;
    agg.meets_lrc = agg.interval.high >= agg.lrc;
    report.analysis_sound = report.analysis_sound && agg.analysis_sound;
    report.implementation_reliable =
        report.implementation_reliable && agg.meets_lrc;
  }
  return report;
}

}  // namespace lrt::sim
