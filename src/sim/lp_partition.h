// Partitioning a workload into logical processes (LPs) for the
// conservative parallel event engine (parallel_runtime.cpp).
//
// The unit of distribution is the host: two hosts must share an LP when
// they co-execute replications of one task (they feed the same votes) or
// host writers of the same communicator (they feed the same commits).
// Union-find over those constraints yields connected components; the
// components are packed onto at most `max_lps` LPs by longest-processing-
// time-first on an activations-per-hyperperiod load estimate. Every task
// and communicator is then owned by exactly one LP:
//
//  * a task belongs to its hosts' component (hostless tasks go to LP 0 —
//    their releases are calendar no-ops that only keep event counts
//    aligned with the sequential engine);
//  * a task-written communicator belongs to its writers' component, and
//    each foreign LP reading it gets a channel edge carrying its commits;
//  * a sensor communicator belongs to its first hosted reader's component
//    for accounting, and is *replayed* (not forwarded) by other reading
//    LPs — the keyed fault draw and a parallel_safe environment make the
//    recomputation exact, so sensors never create edges.
//
// Each channel edge carries a lookahead L >= 1: once the producer has
// completed instant t, every commit of the edge's communicators at
// W <= t + L is determined. In logical-execution mode L is the minimum
// write-offset-minus-read-time gap of the writers (a commit at W only
// receives candidates from releases at W - gap); in timed mode it is the
// writers' minimum WCTT (a candidate for W must complete execution by
// W - WCTT, which the producer has already simulated). A would-be edge
// with L < 1 cannot advance its consumer past the producer's clock, so
// its endpoints are merged instead — the deadlock-freedom argument in
// DESIGN.md section 5j needs strictly positive lookahead everywhere.
#ifndef LRT_SIM_LP_PARTITION_H_
#define LRT_SIM_LP_PARTITION_H_

#include <span>
#include <vector>

#include "impl/implementation.h"
#include "sim/runtime.h"
#include "sim/runtime_core.h"

namespace lrt::sim::detail {

/// A directed cross-LP edge: the owner of `comms` forwards every commit
/// of them — plus conservative time guarantees — to one consumer LP.
struct LpChannelSpec {
  int from = -1;
  int to = -1;
  std::vector<spec::CommId> comms;  ///< ascending
  /// Edge lookahead: min over `comms` of the per-communicator lookahead
  /// described above. Always >= 1 (zero-lookahead edges are merged away).
  spec::Time lookahead = 1;
};

struct LpPartition {
  int count = 1;
  std::vector<int> comm_owner;    ///< CommId -> owning LP
  std::vector<ShardSpec> shards;  ///< indexed by LP; shards[0].primary
  std::vector<LpChannelSpec> channels;
};

/// Builds the LP partition for a run of `phases` under `options`, using
/// at most `max_lps` logical processes. Deterministic: a pure function of
/// the workload shape (phases, timing tables, max_lps) — never of thread
/// scheduling. Returns count == 1 when the workload does not shard (one
/// connected component, or max_lps <= 1); the caller then falls back to
/// the sequential event engine.
[[nodiscard]] LpPartition partition_workload(
    std::span<const impl::Implementation> phases,
    const SimulationOptions& options, int max_lps);

}  // namespace lrt::sim::detail

#endif  // LRT_SIM_LP_PARTITION_H_
