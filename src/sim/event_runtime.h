// The calendar-queue discrete-event engine (SimulationOptions::Engine::
// kEvent): advances straight to the next scheduled activation instead of
// iterating the harmonic tick grid.
//
// Activation sources, all fed through one sim::EventQueue:
//  * kCommAccess  — every multiple of each communicator's period (the
//    paper's access instants: commits, Z_j sampling, actuation, latches);
//  * kTaskRelease — each task's read instant, once per specification
//    period (cancelled when a monitor remap unmaps the task);
//  * kPeriodBoundary — the RuntimeMonitor remap hook and the per-period
//    trace span;
//  * kHostAvailability — scripted fault-plan events, rounded up to the
//    grid tick at which the tick engine would apply them.
//
// Every instant the tick engine's body can do work at is one of these
// (DESIGN.md 5g gives the argument), and the body itself is the shared
// detail::RuntimeCore — so traces, counters, monitor callbacks, and RNG
// draws are bit-identical to Engine::kTick. Idle gaps are bridged with a
// single EDF-processor window and one environment advance (honouring
// Environment::advance_granularity()).
//
// Internal header: user code selects the engine via SimulationOptions.
#ifndef LRT_SIM_EVENT_RUNTIME_H_
#define LRT_SIM_EVENT_RUNTIME_H_

#include <span>

#include "impl/implementation.h"
#include "sim/environment.h"
#include "sim/runtime.h"
#include "support/status.h"

namespace lrt::sim::detail {

/// Runs one simulation on the event engine. Pre-validated by
/// simulate_time_dependent (nonempty phases, shared models, positive
/// periods); produces a result bit-identical to the tick engine's.
[[nodiscard]] Result<SimulationResult> run_event_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options);

}  // namespace lrt::sim::detail

#endif  // LRT_SIM_EVENT_RUNTIME_H_
