// Parallel Monte Carlo validation of the reliability analysis (paper
// Proposition 1).
//
// The analysis promises that the SRG lambda_c lower-bounds, with
// probability 1, the long-run average of the reliability-abstract trace of
// every communicator c. MonteCarloRunner turns the simulator into a
// statistical check of that claim at scale: it fans N independent
// fault-injected simulations across a thread pool, pools the
// per-communicator update outcomes into an empirical reliability with a
// Wilson confidence interval, and cross-checks the interval against the
// analytic lambda_c and the declared LRC mu_c:
//   * interval entirely below lambda_c  => the analysis over-promised —
//     Proposition 1 (or the simulator) has a bug;
//   * interval entirely below mu_c      => the implementation misses its
//     logical reliability constraint in practice.
//
// Determinism: trial k draws its RNG seed from a SplitMix64 stream over
// the base seed, and all reductions run sequentially in trial order after
// the pool drains, so the aggregate statistics are bit-identical for every
// thread count (MIMOS-style: deterministic per trial, parallel across
// trials).
#ifndef LRT_SIM_MONTE_CARLO_H_
#define LRT_SIM_MONTE_CARLO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "impl/implementation.h"
#include "sim/environment.h"
#include "sim/runtime.h"
#include "sim/trace.h"
#include "support/rng.h"
#include "support/status.h"

namespace lrt::sim {

struct MonteCarloOptions {
  /// Per-trial simulation configuration. faults.seed is ignored — every
  /// trial's seed is derived from `seed` instead.
  SimulationOptions simulation;
  std::int64_t trials = 100;
  /// Base seed of the per-trial SplitMix64 seed stream (the shared `seed`
  /// field name across all entry-point options).
  std::uint64_t seed = kDefaultRngSeed;
  /// Total parallelism including the calling thread; 0 = one per core.
  /// Precedence over the inner engine: when the trial pool resolves to
  /// more than one thread, every trial runs with
  /// SimulationOptions::threads = 1 (the outer pool already saturates
  /// the cores; nesting the parallel event engine's LP pool inside it
  /// would oversubscribe). SimulationOptions::threads therefore only
  /// takes effect in single-threaded campaigns (threads == 1).
  unsigned threads = 0;
  /// Observability sink for campaign counters ("sim.trials", failure
  /// causes) and per-trial spans/timing histograms. Null falls back to
  /// the process-global sink; also inherited by simulation.sink when that
  /// is null, so per-run runtime counters pool across trials.
  obs::Sink* sink = nullptr;
  /// z-score of the per-communicator Wilson interval (2.576 ~ 99%).
  double z = 2.576;
  /// Builds the environment for one trial; called once per trial, from the
  /// trial's worker thread. Null = a fresh NullEnvironment per trial.
  std::function<std::unique_ptr<Environment>()> environment_factory;
  /// Builds the RuntimeMonitor for one trial (e.g. an adapt self-healing
  /// controller); called once per trial, from the trial's worker thread,
  /// and installed as that trial's SimulationOptions::monitor. The caller
  /// owns the returned monitor and must keep it alive until run() returns
  /// (the recovery validator keeps one per trial to reduce afterwards).
  /// Null factory or null return = no monitor for that trial.
  std::function<RuntimeMonitor*(std::int64_t trial)> monitor_factory;
};

/// Pooled per-communicator statistics across all trials.
struct CommAggregate {
  std::string name;
  /// Update events pooled over every trial (the paper's natural empirical
  /// estimate of the SRG).
  std::int64_t updates = 0;
  std::int64_t reliable_updates = 0;
  /// reliable_updates / updates (1.0 when no updates occurred).
  double empirical = 1.0;
  /// Wilson interval on the pooled update reliability.
  ConfidenceInterval interval;
  /// Mean and sample standard deviation over trials of the per-trial
  /// limit average of the reliability-abstract trace.
  double mean_limit_average = 1.0;
  double stddev_limit_average = 0.0;
  /// Extremes of the per-trial update reliabilities.
  double min_trial_rate = 1.0;
  double max_trial_rate = 1.0;
  /// The analytic guarantee lambda_c and the declared constraint mu_c.
  double analytic_srg = 1.0;
  double lrc = 1.0;
  /// False iff interval.high < analytic_srg: the empirical reliability is
  /// statistically below the analysis' lower bound — an unsoundness bug.
  bool analysis_sound = true;
  /// False iff interval.high < lrc: the communicator demonstrably misses
  /// its LRC over the long run.
  bool meets_lrc = true;
};

/// Aggregate of a whole Monte Carlo campaign, with the analytic
/// cross-check verdicts.
struct ValidationReport {
  std::string implementation;
  std::int64_t trials = 0;
  std::uint64_t seed = 0;
  unsigned threads = 0;  ///< resolved parallelism actually used
  std::int64_t periods_per_trial = 0;
  double z = 2.576;
  double elapsed_seconds = 0.0;
  double trials_per_second = 0.0;
  /// Trials whose simulate() returned an error. Aggregates pool over the
  /// survivors only; the campaign itself fails only when every trial dies.
  std::int64_t failed_trials = 0;
  /// Error of the lowest-numbered failed trial ("" when none failed).
  std::string first_trial_error;
  /// Counters summed over all surviving trials.
  std::int64_t invocations = 0;
  std::int64_t invocation_failures = 0;
  std::int64_t committed_updates = 0;
  std::int64_t vote_divergences = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t remaps_installed = 0;
  /// Conjunction of the per-communicator verdicts.
  bool analysis_sound = true;
  bool implementation_reliable = true;
  std::vector<CommAggregate> communicators;  ///< indexed by CommId

  [[nodiscard]] const CommAggregate* find(std::string_view name) const;
  /// Multi-line per-communicator table (empirical vs lambda_c vs mu_c).
  [[nodiscard]] std::string summary() const;
};

/// JSON document for tooling and CI artifacts: {implementation, trials,
/// seed, ..., communicators: [{name, updates, reliable_updates,
/// empirical, ci_low, ci_high, mean_limit_average, analytic_srg, lrc,
/// analysis_sound, meets_lrc}]}. Timing fields are included (elapsed
/// seconds, trials/s) — strip them before byte-comparing reports.
[[nodiscard]] std::string to_json(const ValidationReport& report);

/// Runs Monte Carlo campaigns over one implementation. The referenced
/// options (and any environment_factory state) must outlive the runner.
class MonteCarloRunner {
 public:
  explicit MonteCarloRunner(MonteCarloOptions options);

  /// Simulates options.trials independent trials of `impl` and aggregates.
  /// Individual trial errors degrade gracefully: they are counted in the
  /// report (failed_trials, first_trial_error) and the statistics pool
  /// over the survivors; the run itself fails only on an invalid trial
  /// count or when every trial errors. The analytic cross-check uses the
  /// fixpoint SRGs, which exist for every specification.
  [[nodiscard]] Result<ValidationReport> run(
      const impl::Implementation& impl) const;

 private:
  MonteCarloOptions options_;
};

}  // namespace lrt::sim

#endif  // LRT_SIM_MONTE_CARLO_H_
