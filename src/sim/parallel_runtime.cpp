#include "sim/parallel_runtime.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/event_runtime.h"
#include "sim/lp_partition.h"
#include "sim/runtime_core.h"
#include "support/thread_pool.h"

namespace lrt::sim::detail {

namespace {

using spec::CommId;
using spec::TaskId;
using spec::Time;
using spec::Value;

/// One voted commit crossing an LP boundary.
struct Commit {
  Time at = 0;
  CommId comm = -1;
  Value winner;
};

/// A channel message: every commit of the edge's communicators in
/// (previous safe, safe], plus the guarantee that no further commit of
/// them at or before `safe` will ever be produced. An empty batch is a
/// null message — pure lookahead, keeping the consumer from stalling.
struct Batch {
  Time safe = -1;
  std::vector<Commit> commits;
};

/// Single-producer single-consumer commit stream for one partition edge.
/// The producer appends batches with strictly increasing `safe`; the
/// consumer drains in order, so staged commits arrive time-sorted per
/// edge. Only this queue is shared between threads — all simulation
/// state stays LP-private.
class CommitChannel {
 public:
  void publish(Batch&& batch) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      batches_.push_back(std::move(batch));
    }
    cv_.notify_one();
  }

  /// Consumer side: blocks until the producer has guaranteed instant
  /// `at`, staging every drained commit into `core`. Wall-clock spent
  /// blocked is accumulated into `blocked_ns` (diagnostic only — never
  /// part of the deterministic counter set).
  void drain_until(Time at, RuntimeCore& core, std::int64_t& blocked_ns) {
    while (seen_ < at) {
      std::deque<Batch> drained;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (batches_.empty()) {
          const auto start = std::chrono::steady_clock::now();
          cv_.wait(lock, [&] { return !batches_.empty(); });
          blocked_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        }
        drained.swap(batches_);
      }
      for (Batch& batch : drained) {
        for (Commit& commit : batch.commits) {
          core.stage_foreign_commit(commit.at, commit.comm,
                                    std::move(commit.winner));
        }
        seen_ = batch.safe;
      }
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Batch> batches_;
  Time seen_ = -1;  ///< consumer-only: latest guarantee drained
};

/// Producer-side state of one out-edge.
struct OutEdge {
  CommitChannel* channel = nullptr;
  Time lookahead = 1;
  std::vector<CommId> comms;
  /// Deduplicated relative write offsets per entry of `comms`.
  std::vector<std::vector<Time>> offsets;
  Time published = -1;  ///< commits at or before this are already sent
  Time safe = -1;       ///< latest guarantee sent
};

/// Mirrors round_up_to_grid in event_runtime.cpp (no swaps here, so the
/// epoch is always 0).
Time round_up_to_grid(Time time, Time step) {
  if (time <= 0) return 0;
  return ((time + step - 1) / step) * step;
}

std::size_t wheel_buckets(std::size_t n) {
  std::size_t size = 8;
  while (size < n && size < 4096) size *= 2;
  return size;
}

/// Per-LP run state and diagnostics.
struct Lp {
  RuntimeCore* core = nullptr;
  std::vector<CommitChannel*> in_channels;
  std::vector<OutEdge> out_edges;
  /// Foreign-owned communicators an owned task reads (shadow sensors and
  /// in-edge comms). Their access instants are ticked locally — replay
  /// and latch instants must be visited — but never counted.
  std::vector<CommId> foreign_read;
  std::int64_t events = 0;
  std::int64_t active_instants = 0;
  std::int64_t null_messages = 0;
  std::int64_t blocked_ns = 0;
  std::int64_t queue_allocations = 0;
  std::int64_t queue_resizes = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  Status status;
};

/// Sends every undelivered commit guarantee up to `frontier_next` (the
/// producer's next event time) on one edge. Commits in the newly safe
/// window are resolved early — side-effect free — from the pending
/// broadcasts and the scripted fault plan; the producer's own tick later
/// recomputes the identical winner with full accounting.
void publish_edge(const RuntimeCore& core, OutEdge& edge, Time frontier_next,
                  Time duration, Time hyperperiod,
                  std::int64_t& null_messages) {
  const Time safe = std::min(frontier_next - 1 + edge.lookahead, duration);
  if (safe <= edge.safe) return;
  Batch batch;
  batch.safe = safe;
  const Time up_to = std::min(safe, duration - 1);
  for (std::size_t k = 0; k < edge.comms.size(); ++k) {
    for (const Time offset : edge.offsets[k]) {
      Time at = offset;
      if (at <= edge.published) {
        at = offset +
             ((edge.published - offset) / hyperperiod + 1) * hyperperiod;
      }
      for (; at <= up_to; at += hyperperiod) {
        batch.commits.push_back(
            {at, edge.comms[k],
             core.resolve_commit_winner(edge.comms[k], at)});
      }
    }
  }
  std::sort(batch.commits.begin(), batch.commits.end(),
            [](const Commit& a, const Commit& b) {
              return a.at != b.at ? a.at < b.at : a.comm < b.comm;
            });
  if (batch.commits.empty()) ++null_messages;
  edge.published = std::max(edge.published, up_to);
  edge.safe = safe;
  edge.channel->publish(std::move(batch));
}

/// The sequential event loop of event_runtime.cpp restricted to one LP:
/// same calendar classes, same drain-tick-advance structure, plus the
/// conservative wait before each instant and a publish after each. The
/// hot-swap/remap resync machinery is absent by construction — monitored
/// runs never reach this engine.
void run_lp(Lp& lp, bool primary, const LpPartition& partition, int index) {
  RuntimeCore& core = *lp.core;
  obs::Tracer* tracer = core.tracer();
  lp.start_us = tracer != nullptr ? tracer->now_us() : 0;
  const Time duration = core.duration();
  const Time step = core.step();
  const Time hyperperiod = core.hyperperiod();
  const ShardSpec& shard = partition.shards[static_cast<std::size_t>(index)];

  for (OutEdge& edge : lp.out_edges) {
    edge.offsets.reserve(edge.comms.size());
    for (const CommId c : edge.comms) {
      std::vector<Time> offsets = core.write_offsets(c);
      std::sort(offsets.begin(), offsets.end());
      offsets.erase(std::unique(offsets.begin(), offsets.end()),
                    offsets.end());
      edge.offsets.push_back(std::move(offsets));
    }
  }

  // Local calendar: owned sources are counted toward sim.events (each is
  // popped by exactly one LP, so the totals sum to the sequential
  // engine's); foreign-read access instants are ticked but not counted.
  std::vector<CommId> access_comms = shard.comms;
  access_comms.insert(access_comms.end(), lp.foreign_read.begin(),
                      lp.foreign_read.end());
  std::sort(access_comms.begin(), access_comms.end());
  const std::size_t population = access_comms.size() + shard.tasks.size() +
                                 core.host_events().size() + 4;
  Time activations = 1;
  for (const CommId c : access_comms) {
    activations += hyperperiod / core.spec().communicator(c).period;
  }
  activations += static_cast<Time>(shard.tasks.size());
  EventQueue queue(std::max<Time>(1, hyperperiod / activations),
                   wheel_buckets(population));

  std::vector<bool> owned_comm(core.spec().communicators().size(), false);
  for (const CommId c : shard.comms) {
    owned_comm[static_cast<std::size_t>(c)] = true;
  }
  for (const CommId c : access_comms) {
    queue.schedule(0, EventClass::kCommAccess, static_cast<std::uint64_t>(c));
  }
  for (const TaskId t : shard.tasks) {
    queue.schedule(core.spec().read_time(t), EventClass::kTaskRelease,
                   static_cast<std::uint64_t>(t));
  }
  if (primary) queue.schedule(0, EventClass::kPeriodBoundary);
  for (std::size_t e = 0; e < core.host_events().size(); ++e) {
    const Time at = round_up_to_grid(core.host_events()[e].time, step);
    if (at < duration) {
      queue.schedule(at, EventClass::kHostAvailability,
                     static_cast<std::uint64_t>(e));
    }
  }

  // Bootstrap guarantees: commits at or before lookahead - 1 can have no
  // contributor (a release or arrival would predate instant 0), so they
  // resolve before any tick — and consumers of a cyclic edge pair would
  // otherwise deadlock waiting for each other's first instant.
  for (OutEdge& edge : lp.out_edges) {
    publish_edge(core, edge, 0, duration, hyperperiod, lp.null_messages);
  }

  Time now = 0;
  while (!queue.empty()) {
    const Time at = queue.next_time();
    if (at >= duration) break;
    for (CommitChannel* channel : lp.in_channels) {
      channel->drain_until(at, core, lp.blocked_ns);
    }
    while (!queue.empty() && queue.next_time() == at) {
      const Event event = queue.pop();
      switch (event.klass) {
        case EventClass::kCommAccess:
          lp.events += owned_comm[static_cast<std::size_t>(event.payload)];
          queue.schedule(at + core.spec()
                                  .communicator(static_cast<CommId>(
                                      event.payload))
                                  .period,
                         EventClass::kCommAccess, event.payload);
          break;
        case EventClass::kTaskRelease:
          ++lp.events;
          queue.schedule(at + hyperperiod, EventClass::kTaskRelease,
                         event.payload);
          break;
        case EventClass::kPeriodBoundary:
          ++lp.events;
          queue.schedule(at + hyperperiod, EventClass::kPeriodBoundary);
          break;
        case EventClass::kHostAvailability:
          ++lp.events;  // one-shot
          break;
      }
    }
    lp.status = core.tick(at);
    if (!lp.status.ok()) break;
    ++lp.active_instants;
    const Time next =
        queue.empty() ? duration : std::min(queue.next_time(), duration);
    core.advance_processors(at, next);
    // parallel_safe environments have a no-op advance(), so skipping
    // advance_environment here is exact — and keeps shards from racing
    // over the shared environment.
    for (OutEdge& edge : lp.out_edges) {
      publish_edge(core, edge, next, duration, hyperperiod,
                   lp.null_messages);
    }
    now = next;
  }
  if (lp.status.ok()) core.advance_processors(now, duration);
  // Final guarantee, also on the error path: a consumer blocked on this
  // edge must never wait forever.
  for (OutEdge& edge : lp.out_edges) {
    publish_edge(core, edge, duration, duration, hyperperiod,
                 lp.null_messages);
  }
  lp.queue_allocations = queue.stats().allocations;
  lp.queue_resizes = queue.stats().resizes;
  lp.end_us = tracer != nullptr ? tracer->now_us() : 0;
}

}  // namespace

Result<SimulationResult> run_parallel_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options) {
  // Conservative coalesce: a monitor can dirty the partition at any
  // boundary (remap or hot-swap), a non-parallel_safe environment cannot
  // be shared, and a budget of one buys nothing. The sequential event
  // engine IS this engine at one LP — counters included.
  const unsigned hardware = std::thread::hardware_concurrency();
  const int budget = options.threads > 0
                         ? options.threads
                         : static_cast<int>(hardware > 0 ? hardware : 1);
  if (options.monitor != nullptr || !env.parallel_safe() || budget <= 1) {
    return run_event_engine(phases, env, options);
  }
  const LpPartition partition = partition_workload(phases, options, budget);
  if (partition.count <= 1) return run_event_engine(phases, env, options);
  const auto count = static_cast<std::size_t>(partition.count);

  std::deque<RuntimeCore> cores;
  for (std::size_t i = 0; i < count; ++i) {
    cores.emplace_back(phases, env, options, &partition.shards[i]);
  }
  // Every shard validates the full configuration, so a bad setup fails
  // here with the sequential engine's error, before any thread spawns.
  for (RuntimeCore& core : cores) {
    LRT_RETURN_IF_ERROR(core.init());
  }

  std::deque<CommitChannel> channels(partition.channels.size());
  std::vector<Lp> lps(count);
  for (std::size_t i = 0; i < count; ++i) {
    lps[i].core = &cores[i];
  }
  for (std::size_t e = 0; e < partition.channels.size(); ++e) {
    const LpChannelSpec& spec = partition.channels[e];
    OutEdge edge;
    edge.channel = &channels[e];
    edge.lookahead = spec.lookahead;
    edge.comms = spec.comms;
    lps[static_cast<std::size_t>(spec.from)].out_edges.push_back(
        std::move(edge));
    lps[static_cast<std::size_t>(spec.to)].in_channels.push_back(
        &channels[e]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<CommId>& foreign = lps[i].foreign_read;
    foreign = partition.shards[i].shadow_comms;
    for (const LpChannelSpec& spec : partition.channels) {
      if (static_cast<std::size_t>(spec.to) != i) continue;
      foreign.insert(foreign.end(), spec.comms.begin(), spec.comms.end());
    }
    std::sort(foreign.begin(), foreign.end());
    foreign.erase(std::unique(foreign.begin(), foreign.end()),
                  foreign.end());
  }

  // One pool thread per LP: each blocking LP body owns a thread for the
  // whole run, so the conservative waits can never starve an unclaimed
  // LP (the partition never exceeds the requested budget).
  {
    ThreadPool pool(static_cast<unsigned>(partition.count));
    pool.parallel_for(partition.count, [&](std::int64_t i) {
      run_lp(lps[static_cast<std::size_t>(i)], /*primary=*/i == 0, partition,
             static_cast<int>(i));
    });
  }
  for (const Lp& lp : lps) {
    LRT_RETURN_IF_ERROR(lp.status);
  }

  obs::Tracer* tracer = cores.front().tracer();
  const obs::Sink* sink = cores.front().sink();
  std::int64_t events = 0;
  std::int64_t null_messages = 0;
  std::int64_t blocked_ns = 0;
  std::int64_t queue_allocations = 0;
  std::int64_t queue_resizes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    events += lps[i].events;
    null_messages += lps[i].null_messages;
    blocked_ns += lps[i].blocked_ns;
    queue_allocations += lps[i].queue_allocations;
    queue_resizes += lps[i].queue_resizes;
    if (tracer != nullptr) {
      tracer->complete(
          "sim", "lp", lps[i].start_us, lps[i].end_us,
          {{"lp", static_cast<double>(i)},
           {"events", static_cast<double>(lps[i].events)},
           {"active_instants", static_cast<double>(lps[i].active_instants)},
           {"null_messages", static_cast<double>(lps[i].null_messages)}});
    }
  }
  if (sink != nullptr) {
    // sim.events matches the sequential engines exactly (each source is
    // owned once); the sim.lp_* trio and sim.null_messages are
    // parallel-only diagnostics, excluded from differential comparison.
    // sim.ticks_skipped is not emitted at LP counts > 1.
    sink->counter_add("sim.events", events);
    sink->counter_add("sim.lp_count", partition.count);
    sink->counter_add("sim.null_messages", null_messages);
    sink->counter_add("sim.lp_blocked_ns", blocked_ns);
    sink->counter_add("sim.queue_allocations", queue_allocations);
    sink->counter_add("sim.queue_resizes", queue_resizes);
  }

  // Merge: run-level fields from the primary shard, additive totals
  // summed, per-communicator statistics and value traces from the owner.
  SimulationResult merged = cores.front().finish();
  for (std::size_t i = 1; i < count; ++i) {
    SimulationResult part = cores[i].finish();
    merged.invocations += part.invocations;
    merged.invocation_failures += part.invocation_failures;
    merged.committed_updates += part.committed_updates;
    merged.vote_divergences += part.vote_divergences;
    merged.deadline_misses += part.deadline_misses;
    // Per-communicator data comes from the owner only: every shard
    // registers all record_values_for names (with empty traces for
    // foreign comms), so a blind map-merge would clobber real traces.
    for (std::size_t c = 0; c < merged.comm_stats.size(); ++c) {
      if (partition.comm_owner[c] != static_cast<int>(i)) continue;
      merged.comm_stats[c] = std::move(part.comm_stats[c]);
      const auto it = part.value_traces.find(merged.comm_stats[c].name);
      if (it != part.value_traces.end()) {
        merged.value_traces[it->first] = std::move(it->second);
      }
    }
  }
  return merged;
}

}  // namespace lrt::sim::detail
