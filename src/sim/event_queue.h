// A calendar-queue event wheel (Brown, CACM 1988): the priority structure
// behind the event-driven simulation engines.
//
// Events are timestamped activations bucketed onto a circular wheel;
// popping scans the cursor bucket for entries belonging to the current
// rotation ("year"), so with a bucket width near the mean event spacing
// both schedule and pop are O(1) amortized. Departures from the textbook
// structure, all driven by the runtime's needs:
//
//  * Deterministic total order. Ties on the timestamp are broken by an
//    explicit priority class, then by insertion sequence — so the pop
//    order of simultaneous events is a pure function of the schedule
//    history, never of bucket geometry. This is the rule that makes the
//    event engine's traces bit-identical to the tick engine's.
//  * O(1) cancellation through a slot table. schedule() returns a handle
//    packing (slot, generation); cancel() bumps the slot's generation and
//    recycles it through an O(1) free list — no hashing anywhere on the
//    hot path. Tombstoned entries are dropped lazily during scans. The
//    event runtime cancels release events of tasks a monitor remap
//    unmapped.
//  * Adaptive wheel size with bucket pooling. When the live population
//    outgrows (or far undershoots) the wheel, the entries are rehashed
//    onto a doubled (halved) wheel; the outgoing wheel's bucket arrays
//    are kept as the spare for the next resize, so steady-state churn
//    reuses their heap buffers instead of reallocating. Resizes never
//    change the pop order (the total order is geometry-free).
//
// An "empty-calendar fast-forward" kicks in when a full rotation finds
// nothing due: the cursor jumps straight to the globally earliest entry
// instead of spinning through empty years — this is what lets a sparse
// workload skip megatick idle gaps in one step.
#ifndef LRT_SIM_EVENT_QUEUE_H_
#define LRT_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "spec/declarations.h"

namespace lrt::sim {

/// Priority class of an event; at equal timestamps, lower-valued classes
/// pop first. The runtime relies only on the order being total and
/// deterministic, but the declared order mirrors the tick body: host
/// availability flips apply before anything else observes the instant.
enum class EventClass : std::uint8_t {
  kHostAvailability = 0,
  kPeriodBoundary = 1,
  kCommAccess = 2,
  kTaskRelease = 3,
};

/// One scheduled activation. `payload` is opaque to the queue (the
/// runtime stores a CommId / TaskId / host-event index); `seq` is the
/// insertion sequence number that completes the deterministic order.
struct Event {
  spec::Time time = 0;
  EventClass klass = EventClass::kPeriodBoundary;
  std::uint64_t payload = 0;
  std::uint64_t seq = 0;
};

class EventQueue {
 public:
  /// Opaque ticket for cancellation; 0 is never a valid handle.
  using Handle = std::uint64_t;
  static constexpr Handle kInvalidHandle = 0;

  /// Allocation/operation telemetry, surfaced by the long-run benchmark
  /// (--json "queue_*" fields). `allocations` counts heap growths the
  /// queue caused (bucket array growth, slot-table growth, scratch
  /// growth); a pooled steady state holds it flat.
  struct Stats {
    std::int64_t scheduled = 0;
    std::int64_t popped = 0;
    std::int64_t cancelled = 0;
    std::int64_t resizes = 0;
    std::int64_t allocations = 0;
  };

  /// `bucket_width` is the span of simulated time per bucket (clamped to
  /// >= 1); `num_buckets` is the initial wheel size (clamped to >= 2; the
  /// wheel later resizes itself with the live population). Choose width
  /// near the mean event spacing for O(1) operation; correctness does not
  /// depend on the geometry.
  explicit EventQueue(spec::Time bucket_width = 1,
                      std::size_t num_buckets = 256);

  /// Schedules an activation; `time` must be >= 0. Returns the handle
  /// for cancel(). Scheduling earlier than the last popped time is
  /// permitted (the cursor rewinds), preserving the min-first contract.
  Handle schedule(spec::Time time, EventClass klass,
                  std::uint64_t payload = 0);

  /// Cancels a pending event in O(1). Returns false when the handle was
  /// already popped, already cancelled, or never issued.
  bool cancel(Handle handle);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Current wheel size (exposed for tests of the resize policy).
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  /// Timestamp of the next event; queue must be nonempty.
  [[nodiscard]] spec::Time next_time();

  /// Removes and returns the minimum event under the total order
  /// (time, class, seq); queue must be nonempty.
  Event pop();

 private:
  struct Entry {
    Event event;
    Handle handle = kInvalidHandle;
  };

  /// True iff `a` orders strictly before `b`.
  static bool before(const Event& a, const Event& b);

  /// Handles pack (generation << 32) | (slot + 1). A slot's generation is
  /// odd while its event is pending; cancel/pop bump it (even = free) and
  /// recycle the slot, so liveness is one array compare.
  static constexpr std::size_t slot_of(Handle handle) {
    return static_cast<std::size_t>(handle & 0xffffffffull) - 1;
  }
  static constexpr std::uint32_t generation_of(Handle handle) {
    return static_cast<std::uint32_t>(handle >> 32);
  }
  [[nodiscard]] bool is_live(Handle handle) const {
    const std::size_t slot = slot_of(handle);
    return slot < generations_.size() &&
           generations_[slot] == generation_of(handle);
  }

  [[nodiscard]] std::size_t bucket_of(spec::Time time) const {
    return static_cast<std::size_t>(time / bucket_width_) % buckets_.size();
  }
  /// Index of the wheel rotation ("year") containing `time`.
  [[nodiscard]] spec::Time year_of(spec::Time time) const {
    return time / (bucket_width_ *
                   static_cast<spec::Time>(buckets_.size()));
  }

  /// Appends to a bucket, counting a heap growth when the push reallocates.
  void push_entry(std::vector<Entry>& bucket, Entry&& entry);

  /// Moves every live entry onto a wheel of `new_count` buckets (the
  /// spare wheel from the previous resize, when its geometry fits) and
  /// repositions the cursor on the new global minimum.
  void rehash(std::size_t new_count);

  /// Drops tombstoned entries from `bucket`, then returns the index of
  /// its minimum live entry, or npos when none remain.
  std::size_t sweep_and_min(std::vector<Entry>& bucket);

  /// Positions cursor_/cursor_year_ on the bucket holding the global
  /// minimum and returns its entry index. live_ must be > 0.
  std::size_t locate_min();

  std::vector<std::vector<Entry>> buckets_;
  /// Outgoing wheel of the last resize, bucket capacities intact; the
  /// next rehash swaps it back in instead of allocating a fresh wheel.
  std::vector<std::vector<Entry>> spare_;
  /// Rehash staging area, pooled across resizes.
  std::vector<Entry> scratch_;
  spec::Time bucket_width_;
  /// Wheel scan position: the next pop starts at buckets_[cursor_] in
  /// rotation cursor_year_.
  std::size_t cursor_ = 0;
  spec::Time cursor_year_ = 0;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Slot table: generation per slot (odd = pending), plus the free list
  /// of recycled slots.
  std::vector<std::uint32_t> generations_;
  std::vector<std::uint32_t> free_slots_;
  Stats stats_;
};

}  // namespace lrt::sim

#endif  // LRT_SIM_EVENT_QUEUE_H_
