#include "sim/runtime_core.h"

#include <algorithm>
#include <cassert>

namespace lrt::sim::detail {

using arch::HostId;
using spec::CommId;
using spec::TaskId;
using spec::Time;
using spec::Value;

namespace {

// Draw-site tags: every stochastic decision is a pure function of
// (seed, site, time, entity ids[, attempt]) via keyed_bernoulli, so the
// outcome never depends on which engine — or which shard — evaluates it,
// or in what order. This is the property that lets the parallel engine's
// shards consume "the same randomness" as the sequential engines.
constexpr std::uint64_t kSensorDraw = 1;
constexpr std::uint64_t kInvocationDraw = 2;
constexpr std::uint64_t kBroadcastDraw = 3;

}  // namespace

RuntimeCore::RuntimeCore(std::span<const impl::Implementation> phases,
                         Environment& env, const SimulationOptions& options,
                         const ShardSpec* shard)
    : phases_(phases),
      spec_(&phases.front().specification()),
      arch_(phases.front().architecture()),
      env_(env),
      options_(options),
      monitor_(options.monitor),
      sink_(obs::resolve_sink(options.sink)),
      tracer_(sink_ != nullptr ? sink_->tracer() : nullptr),
      shard_(shard) {}

Status RuntimeCore::init() {
  const std::size_t num_comms = spec_->communicators().size();
  const std::size_t num_hosts = arch_.hosts().size();
  if (shard_ != nullptr) {
    owned_tasks_ = shard_->tasks;
    owned_comms_ = shard_->comms;
    owned_hosts_ = shard_->hosts;
  } else {
    owned_tasks_.resize(spec_->tasks().size());
    for (std::size_t t = 0; t < owned_tasks_.size(); ++t) {
      owned_tasks_[t] = static_cast<TaskId>(t);
    }
    owned_comms_.resize(num_comms);
    for (std::size_t c = 0; c < num_comms; ++c) {
      owned_comms_[c] = static_cast<CommId>(c);
    }
    owned_hosts_.resize(num_hosts);
    for (std::size_t h = 0; h < num_hosts; ++h) {
      owned_hosts_[h] = static_cast<HostId>(h);
    }
  }
  hyperperiod_ = spec_->hyperperiod();
  // The harmonic grid, derived once at Build time (gcd of the periods).
  step_ = spec_->base_period();
  // The horizon never moves again: a hot-swap may change the grid and the
  // period, but the run still ends where the initial workload said.
  duration_ = hyperperiod_ * options_.periods;

  // Initial replications: instance 0 carries the init value everywhere.
  values_.assign(num_hosts, {});
  for (auto& host_values : values_) {
    host_values.reserve(num_comms);
    for (const auto& comm : spec_->communicators()) {
      host_values.push_back(comm.init);
    }
  }
  canonical_.clear();
  canonical_.reserve(num_comms);
  for (const auto& comm : spec_->communicators()) {
    canonical_.push_back(comm.init);
  }
  host_up_.assign(num_hosts, true);

  latched_.assign(num_hosts, {});
  for (auto& host_latches : latched_) {
    for (const auto& task : spec_->tasks()) {
      host_latches.emplace_back(task.inputs.size(), Value::bottom());
    }
  }

  write_instants_.assign(num_comms, {});
  for (TaskId t = 0; t < static_cast<TaskId>(spec_->tasks().size()); ++t) {
    for (const spec::PortRef& port : spec_->task(t).outputs) {
      write_instants_[static_cast<std::size_t>(port.comm)].push_back(
          spec_->communicator(port.comm).period * port.instance);
    }
  }

  host_events_ = options_.faults.host_events;
  std::stable_sort(host_events_.begin(), host_events_.end(),
                   [](const FaultPlan::HostEvent& a,
                      const FaultPlan::HostEvent& b) {
                     return a.time < b.time;
                   });
  for (const auto& event : host_events_) {
    if (event.host < 0 || event.host >= static_cast<HostId>(num_hosts)) {
      return OutOfRangeError("host event references host " +
                             std::to_string(event.host));
    }
  }
  if (shard_ != nullptr) {
    // Validation above ran over the full plan (every shard reports the
    // same configuration errors); execution only needs the owned hosts'
    // events. host_up_at() folds this same filtered list, which is exact
    // because foreign hosts' availability is never read here: commits of
    // owned communicators only inspect owned source hosts.
    std::vector<bool> owned(num_hosts, false);
    for (const HostId h : owned_hosts_) {
      owned[static_cast<std::size_t>(h)] = true;
    }
    std::erase_if(host_events_, [&](const FaultPlan::HostEvent& event) {
      return !owned[static_cast<std::size_t>(event.host)];
    });
  }

  accumulators_.assign(num_comms, {});
  update_accums_.assign(num_comms, {});
  record_values_.assign(num_comms, false);
  for (const std::string& name : options_.record_values_for) {
    const auto comm = spec_->find_communicator(name);
    if (!comm.has_value()) {
      // With a monitor installed the name may belong to a specification a
      // live update splices in later; its trace then starts at the swap.
      if (monitor_ == nullptr) {
        return NotFoundError("record_values_for references unknown "
                             "communicator '" + name + "'");
      }
      result_.value_traces.emplace(name, std::vector<Value>{});
      continue;
    }
    record_values_[static_cast<std::size_t>(*comm)] = true;
    result_.value_traces.emplace(name, std::vector<Value>{});
  }

  is_actuator_.assign(num_comms, false);
  if (options_.actuator_comms.empty()) {
    for (CommId c = 0; c < static_cast<CommId>(num_comms); ++c) {
      is_actuator_[static_cast<std::size_t>(c)] =
          spec_->is_output_communicator(c) && !spec_->is_input_communicator(c);
    }
  } else {
    for (const std::string& name : options_.actuator_comms) {
      const auto comm = spec_->find_communicator(name);
      if (!comm.has_value()) {
        if (monitor_ == nullptr) {
          return NotFoundError("actuator_comms references unknown "
                               "communicator '" + name + "'");
        }
        continue;  // may arrive with a later hot-swap
      }
      is_actuator_[static_cast<std::size_t>(*comm)] = true;
    }
  }

  if (options_.model_execution_time) {
    run_queues_.assign(num_hosts, {});
    wcet_.assign(spec_->tasks().size() * num_hosts, 1);
    wctt_.assign(spec_->tasks().size() * num_hosts, 1);
    for (TaskId t = 0; t < static_cast<TaskId>(spec_->tasks().size()); ++t) {
      for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
        const std::size_t index =
            static_cast<std::size_t>(t) * num_hosts +
            static_cast<std::size_t>(h);
        LRT_ASSIGN_OR_RETURN(wcet_[index],
                             arch_.wcet(spec_->task(t).name, h));
        LRT_ASSIGN_OR_RETURN(wctt_[index],
                             arch_.wctt(spec_->task(t).name, h));
      }
    }
  }

  if (tracer_ != nullptr) period_start_us_ = tracer_->now_us();
  return Status::Ok();
}

Status RuntimeCore::tick(Time now) {
  apply_host_events(now);
  const bool boundary = (now - epoch_) % hyperperiod_ == 0;
  // One span per specification period: the dispatch granularity the
  // paper reasons about, and coarse enough to stay cheap when enabled.
  // Period indices restart at a hot-swap epoch (the incoming
  // specification's own period count).
  if (tracer_ != nullptr && boundary && now > epoch_ &&
      (shard_ == nullptr || shard_->primary)) {
    const std::int64_t end_us = tracer_->now_us();
    tracer_->complete(
        "sim", "period", period_start_us_, end_us,
        {{"period",
          static_cast<double>((now - epoch_) / hyperperiod_ - 1)}});
    period_start_us_ = end_us;
  }
  // Remap point: mode switches happen at period boundaries only, so a
  // repair never tears a LET window apart.
  if (monitor_ != nullptr && boundary) {
    if (const impl::Implementation* next = monitor_->on_period_boundary(now)) {
      if (&next->specification() != spec_ ||
          &next->architecture() != &arch_) {
        return InvalidArgumentError(
            "monitor remap must target the running specification and "
            "architecture");
      }
      if (next != override_) {
        override_ = next;
        ++result_.remaps_installed;
        if (tracer_ != nullptr)
          tracer_->instant("sim", "remap", {{"t", static_cast<double>(now)}});
      }
    }
  }
  commit_updates(now);
  record_and_actuate(now);
  // Update point: a monitor may hot-swap the whole workload here. It runs
  // after the instant's commits and actuation (which belong to the closing
  // period of the outgoing specification) and before latching (which
  // belongs to the opening period of the incoming one), so no LET window
  // is ever torn apart and no committed update is lost.
  if (monitor_ != nullptr && boundary) {
    if (const impl::Implementation* next = monitor_->on_update_point(now)) {
      if (next != override_) LRT_RETURN_IF_ERROR(install_swap(now, next));
    }
  }
  latch_inputs(now);
  execute_tasks(now);
  return Status::Ok();
}

Status RuntimeCore::install_swap(Time now, const impl::Implementation* next) {
  if (&next->architecture() != &arch_) {
    return InvalidArgumentError(
        "live update must keep the running architecture");
  }
  const spec::Specification& from = *spec_;
  const spec::Specification& to = next->specification();
  const std::size_t num_hosts = arch_.hosts().size();
  const std::size_t num_comms = to.communicators().size();

  // In-flight timed jobs whose deadline crosses the boundary can only
  // exist when the outgoing mapping was unschedulable; they are dropped
  // (counted as misses) rather than remapped into the new task space.
  if (options_.model_execution_time) {
    for (auto& queue : run_queues_) {
      for (const ActiveJob& job : queue) {
        if (!job.silent) ++result_.deadline_misses;
      }
      queue.clear();
    }
    wcet_.assign(to.tasks().size() * num_hosts, 1);
    wctt_.assign(to.tasks().size() * num_hosts, 1);
    for (TaskId t = 0; t < static_cast<TaskId>(to.tasks().size()); ++t) {
      for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
        const std::size_t index =
            static_cast<std::size_t>(t) * num_hosts +
            static_cast<std::size_t>(h);
        LRT_ASSIGN_OR_RETURN(wcet_[index], arch_.wcet(to.task(t).name, h));
        LRT_ASSIGN_OR_RETURN(wctt_[index], arch_.wctt(to.task(t).name, h));
      }
    }
  }

  // Communicator state survives by name: replications keep their committed
  // value, accumulators keep their statistics (dropped ones are stashed so
  // a rollback resumes them). A spliced communicator starts at its init
  // value; its first access instant is one period after the swap.
  std::vector<std::vector<Value>> values(num_hosts);
  std::vector<Value> canonical;
  canonical.reserve(num_comms);
  std::vector<ReliabilityAccumulator> accumulators(num_comms);
  std::vector<ReliabilityAccumulator> update_accums(num_comms);
  for (auto& host_values : values) host_values.reserve(num_comms);
  for (CommId c = 0; c < static_cast<CommId>(num_comms); ++c) {
    const auto cs = static_cast<std::size_t>(c);
    const spec::Communicator& comm = to.communicator(c);
    if (const auto old_id = from.find_communicator(comm.name)) {
      const auto os = static_cast<std::size_t>(*old_id);
      for (std::size_t h = 0; h < num_hosts; ++h) {
        values[h].push_back(values_[h][os]);
      }
      canonical.push_back(canonical_[os]);
      accumulators[cs] = accumulators_[os];
      update_accums[cs] = update_accums_[os];
    } else {
      for (std::size_t h = 0; h < num_hosts; ++h) {
        values[h].push_back(comm.init);
      }
      canonical.push_back(comm.init);
      if (const auto stashed = retired_accums_.find(comm.name);
          stashed != retired_accums_.end()) {
        accumulators[cs] = stashed->second.first;
        update_accums[cs] = stashed->second.second;
        retired_accums_.erase(stashed);
      }
    }
  }
  for (CommId c = 0; c < static_cast<CommId>(from.communicators().size());
       ++c) {
    const std::string& name = from.communicator(c).name;
    if (!to.find_communicator(name).has_value()) {
      retired_accums_.insert_or_assign(
          name, std::make_pair(accumulators_[static_cast<std::size_t>(c)],
                               update_accums_[static_cast<std::size_t>(c)]));
    }
  }
  values_ = std::move(values);
  canonical_ = std::move(canonical);
  accumulators_ = std::move(accumulators);
  update_accums_ = std::move(update_accums);

  // The swap reshapes the task/communicator id spaces; a sharded core
  // never swaps (the parallel engine coalesces monitored runs), so the
  // owned lists are simply the full new ranges.
  assert(shard_ == nullptr && "hot-swap inside a sharded core");
  owned_tasks_.resize(to.tasks().size());
  for (std::size_t t = 0; t < owned_tasks_.size(); ++t) {
    owned_tasks_[t] = static_cast<TaskId>(t);
  }
  owned_comms_.resize(num_comms);
  for (std::size_t c = 0; c < num_comms; ++c) {
    owned_comms_[c] = static_cast<CommId>(c);
  }

  // Latches reset to bottom: every LET window is closed at a boundary, so
  // each input re-latches before its reader's next release.
  latched_.assign(num_hosts, {});
  for (auto& host_latches : latched_) {
    for (const auto& task : to.tasks()) {
      host_latches.emplace_back(task.inputs.size(), Value::bottom());
    }
  }
  // Every outgoing write committed at or before this boundary (write
  // instants never exceed pi_S), and commit_updates already consumed the
  // boundary batch; clearing is a pure invariant re-assertion.
  pending_.clear();

  write_instants_.assign(num_comms, {});
  for (TaskId t = 0; t < static_cast<TaskId>(to.tasks().size()); ++t) {
    for (const spec::PortRef& port : to.task(t).outputs) {
      write_instants_[static_cast<std::size_t>(port.comm)].push_back(
          to.communicator(port.comm).period * port.instance);
    }
  }

  record_values_.assign(num_comms, false);
  for (const std::string& name : options_.record_values_for) {
    if (const auto comm = to.find_communicator(name)) {
      record_values_[static_cast<std::size_t>(*comm)] = true;
    }
  }
  is_actuator_.assign(num_comms, false);
  if (options_.actuator_comms.empty()) {
    for (CommId c = 0; c < static_cast<CommId>(num_comms); ++c) {
      is_actuator_[static_cast<std::size_t>(c)] =
          to.is_output_communicator(c) && !to.is_input_communicator(c);
    }
  } else {
    for (const std::string& name : options_.actuator_comms) {
      if (const auto comm = to.find_communicator(name)) {
        is_actuator_[static_cast<std::size_t>(*comm)] = true;
      }
    }
  }

  spec_ = &to;
  override_ = next;
  epoch_ = now;
  hyperperiod_ = to.hyperperiod();
  step_ = to.base_period();
  ++generation_;
  ++result_.spec_swaps;
  if (tracer_ != nullptr) {
    tracer_->instant("sim", "spec_swap", {{"t", static_cast<double>(now)}});
  }
  return Status::Ok();
}

void RuntimeCore::advance_environment(Time from, Time to) {
  if (to <= from) return;
  if (env_.advance_granularity() ==
      Environment::AdvanceGranularity::kCoalesce) {
    env_.advance(from, to - from);
    return;
  }
  for (Time now = from; now < to; now += step_) {
    env_.advance(now, step_);
  }
}

SimulationResult RuntimeCore::finish() {
  const std::size_t num_comms = spec_->communicators().size();
  const bool primary = shard_ == nullptr || shard_->primary;
  if (tracer_ != nullptr && options_.periods > 0 && primary) {
    tracer_->complete(
        "sim", "period", period_start_us_, tracer_->now_us(),
        {{"period", static_cast<double>(options_.periods - 1)}});
  }
  // Counters are flushed once per run, so the hot loop never pays for
  // metrics and the totals are identical for any tracing state — and,
  // being derived from the result alone, for either engine. Sharded
  // cores flush their partial sums (they add up to the sequential
  // totals); the run-level pair comes from the primary shard only.
  if (sink_ != nullptr) {
    if (primary) {
      sink_->counter_add("sim.runs");
      sink_->counter_add("sim.periods", options_.periods);
    }
    sink_->counter_add("sim.invocations", result_.invocations);
    sink_->counter_add("sim.invocation_failures",
                       result_.invocation_failures);
    sink_->counter_add("sim.updates", result_.committed_updates);
    sink_->counter_add("sim.updates_bottom", bottom_updates_);
    sink_->counter_add("sim.vote_divergences", result_.vote_divergences);
    sink_->counter_add("sim.deadline_misses", result_.deadline_misses);
    sink_->counter_add("sim.remaps_installed", result_.remaps_installed);
    sink_->counter_add("sim.spec_swaps", result_.spec_swaps);
  }

  result_.periods = options_.periods;
  result_.ticks = duration();
  result_.comm_stats.resize(num_comms);
  for (std::size_t c = 0; c < num_comms; ++c) {
    CommStats& stats = result_.comm_stats[c];
    stats.name = spec_->communicators()[c].name;
    stats.samples = accumulators_[c].samples();
    stats.reliable_samples = accumulators_[c].reliable();
    stats.limit_average = accumulators_[c].average();
    stats.updates = update_accums_[c].samples();
    stats.reliable_updates = update_accums_[c].reliable();
  }
  return std::move(result_);
}

void RuntimeCore::apply_host_events(Time now) {
  while (next_host_event_ < host_events_.size() &&
         host_events_[next_host_event_].time <= now) {
    const auto& event = host_events_[next_host_event_++];
    host_up_[static_cast<std::size_t>(event.host)] = event.up;
  }
}

void RuntimeCore::commit_updates(Time now) {
  // Channel input first: commits of foreign-owned communicators (winners
  // voted by their owning shard) due at or before this instant.
  apply_foreign_commits(now);

  // Task-written communicators: vote over the broadcast replica outputs.
  const auto pending_it = pending_.find(now);
  std::vector<PendingWrite> arrived;
  if (pending_it != pending_.end()) {
    arrived = std::move(pending_it->second);
    pending_.erase(pending_it);
  }

  const Time rel_now = now - epoch_;
  for (const CommId c : owned_comms_) {
    const spec::Communicator& comm = spec_->communicator(c);
    const bool on_grid = rel_now % comm.period == 0;
    if (!on_grid) continue;

    if (spec_->is_input_communicator(c)) {
      // Sensor update (rule (a)): the environment writes identical values
      // to every replication of the sensor; a fail-silent sensor fault
      // makes the update unreliable.
      if (spec_->readers_of(c).empty()) continue;  // unused: init persists
      const arch::SensorId sensor_id = phase_at(now).sensor_for(c);
      const arch::Sensor& sensor = arch_.sensor(sensor_id);
      const bool failed =
          options_.faults.inject_sensor_faults &&
          keyed_bernoulli(1.0 - sensor.reliability, options_.faults.seed,
                          kSensorDraw, now, c);
      const Value value =
          failed ? Value::bottom() : env_.read_sensor(comm.name, now);
      set_all_replications(c, value);
      ++result_.committed_updates;
      update_accums_[static_cast<std::size_t>(c)].record(!failed);
      if (failed) {
        ++bottom_updates_;
        if (tracer_ != nullptr)
          tracer_->instant("sim", "bottom",
                           {{"comm", static_cast<double>(c)},
                            {"t", static_cast<double>(now)}});
      }
      if (monitor_ != nullptr) {
        monitor_->on_sensor_update(now, c, sensor_id, !failed);
        monitor_->on_update(now, c, !failed, failed ? 0 : 1);
      }
      continue;
    }

    // Written communicator: is one of its write instants due now?
    bool due = false;
    for (const Time instant : write_instants_[static_cast<std::size_t>(c)]) {
      // Instant w commits at epoch-relative times w, w + pi_S, w + 2 pi_S,
      // ... (the epoch is 0 until a live update rebases the grid).
      if (rel_now >= instant && (rel_now - instant) % hyperperiod_ == 0) {
        due = true;
        break;
      }
    }
    if (!due) continue;

    // Voting: every host received the same broadcast set (atomic network),
    // so the vote is computed once. Divergence among non-bottom candidates
    // is counted as a violation of the paper's determinism assumption.
    std::vector<Value> candidates;
    for (const PendingWrite& write : arrived) {
      if (write.comm != c) continue;
      // Fail-silence across the whole LET window: a replication on a host
      // that is down at commit time stays silent.
      if (!host_up_[static_cast<std::size_t>(write.source)]) continue;
      candidates.push_back(write.value);
    }
    const Value winner = vote(candidates, options_.voting_policy,
                              &result_.vote_divergences);
    set_all_replications(c, winner);
    ++result_.committed_updates;
    update_accums_[static_cast<std::size_t>(c)].record(!winner.is_bottom());
    if (winner.is_bottom()) {
      // A vote with no contributor: the paper's unreliable (bottom)
      // outcome — worth a point event even at full trace volume.
      ++bottom_updates_;
      if (tracer_ != nullptr)
        tracer_->instant("sim", "bottom",
                         {{"comm", static_cast<double>(c)},
                          {"t", static_cast<double>(now)},
                          {"contributors", 0.0}});
    }
    if (monitor_ != nullptr) {
      monitor_->on_update(now, c, !winner.is_bottom(),
                          static_cast<int>(candidates.size()));
    }
  }

  // Shadow sensors: foreign-owned input communicators read by an owned
  // task. The owner's value computation is replayed exactly — the fault
  // draw is keyed by (now, comm) and a parallel_safe environment returns
  // identical readings on every shard — so no channel is needed; all
  // counters, accumulators, and trace events stay with the owner.
  if (shard_ != nullptr) {
    for (const CommId c : shard_->shadow_comms) {
      const spec::Communicator& comm = spec_->communicator(c);
      if (rel_now % comm.period != 0) continue;
      const bool failed =
          options_.faults.inject_sensor_faults &&
          keyed_bernoulli(
              1.0 - arch_.sensor(phase_at(now).sensor_for(c)).reliability,
              options_.faults.seed, kSensorDraw, now, c);
      set_all_replications(
          c, failed ? Value::bottom() : env_.read_sensor(comm.name, now));
    }
  }
}

void RuntimeCore::record_and_actuate(Time now) {
  for (const CommId c : owned_comms_) {
    const spec::Communicator& comm = spec_->communicator(c);
    if ((now - epoch_) % comm.period != 0) continue;
    const Value& value = committed(c);
    // The paper's Z_j(c): sampled at every access instant of c.
    accumulators_[static_cast<std::size_t>(c)].record(!value.is_bottom());
    if (record_values_[static_cast<std::size_t>(c)]) {
      result_.value_traces[comm.name].push_back(value);
    }
    if (is_actuator_[static_cast<std::size_t>(c)]) {
      env_.write_actuator(comm.name, now, value);
    }
    // Verify all replications agree (reliable atomic broadcast invariant).
    // Each shard checks its own hosts' rows against the canonical value;
    // unsharded, that is every row (row 0 trivially matches).
    for (const HostId h : owned_hosts_) {
      if (!(values_[static_cast<std::size_t>(h)][static_cast<std::size_t>(c)] ==
            value)) {
        ++result_.vote_divergences;
      }
    }
  }
}

void RuntimeCore::latch_inputs(Time now) {
  const Time rel = (now - epoch_) % hyperperiod_;
  for (const TaskId t : owned_tasks_) {
    const spec::Task& task = spec_->task(t);
    for (std::size_t j = 0; j < task.inputs.size(); ++j) {
      const spec::PortRef& port = task.inputs[j];
      const Time instant =
          spec_->communicator(port.comm).period * port.instance;
      if (instant != rel) continue;
      for (const HostId h : phase_at(now).hosts_for(t)) {
        latched_[static_cast<std::size_t>(h)][static_cast<std::size_t>(t)]
                [j] = values_[static_cast<std::size_t>(h)]
                             [static_cast<std::size_t>(port.comm)];
      }
    }
  }
}

void RuntimeCore::execute_tasks(Time now) {
  const Time rel = (now - epoch_) % hyperperiod_;
  for (const TaskId t : owned_tasks_) {
    if (spec_->read_time(t) != rel) continue;
    const spec::Task& task = spec_->task(t);

    for (const HostId h : phase_at(now).hosts_for(t)) {
      ++result_.invocations;
      const auto hs = static_cast<std::size_t>(h);

      // A downed host never starts the invocation.
      if (!host_up_[hs]) {
        ++result_.invocation_failures;
        if (monitor_ != nullptr) monitor_->on_invocation(now, t, h, false);
        continue;
      }

      // Input failure model (paper Section 2). A model-violating input
      // set means the invocation never starts (no processor time).
      std::vector<Value> inputs = latched_[hs][static_cast<std::size_t>(t)];
      {
        std::size_t unreliable = 0;
        for (std::size_t j = 0; j < inputs.size(); ++j) {
          if (!inputs[j].is_bottom()) continue;
          ++unreliable;
          if (task.model != spec::FailureModel::kSeries) {
            inputs[j] = task.defaults[j];
          }
        }
        const bool inputs_bad =
            (task.model == spec::FailureModel::kSeries && unreliable > 0) ||
            (task.model == spec::FailureModel::kParallel &&
             unreliable == inputs.size());
        if (inputs_bad) {
          // Not reported to the monitor: an input-model violation says
          // nothing about this host's health (the failure is upstream),
          // and counting it would let one dead sensor condemn every host.
          ++result_.invocation_failures;
          continue;
        }
      }

      // Transient faults are independent per attempt; re-executions retry
      // on the same host within the LET.
      const int max_attempts = phase_at(now).reexecutions(t) + 1;
      int attempts_used = 1;
      bool failed = false;
      if (options_.faults.inject_invocation_faults) {
        failed = true;
        for (attempts_used = 0; failed && attempts_used < max_attempts;) {
          ++attempts_used;
          failed = keyed_bernoulli(1.0 - arch_.host(h).reliability,
                                   options_.faults.seed, kInvocationDraw, now,
                                   t, h, attempts_used);
        }
      }

      // Compute. A missing function yields type-correct zero outputs so
      // analysis-only specifications remain simulable.
      std::vector<Value> outputs;
      if (!failed) {
        if (task.function) {
          outputs = task.function(inputs);
          assert(outputs.size() == task.outputs.size() &&
                 "task function produced wrong arity");
        } else {
          outputs.reserve(task.outputs.size());
          for (const spec::PortRef& port : task.outputs) {
            outputs.push_back(zero_value(spec_->communicator(port.comm).type));
          }
        }
        // Atomic broadcast: an unreliable network drops the whole
        // broadcast for every host.
        if (options_.broadcast_reliability < 1.0 &&
            keyed_bernoulli(1.0 - options_.broadcast_reliability,
                            options_.faults.seed, kBroadcastDraw, now, t, h)) {
          failed = true;
        }
      }
      if (failed) ++result_.invocation_failures;
      if (monitor_ != nullptr) monitor_->on_invocation(now, t, h, !failed);

      const Time period_start = now - rel;
      if (options_.model_execution_time) {
        // Enqueue on the host's EDF processor; failed attempts still burn
        // processor time (all attempts were executed before giving up).
        ActiveJob job;
        job.task = t;
        job.period_start = period_start;
        const std::size_t index =
            static_cast<std::size_t>(t) * arch_.hosts().size() + hs;
        // One full execution plus, per retry actually taken, one recovery
        // segment (full WCET without checkpoints) and checkpoint saves.
        const impl::Implementation& phase = phase_at(now);
        const Time base = wcet_[index];
        const int k = phase.checkpoints(t);
        const Time overhead = phase.checkpoint_overhead(t);
        const Time segment = (base + k) / (k + 1);
        job.remaining = base + k * overhead +
                        (attempts_used - 1) *
                            (segment + (k > 0 ? overhead : 0));
        job.deadline = period_start + spec_->write_time(t) - wctt_[index];
        job.silent = failed;
        job.outputs = std::move(outputs);
        run_queues_[hs].push_back(std::move(job));
      } else if (!failed) {
        deliver_outputs(t, h, period_start, /*available_at=*/now, outputs);
      }
    }
  }
}

void RuntimeCore::deliver_outputs(TaskId task_id, HostId host,
                                  Time period_start, Time available_at,
                                  const std::vector<Value>& outputs) {
  const spec::Task& task = spec_->task(task_id);
  for (std::size_t k = 0; k < task.outputs.size(); ++k) {
    const spec::PortRef& port = task.outputs[k];
    const Time commit =
        period_start + spec_->communicator(port.comm).period * port.instance;
    if (available_at > commit) {
      // Late: the write instant passed before the broadcast arrived.
      ++result_.deadline_misses;
      continue;
    }
    pending_[commit].push_back({port.comm, host, outputs[k]});
  }
}

void RuntimeCore::advance_processors(Time from, Time to) {
  if (!options_.model_execution_time) return;
  for (const HostId h : owned_hosts_) {
    const auto hs = static_cast<std::size_t>(h);
    if (!host_up_[hs]) continue;  // a downed host freezes (fail-silent)
    auto& queue = run_queues_[hs];
    Time clock = from;
    while (clock < to && !queue.empty()) {
      // Earliest-deadline job first (queues are short; linear scan).
      std::size_t best = 0;
      for (std::size_t j = 1; j < queue.size(); ++j) {
        if (queue[j].deadline < queue[best].deadline) best = j;
      }
      ActiveJob& job = queue[best];
      const Time slice = std::min(job.remaining, to - clock);
      job.remaining -= slice;
      clock += slice;
      if (job.remaining > 0) break;  // window exhausted mid-job
      // Completion at `clock`; broadcast arrives WCTT later.
      if (!job.silent) {
        const std::size_t index =
            static_cast<std::size_t>(job.task) * arch_.hosts().size() + hs;
        deliver_outputs(job.task, h, job.period_start, clock + wctt_[index],
                        job.outputs);
      }
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }
}

void RuntimeCore::stage_foreign_commit(Time commit_time, CommId comm,
                                       const Value& winner) {
  foreign_pending_[commit_time].emplace_back(comm, winner);
}

void RuntimeCore::apply_foreign_commits(Time now) {
  while (!foreign_pending_.empty() &&
         foreign_pending_.begin()->first <= now) {
    for (const auto& [comm, winner] : foreign_pending_.begin()->second) {
      set_all_replications(comm, winner);
    }
    foreign_pending_.erase(foreign_pending_.begin());
  }
}

Value RuntimeCore::resolve_commit_winner(CommId comm, Time commit_time) const {
  std::vector<Value> candidates;
  if (const auto it = pending_.find(commit_time); it != pending_.end()) {
    for (const PendingWrite& write : it->second) {
      if (write.comm != comm) continue;
      // Same fail-silence rule as commit_updates, evaluated against the
      // statically-known availability at the commit instant.
      if (!host_up_at(write.source, commit_time)) continue;
      candidates.push_back(write.value);
    }
  }
  // The real divergence accounting happens when the owner's tick reaches
  // the commit instant; this early resolution must stay side-effect free.
  std::int64_t scratch = 0;
  return vote(candidates, options_.voting_policy, &scratch);
}

}  // namespace lrt::sim::detail
