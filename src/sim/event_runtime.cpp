#include "sim/event_runtime.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/runtime_core.h"

namespace lrt::sim::detail {

namespace {

using spec::CommId;
using spec::TaskId;
using spec::Time;

/// Rounds `time` up to the grid instant at which the tick engine would
/// observe it (its body applies a host event at the first tick >= time).
/// The grid is anchored at `epoch` (0 until a live update rebases it).
Time round_up_to_grid(Time time, Time step, Time epoch) {
  if (time <= epoch) return epoch;
  return epoch + ((time - epoch + step - 1) / step) * step;
}

/// Smallest power of two >= n, clamped to the wheel-size range the queue
/// stays cheap in.
std::size_t wheel_buckets(std::size_t n) {
  std::size_t size = 8;
  while (size < n && size < 4096) size *= 2;
  return size;
}

}  // namespace

Result<SimulationResult> run_event_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options) {
  RuntimeCore core(phases, env, options);
  LRT_RETURN_IF_ERROR(core.init());
  const Time duration = core.duration();
  // Grid quantities of the specification currently in force; a live
  // update (RuntimeCore generation bump) refreshes them mid-run.
  Time step = core.step();
  Time hyperperiod = core.hyperperiod();
  auto num_comms =
      static_cast<CommId>(core.spec().communicators().size());
  auto num_tasks = static_cast<TaskId>(core.spec().tasks().size());

  // Calendar geometry: width near the mean spacing of periodic activations
  // within one specification period, wheel sized to the pending-event
  // population (comms + tasks + boundary + fault plan). Correctness never
  // depends on these choices (a hot-swap keeps the geometry), only the
  // constant factor does.
  Time activations_per_period = 1;  // the boundary event
  for (CommId c = 0; c < num_comms; ++c) {
    activations_per_period += hyperperiod / core.spec().communicator(c).period;
  }
  activations_per_period += num_tasks;
  const Time width =
      std::max<Time>(1, hyperperiod / activations_per_period);
  EventQueue queue(width,
                   wheel_buckets(static_cast<std::size_t>(num_comms) +
                                 static_cast<std::size_t>(num_tasks) +
                                 core.host_events().size() + 4));

  // Periodic sources reschedule themselves as they pop; scripted host
  // events are one-shot, rounded up to the tick the reference engine
  // applies them at (events landing past the last tick never fire there
  // either). Every handle is tracked so a live update can cancel the
  // stale calendar wholesale.
  std::vector<EventQueue::Handle> access(
      static_cast<std::size_t>(num_comms), EventQueue::kInvalidHandle);
  for (CommId c = 0; c < num_comms; ++c) {
    access[static_cast<std::size_t>(c)] = queue.schedule(
        0, EventClass::kCommAccess, static_cast<std::uint64_t>(c));
  }
  std::vector<EventQueue::Handle> release(
      static_cast<std::size_t>(num_tasks), EventQueue::kInvalidHandle);
  for (TaskId t = 0; t < num_tasks; ++t) {
    release[static_cast<std::size_t>(t)] =
        queue.schedule(core.spec().read_time(t), EventClass::kTaskRelease,
                       static_cast<std::uint64_t>(t));
  }
  EventQueue::Handle boundary = queue.schedule(0, EventClass::kPeriodBoundary);
  std::vector<EventQueue::Handle> host_handle(core.host_events().size(),
                                              EventQueue::kInvalidHandle);
  for (std::size_t e = 0; e < core.host_events().size(); ++e) {
    const Time at =
        round_up_to_grid(core.host_events()[e].time, step, /*epoch=*/0);
    if (at < duration) {
      host_handle[e] = queue.schedule(at, EventClass::kHostAvailability,
                                      static_cast<std::uint64_t>(e));
    }
  }

  obs::Tracer* tracer = core.tracer();
  const std::int64_t run_start_us = tracer != nullptr ? tracer->now_us() : 0;
  std::int64_t events_processed = 0;
  std::int64_t active_instants = 0;
  const impl::Implementation* last_override = core.override_mapping();
  std::int64_t generation = core.generation();
  // Skipped-instant accounting must survive a step change: grid instants
  // are summed per generation segment ([grid_from, swap) on the old step).
  std::int64_t grid_instants = 0;
  Time grid_from = 0;

  Time now = 0;  // everything strictly before `now` has been simulated
  while (!queue.empty()) {
    const Time at = queue.next_time();
    if (at >= duration) break;
    // Drain every event due at this instant; periodic sources re-arm for
    // their next occurrence so the window below sees it. (Re-arms use the
    // pre-tick specification; a hot-swap inside the tick cancels them.)
    while (!queue.empty() && queue.next_time() == at) {
      const Event event = queue.pop();
      ++events_processed;
      switch (event.klass) {
        case EventClass::kCommAccess:
          access[static_cast<std::size_t>(event.payload)] = queue.schedule(
              at + core.spec()
                       .communicator(static_cast<CommId>(event.payload))
                       .period,
              EventClass::kCommAccess, event.payload);
          break;
        case EventClass::kTaskRelease:
          release[static_cast<std::size_t>(event.payload)] = queue.schedule(
              at + hyperperiod, EventClass::kTaskRelease, event.payload);
          break;
        case EventClass::kPeriodBoundary:
          boundary = queue.schedule(at + hyperperiod,
                                    EventClass::kPeriodBoundary);
          break;
        case EventClass::kHostAvailability:
          host_handle[static_cast<std::size_t>(event.payload)] =
              EventQueue::kInvalidHandle;  // one-shot
          break;
      }
    }
    LRT_RETURN_IF_ERROR(core.tick(at));
    ++active_instants;
    if (core.generation() != generation) {
      // The workload was hot-swapped inside the tick: every pending event
      // derived from the outgoing specification is stale. Close the
      // outgoing grid segment, then rebuild the calendar from the
      // incoming specification with the swap instant as epoch.
      generation = core.generation();
      grid_instants += (at - grid_from) / step;
      grid_from = at;
      step = core.step();
      hyperperiod = core.hyperperiod();
      num_comms = static_cast<CommId>(core.spec().communicators().size());
      num_tasks = static_cast<TaskId>(core.spec().tasks().size());
      for (const EventQueue::Handle h : access) {
        if (h != EventQueue::kInvalidHandle) queue.cancel(h);
      }
      for (const EventQueue::Handle h : release) {
        if (h != EventQueue::kInvalidHandle) queue.cancel(h);
      }
      queue.cancel(boundary);
      // The swap instant itself already ran under the incoming
      // specification's latch/execute half, so every periodic source
      // re-arms for its next epoch-relative occurrence.
      access.assign(static_cast<std::size_t>(num_comms),
                    EventQueue::kInvalidHandle);
      for (CommId c = 0; c < num_comms; ++c) {
        access[static_cast<std::size_t>(c)] = queue.schedule(
            at + core.spec().communicator(c).period, EventClass::kCommAccess,
            static_cast<std::uint64_t>(c));
      }
      last_override = core.override_mapping();
      release.assign(static_cast<std::size_t>(num_tasks),
                     EventQueue::kInvalidHandle);
      for (TaskId t = 0; t < num_tasks; ++t) {
        if (last_override->hosts_for(t).empty()) continue;
        const Time read = core.spec().read_time(t);
        release[static_cast<std::size_t>(t)] = queue.schedule(
            read == 0 ? at + hyperperiod : at + read, EventClass::kTaskRelease,
            static_cast<std::uint64_t>(t));
      }
      boundary = queue.schedule(at + hyperperiod, EventClass::kPeriodBoundary);
      // Unfired scripted host events re-round onto the new grid.
      for (std::size_t e = 0; e < host_handle.size(); ++e) {
        if (host_handle[e] == EventQueue::kInvalidHandle) continue;
        queue.cancel(host_handle[e]);
        host_handle[e] = EventQueue::kInvalidHandle;
        const Time rounded =
            round_up_to_grid(core.host_events()[e].time, step, at);
        if (rounded < duration) {
          host_handle[e] = queue.schedule(rounded,
                                          EventClass::kHostAvailability,
                                          static_cast<std::uint64_t>(e));
        }
      }
    } else if (core.override_mapping() != last_override) {
      // A monitor remap may have unmapped tasks (their pending releases
      // are cancelled — pure pruning, since the shared body is a no-op for
      // a hostless task) or mapped previously idle ones (released from the
      // next read instant on; the boundary instant itself already ran).
      last_override = core.override_mapping();
      for (TaskId t = 0; t < num_tasks; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        const bool mapped = !last_override->hosts_for(t).empty();
        if (!mapped && release[ts] != EventQueue::kInvalidHandle) {
          queue.cancel(release[ts]);
          release[ts] = EventQueue::kInvalidHandle;
        } else if (mapped && release[ts] == EventQueue::kInvalidHandle) {
          const Time read = core.spec().read_time(t);
          release[ts] = queue.schedule(
              read == 0 ? at + hyperperiod : at + read,
              EventClass::kTaskRelease, static_cast<std::uint64_t>(t));
        }
      }
    }
    const Time next =
        queue.empty() ? duration : std::min(queue.next_time(), duration);
    core.advance_processors(at, next);
    core.advance_environment(at, next);
    now = next;
  }
  // Trailing idle window (a cancelled-out calendar, or a horizon ending
  // between activations).
  core.advance_processors(now, duration);
  core.advance_environment(now, duration);

  if (tracer != nullptr) {
    tracer->complete(
        "sim", "event", run_start_us, tracer->now_us(),
        {{"events", static_cast<double>(events_processed)},
         {"active_instants", static_cast<double>(active_instants)}});
  }
  if (const obs::Sink* sink = core.sink(); sink != nullptr) {
    // Final grid segment: the horizon need not be a multiple of the
    // post-swap step, so the tick count rounds up.
    grid_instants += (duration - grid_from + step - 1) / step;
    sink->counter_add("sim.events", events_processed);
    sink->counter_add("sim.ticks_skipped", grid_instants - active_instants);
    // Calendar telemetry, reported by bench_longrun_convergence --json:
    // a pooled steady state keeps allocations near-flat per run.
    const EventQueue::Stats& qs = queue.stats();
    sink->counter_add("sim.queue_allocations", qs.allocations);
    sink->counter_add("sim.queue_resizes", qs.resizes);
  }
  return core.finish();
}

}  // namespace lrt::sim::detail
