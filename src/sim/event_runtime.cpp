#include "sim/event_runtime.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/runtime_core.h"

namespace lrt::sim::detail {

namespace {

using spec::CommId;
using spec::TaskId;
using spec::Time;

/// Rounds `time` up to the grid instant at which the tick engine would
/// observe it (its body applies a host event at the first tick >= time).
Time round_up_to_grid(Time time, Time step) {
  if (time <= 0) return 0;
  return ((time + step - 1) / step) * step;
}

/// Smallest power of two >= n, clamped to the wheel-size range the queue
/// stays cheap in.
std::size_t wheel_buckets(std::size_t n) {
  std::size_t size = 8;
  while (size < n && size < 4096) size *= 2;
  return size;
}

}  // namespace

Result<SimulationResult> run_event_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options) {
  RuntimeCore core(phases, env, options);
  LRT_RETURN_IF_ERROR(core.init());
  const Time step = core.step();
  const Time duration = core.duration();
  const Time hyperperiod = core.hyperperiod();
  const spec::Specification& spec = core.spec();
  const auto num_comms = static_cast<CommId>(spec.communicators().size());
  const auto num_tasks = static_cast<TaskId>(spec.tasks().size());

  // Calendar geometry: width near the mean spacing of periodic activations
  // within one specification period, wheel sized to the pending-event
  // population (comms + tasks + boundary + fault plan). Correctness never
  // depends on these choices, only the constant factor does.
  Time activations_per_period = 1;  // the boundary event
  for (CommId c = 0; c < num_comms; ++c) {
    activations_per_period += hyperperiod / spec.communicator(c).period;
  }
  activations_per_period += num_tasks;
  const Time width =
      std::max<Time>(1, hyperperiod / activations_per_period);
  EventQueue queue(width,
                   wheel_buckets(static_cast<std::size_t>(num_comms) +
                                 static_cast<std::size_t>(num_tasks) +
                                 core.host_events().size() + 4));

  // Periodic sources reschedule themselves as they pop; scripted host
  // events are one-shot, rounded up to the tick the reference engine
  // applies them at (events landing past the last tick never fire there
  // either).
  for (CommId c = 0; c < num_comms; ++c) {
    queue.schedule(0, EventClass::kCommAccess, static_cast<std::uint64_t>(c));
  }
  std::vector<EventQueue::Handle> release(
      static_cast<std::size_t>(num_tasks), EventQueue::kInvalidHandle);
  for (TaskId t = 0; t < num_tasks; ++t) {
    release[static_cast<std::size_t>(t)] =
        queue.schedule(spec.read_time(t), EventClass::kTaskRelease,
                       static_cast<std::uint64_t>(t));
  }
  queue.schedule(0, EventClass::kPeriodBoundary);
  for (const FaultPlan::HostEvent& host_event : core.host_events()) {
    const Time at = round_up_to_grid(host_event.time, step);
    if (at < duration) queue.schedule(at, EventClass::kHostAvailability);
  }

  obs::Tracer* tracer = core.tracer();
  const std::int64_t run_start_us = tracer != nullptr ? tracer->now_us() : 0;
  std::int64_t events_processed = 0;
  std::int64_t active_instants = 0;
  const impl::Implementation* last_override = core.override_mapping();

  Time now = 0;  // everything strictly before `now` has been simulated
  while (!queue.empty()) {
    const Time at = queue.next_time();
    if (at >= duration) break;
    // Drain every event due at this instant; periodic sources re-arm for
    // their next occurrence so the window below sees it.
    while (!queue.empty() && queue.next_time() == at) {
      const Event event = queue.pop();
      ++events_processed;
      switch (event.klass) {
        case EventClass::kCommAccess:
          queue.schedule(
              at + spec.communicator(static_cast<CommId>(event.payload))
                       .period,
              EventClass::kCommAccess, event.payload);
          break;
        case EventClass::kTaskRelease:
          release[static_cast<std::size_t>(event.payload)] = queue.schedule(
              at + hyperperiod, EventClass::kTaskRelease, event.payload);
          break;
        case EventClass::kPeriodBoundary:
          queue.schedule(at + hyperperiod, EventClass::kPeriodBoundary);
          break;
        case EventClass::kHostAvailability:
          break;  // one-shot
      }
    }
    LRT_RETURN_IF_ERROR(core.tick(at));
    ++active_instants;
    // A monitor remap may have unmapped tasks (their pending releases are
    // cancelled — pure pruning, since the shared body is a no-op for a
    // hostless task) or mapped previously idle ones (released from the
    // next read instant on; the boundary instant itself already ran).
    if (core.override_mapping() != last_override) {
      last_override = core.override_mapping();
      for (TaskId t = 0; t < num_tasks; ++t) {
        const auto ts = static_cast<std::size_t>(t);
        const bool mapped = !last_override->hosts_for(t).empty();
        if (!mapped && release[ts] != EventQueue::kInvalidHandle) {
          queue.cancel(release[ts]);
          release[ts] = EventQueue::kInvalidHandle;
        } else if (mapped && release[ts] == EventQueue::kInvalidHandle) {
          const Time read = spec.read_time(t);
          release[ts] = queue.schedule(
              read == 0 ? at + hyperperiod : at + read,
              EventClass::kTaskRelease, static_cast<std::uint64_t>(t));
        }
      }
    }
    const Time next =
        queue.empty() ? duration : std::min(queue.next_time(), duration);
    core.advance_processors(at, next);
    core.advance_environment(at, next);
    now = next;
  }
  // Trailing idle window (a cancelled-out calendar, or a horizon ending
  // between activations).
  core.advance_processors(now, duration);
  core.advance_environment(now, duration);

  if (tracer != nullptr) {
    tracer->complete(
        "sim", "event", run_start_us, tracer->now_us(),
        {{"events", static_cast<double>(events_processed)},
         {"active_instants", static_cast<double>(active_instants)}});
  }
  if (const obs::Sink* sink = core.sink(); sink != nullptr) {
    sink->counter_add("sim.events", events_processed);
    sink->counter_add("sim.ticks_skipped",
                      duration / step - active_instants);
  }
  return core.finish();
}

}  // namespace lrt::sim::detail
