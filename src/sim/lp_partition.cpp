#include "sim/lp_partition.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

namespace lrt::sim::detail {

namespace {

using arch::HostId;
using spec::CommId;
using spec::TaskId;
using spec::Time;

/// Union-find with smallest-index roots, so component identities are a
/// pure function of the merge set — never of merge order.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

LpPartition partition_workload(std::span<const impl::Implementation> phases,
                               const SimulationOptions& options,
                               int max_lps) {
  const spec::Specification& sp = phases.front().specification();
  const arch::Architecture& ar = phases.front().architecture();
  const std::size_t num_hosts = ar.hosts().size();
  const std::size_t num_tasks = sp.tasks().size();
  const std::size_t num_comms = sp.communicators().size();

  LpPartition partition;
  partition.comm_owner.assign(num_comms, 0);
  if (max_lps <= 1 || num_hosts <= 1) return partition;

  // Hosts each task may run on, over every phase of the cycle.
  std::vector<std::vector<HostId>> task_hosts(num_tasks);
  for (const impl::Implementation& phase : phases) {
    for (std::size_t t = 0; t < num_tasks; ++t) {
      const auto& hosts = phase.hosts_for(static_cast<TaskId>(t));
      task_hosts[t].insert(task_hosts[t].end(), hosts.begin(), hosts.end());
    }
  }
  for (auto& hosts : task_hosts) {
    std::sort(hosts.begin(), hosts.end());
    hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  }

  std::vector<std::vector<TaskId>> writers(num_comms);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    for (const spec::PortRef& port : sp.task(static_cast<TaskId>(t)).outputs) {
      auto& list = writers[static_cast<std::size_t>(port.comm)];
      if (list.empty() || list.back() != static_cast<TaskId>(t)) {
        list.push_back(static_cast<TaskId>(t));
      }
    }
  }

  // Constraint 1: a task's replications vote together — one LP.
  // Constraint 2: all writers of a communicator feed one vote — one LP.
  UnionFind uf(num_hosts);
  for (const auto& hosts : task_hosts) {
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      uf.merge(static_cast<std::size_t>(hosts[0]),
               static_cast<std::size_t>(hosts[i]));
    }
  }
  for (std::size_t c = 0; c < num_comms; ++c) {
    HostId anchor = -1;
    for (const TaskId t : writers[c]) {
      const auto& hosts = task_hosts[static_cast<std::size_t>(t)];
      if (hosts.empty()) continue;
      if (anchor < 0) {
        anchor = hosts[0];
      } else {
        uf.merge(static_cast<std::size_t>(anchor),
                 static_cast<std::size_t>(hosts[0]));
      }
    }
  }

  // Per-communicator lookahead (see the header): write-offset gaps in
  // logical mode, writer WCTT minima in timed mode.
  constexpr Time kNoBound = std::numeric_limits<Time>::max();
  std::vector<Time> lookahead(num_comms, kNoBound);
  if (options.model_execution_time) {
    for (std::size_t c = 0; c < num_comms; ++c) {
      for (const TaskId t : writers[c]) {
        const std::string& name = sp.task(t).name;
        for (const HostId h : task_hosts[static_cast<std::size_t>(t)]) {
          const auto wctt = ar.wctt(name, h);
          // A missing timing entry fails core init anyway; 0 here only
          // makes the bound more conservative (forces a merge).
          lookahead[c] = std::min(lookahead[c], wctt.ok() ? *wctt : 0);
        }
      }
    }
  } else {
    for (std::size_t t = 0; t < num_tasks; ++t) {
      const Time read = sp.read_time(static_cast<TaskId>(t));
      for (const spec::PortRef& port :
           sp.task(static_cast<TaskId>(t)).outputs) {
        const Time offset =
            sp.communicator(port.comm).period * port.instance;
        auto& bound = lookahead[static_cast<std::size_t>(port.comm)];
        bound = std::min(bound, offset - read);
      }
    }
  }

  // Constraint 3: cross-LP channels need lookahead >= 1; reads that
  // cannot get it are kept local by merging. Writer-less task-written
  // communicators commit nothing, but their readers still share the
  // frozen init value — cheapest to co-locate them too.
  for (std::size_t c = 0; c < num_comms; ++c) {
    if (sp.is_input_communicator(static_cast<CommId>(c))) continue;
    HostId writer_anchor = -1;
    for (const TaskId t : writers[c]) {
      const auto& hosts = task_hosts[static_cast<std::size_t>(t)];
      if (!hosts.empty()) {
        writer_anchor = hosts[0];
        break;
      }
    }
    HostId anchor = writer_anchor;
    const bool must_merge = writer_anchor < 0 || lookahead[c] < 1;
    if (!must_merge) continue;
    for (const TaskId t : sp.readers_of(static_cast<CommId>(c))) {
      const auto& hosts = task_hosts[static_cast<std::size_t>(t)];
      if (hosts.empty()) continue;
      if (anchor < 0) {
        anchor = hosts[0];
      } else {
        uf.merge(static_cast<std::size_t>(anchor),
                 static_cast<std::size_t>(hosts[0]));
      }
    }
  }

  // Dense component ids, ascending by root host.
  std::vector<int> host_comp(num_hosts, -1);
  int num_comps = 0;
  for (std::size_t h = 0; h < num_hosts; ++h) {
    const std::size_t root = uf.find(h);
    if (host_comp[root] < 0) host_comp[root] = num_comps++;
    host_comp[h] = host_comp[root];
  }
  if (num_comps <= 1) return partition;

  const auto comp_of_task = [&](std::size_t t) {
    return task_hosts[t].empty()
               ? 0
               : host_comp[static_cast<std::size_t>(task_hosts[t][0])];
  };
  // Communicator owner component: the writers' (they commit it), else the
  // first hosted reader's (sensor accounting), else component 0.
  std::vector<int> comm_comp(num_comms, 0);
  for (std::size_t c = 0; c < num_comms; ++c) {
    int comp = -1;
    for (const TaskId t : writers[c]) {
      if (!task_hosts[static_cast<std::size_t>(t)].empty()) {
        comp = comp_of_task(static_cast<std::size_t>(t));
        break;
      }
    }
    if (comp < 0) {
      for (const TaskId t : sp.readers_of(static_cast<CommId>(c))) {
        if (!task_hosts[static_cast<std::size_t>(t)].empty()) {
          comp = comp_of_task(static_cast<std::size_t>(t));
          break;
        }
      }
    }
    comm_comp[c] = comp < 0 ? 0 : comp;
  }

  // Pack components onto K LPs, longest-processing-time first over an
  // activations-per-hyperperiod load estimate.
  const Time hyperperiod = sp.hyperperiod();
  std::vector<std::int64_t> comp_load(static_cast<std::size_t>(num_comps), 0);
  for (std::size_t c = 0; c < num_comms; ++c) {
    comp_load[static_cast<std::size_t>(comm_comp[c])] +=
        hyperperiod / sp.communicator(static_cast<CommId>(c)).period + 1;
  }
  for (std::size_t t = 0; t < num_tasks; ++t) {
    comp_load[static_cast<std::size_t>(comp_of_task(t))] += 1;
  }
  const int count = std::min(max_lps, num_comps);
  std::vector<int> order(static_cast<std::size_t>(num_comps));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = comp_load[static_cast<std::size_t>(a)];
    const auto lb = comp_load[static_cast<std::size_t>(b)];
    return la != lb ? la > lb : a < b;
  });
  std::vector<std::int64_t> lp_load(static_cast<std::size_t>(count), 0);
  std::vector<int> comp_lp(static_cast<std::size_t>(num_comps), 0);
  for (const int comp : order) {
    int best = 0;
    for (int lp = 1; lp < count; ++lp) {
      if (lp_load[static_cast<std::size_t>(lp)] <
          lp_load[static_cast<std::size_t>(best)]) {
        best = lp;
      }
    }
    comp_lp[static_cast<std::size_t>(comp)] = best;
    lp_load[static_cast<std::size_t>(best)] +=
        comp_load[static_cast<std::size_t>(comp)];
  }

  partition.count = count;
  partition.shards.assign(static_cast<std::size_t>(count), {});
  for (int lp = 0; lp < count; ++lp) {
    partition.shards[static_cast<std::size_t>(lp)].primary = lp == 0;
  }
  for (std::size_t h = 0; h < num_hosts; ++h) {
    partition
        .shards[static_cast<std::size_t>(
            comp_lp[static_cast<std::size_t>(host_comp[h])])]
        .hosts.push_back(static_cast<HostId>(h));
  }
  std::vector<int> task_lp(num_tasks, 0);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    task_lp[t] = comp_lp[static_cast<std::size_t>(comp_of_task(t))];
    partition.shards[static_cast<std::size_t>(task_lp[t])].tasks.push_back(
        static_cast<TaskId>(t));
  }
  for (std::size_t c = 0; c < num_comms; ++c) {
    const int owner = comp_lp[static_cast<std::size_t>(comm_comp[c])];
    partition.comm_owner[c] = owner;
    partition.shards[static_cast<std::size_t>(owner)].comms.push_back(
        static_cast<CommId>(c));
  }

  // Sensor shadows and commit channels, from each communicator's foreign
  // hosted readers. Comms iterate ascending, so every per-LP list stays
  // ascending and adjacent-duplicate checks suffice.
  std::map<std::pair<int, int>, std::vector<CommId>> edges;
  for (std::size_t c = 0; c < num_comms; ++c) {
    const int owner = partition.comm_owner[c];
    const bool sensor = sp.is_input_communicator(static_cast<CommId>(c));
    for (const TaskId t : sp.readers_of(static_cast<CommId>(c))) {
      if (task_hosts[static_cast<std::size_t>(t)].empty()) continue;
      const int reader = task_lp[static_cast<std::size_t>(t)];
      if (reader == owner) continue;
      if (sensor) {
        auto& shadows =
            partition.shards[static_cast<std::size_t>(reader)].shadow_comms;
        if (shadows.empty() || shadows.back() != static_cast<CommId>(c)) {
          shadows.push_back(static_cast<CommId>(c));
        }
      } else {
        auto& comms = edges[{owner, reader}];
        if (comms.empty() || comms.back() != static_cast<CommId>(c)) {
          comms.push_back(static_cast<CommId>(c));
        }
      }
    }
  }
  partition.channels.reserve(edges.size());
  for (auto& [key, comms] : edges) {
    LpChannelSpec channel;
    channel.from = key.first;
    channel.to = key.second;
    channel.lookahead = kNoBound;
    for (const CommId c : comms) {
      channel.lookahead =
          std::min(channel.lookahead, lookahead[static_cast<std::size_t>(c)]);
    }
    channel.comms = std::move(comms);
    partition.channels.push_back(std::move(channel));
  }
  return partition;
}

}  // namespace lrt::sim::detail
