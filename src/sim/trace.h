// Implementation traces and the reliability-based abstraction (paper
// Section 2, "Semantics" / "Reliability").
//
// A trace is a sequence (X_i) of communicator values at every time instant;
// the abstraction rho maps it to a 0/1 trace (Z_j), Z_j(c) = 1 iff the
// value of c at its j-th access instant is reliable (non-bottom); and
// limavg is the long-run average of the Z_j. The simulator samples Z
// directly (storing full value traces only on request) and this header
// provides the literal paper operators for tests and post-processing.
#ifndef LRT_SIM_TRACE_H_
#define LRT_SIM_TRACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "spec/specification.h"

namespace lrt::sim {

/// rho for a single communicator: value trace -> 0/1 abstract trace.
[[nodiscard]] std::vector<int> reliability_abstraction(
    std::span<const spec::Value> values);

/// limavg of a finite prefix of an abstract trace: (1/n) * sum Z_j.
/// Returns 1.0 for an empty trace (vacuously reliable).
[[nodiscard]] double limit_average(std::span<const int> abstract_trace);

/// Online accumulator for one communicator's abstract trace.
class ReliabilityAccumulator {
 public:
  void record(bool reliable) {
    ++samples_;
    if (reliable) ++reliable_;
  }
  [[nodiscard]] std::int64_t samples() const { return samples_; }
  [[nodiscard]] std::int64_t reliable() const { return reliable_; }
  [[nodiscard]] double average() const {
    return samples_ == 0 ? 1.0
                         : static_cast<double>(reliable_) /
                               static_cast<double>(samples_);
  }

 private:
  std::int64_t samples_ = 0;
  std::int64_t reliable_ = 0;
};

/// A two-sided confidence interval on a Bernoulli rate.
struct ConfidenceInterval {
  double low = 0.0;
  double high = 1.0;
  [[nodiscard]] bool contains(double p) const { return low <= p && p <= high; }
};

/// Wilson score interval for `successes` out of `trials`, at the z-score
/// `z` (default 2.576 ~ 99%). Well-behaved near 0/1 and for small n,
/// unlike the normal approximation. Returns [0, 1] for zero trials.
[[nodiscard]] ConfidenceInterval wilson_interval(std::int64_t successes,
                                                 std::int64_t trials,
                                                 double z = 2.576);

/// Per-communicator simulation statistics.
struct CommStats {
  std::string name;
  /// Access-instant samples (every pi_c ticks): the paper's Z_j.
  std::int64_t samples = 0;
  std::int64_t reliable_samples = 0;
  /// Empirical limavg of the abstract trace.
  double limit_average = 1.0;
  /// Update events only (commits by sensor or task vote) — excludes
  /// persisted instants; the natural empirical estimate of the SRG.
  std::int64_t updates = 0;
  std::int64_t reliable_updates = 0;
  [[nodiscard]] double update_rate() const {
    return updates == 0 ? 1.0
                        : static_cast<double>(reliable_updates) /
                              static_cast<double>(updates);
  }
  /// Wilson interval on the per-update reliability.
  [[nodiscard]] ConfidenceInterval update_rate_interval(
      double z = 2.576) const {
    return wilson_interval(reliable_updates, updates, z);
  }
};

}  // namespace lrt::sim

#endif  // LRT_SIM_TRACE_H_
