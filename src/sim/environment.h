// The physical environment seen by a simulated implementation: a source of
// sensor readings and a sink for actuator commands. The 3TS plant
// (src/plant) implements this interface; tests use synthetic environments.
#ifndef LRT_SIM_ENVIRONMENT_H_
#define LRT_SIM_ENVIRONMENT_H_

#include <string_view>

#include "spec/declarations.h"
#include "spec/value.h"

namespace lrt::sim {

/// Callbacks invoked by the runtime at communicator update instants.
/// All times are absolute ticks.
class Environment {
 public:
  /// Granularity contract for advance(). The tick engine always calls
  /// advance() once per base tick; the event engine jumps across idle
  /// spans and asks the environment how to bridge them:
  ///  * kEveryTick (safe default): advance() is replayed once per base
  ///    tick across the span — bit-identical for stateful integrators
  ///    whose result depends on the step sequence (e.g. the 3TS plant);
  ///  * kCoalesce: the environment promises advance(t, a + b) is
  ///    equivalent to advance(t, a); advance(t + a, b), so one call may
  ///    cover the whole idle span. This is what makes sparse workloads
  ///    O(events) instead of O(ticks).
  enum class AdvanceGranularity { kEveryTick, kCoalesce };

  virtual ~Environment() = default;

  /// The physical value a (non-failed) sensor writes to input communicator
  /// `comm` at time `now`. Must not return bottom — sensor *failures* are
  /// injected by the runtime, not the environment.
  virtual spec::Value read_sensor(std::string_view comm, spec::Time now) = 0;

  /// Delivery of the committed value of output communicator `comm` to its
  /// actuator. `value` may be bottom when the update failed; a real
  /// actuator would then hold its previous command.
  virtual void write_actuator(std::string_view comm, spec::Time now,
                              const spec::Value& value) = 0;

  /// Advance the physical model from `now` to `now + dt` (under the tick
  /// engine: called once per base tick, after all commits of the tick).
  virtual void advance(spec::Time now, spec::Time dt) {
    (void)now;
    (void)dt;
  }

  /// See AdvanceGranularity. Override to kCoalesce when advance() is
  /// additive in dt (stateless environments, closed-form models).
  [[nodiscard]] virtual AdvanceGranularity advance_granularity() const {
    return AdvanceGranularity::kEveryTick;
  }

  /// Whether the parallel event engine may shard a run over this
  /// environment. True promises: read_sensor() is a pure function of
  /// (comm, now) — several logical processes may call it concurrently and
  /// must see identical values — and write_actuator()/advance() are
  /// no-ops (no physical state to advance). Stateful plants (e.g. the 3TS
  /// integrator) keep the safe default; SimulationOptions::kParallelEvent
  /// then coalesces to the sequential event engine.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }
};

/// Environment returning a constant for every sensor and discarding
/// actuator output; sufficient for pure reliability measurements.
class NullEnvironment final : public Environment {
 public:
  spec::Value read_sensor(std::string_view, spec::Time) override {
    return spec::Value::real(0.0);
  }
  void write_actuator(std::string_view, spec::Time,
                      const spec::Value&) override {}
  [[nodiscard]] AdvanceGranularity advance_granularity() const override {
    return AdvanceGranularity::kCoalesce;
  }
  [[nodiscard]] bool parallel_safe() const override { return true; }
};

}  // namespace lrt::sim

#endif  // LRT_SIM_ENVIRONMENT_H_
