// The conservative parallel event engine (Engine::kParallelEvent).
//
// The workload is partitioned into logical processes (lp_partition.h),
// each running the sequential event loop over a sharded RuntimeCore and
// exchanging communicator commits through deterministic per-edge
// channels. Synchronization is conservative in the Chandy–Misra–Bryant
// style: a producer follows every batch with a time guarantee ("safe")
// derived from its own clock plus the edge lookahead, and a consumer
// never executes an instant before every in-edge has guaranteed it —
// so results, value traces, and shared counters are bit-identical to
// the sequential engines for any thread count (DESIGN.md section 5j).
//
// Runs that cannot shard safely (a monitor is installed, the
// environment is not parallel_safe(), a single-thread budget, or a
// one-component workload) coalesce to run_event_engine wholesale.
#ifndef LRT_SIM_PARALLEL_RUNTIME_H_
#define LRT_SIM_PARALLEL_RUNTIME_H_

#include <span>

#include "impl/implementation.h"
#include "sim/runtime.h"
#include "support/status.h"

namespace lrt::sim::detail {

[[nodiscard]] Result<SimulationResult> run_parallel_engine(
    std::span<const impl::Implementation> phases, Environment& env,
    const SimulationOptions& options);

}  // namespace lrt::sim::detail

#endif  // LRT_SIM_PARALLEL_RUNTIME_H_
