// The shared per-instant simulation machine behind both engines.
//
// RuntimeCore owns every piece of simulation state (replications, latches,
// pending broadcasts, EDF run queues, accumulators, RNG) and executes the
// canonical tick body — host events, period-boundary hooks, commits,
// recording, latching, task execution — as one deterministic function of
// (now, state). The two engines differ ONLY in which instants they visit:
//
//  * sim::Runtime (runtime.cpp, Engine::kTick) calls tick() at every
//    multiple of the harmonic grid step — the reference oracle;
//  * sim::EventRuntime (event_runtime.cpp, Engine::kEvent) calls tick()
//    only at instants where the body can do work, advancing processors and
//    the environment across the gaps in one window.
//
// The tick body is a no-op (beyond environment/processor advancement) at
// any instant that is not a multiple of some communicator period, a task
// release, or a (grid-rounded) scripted host event — the activation-set
// argument spelled out in DESIGN.md section 5g. Keeping the body in one
// place is what makes the engines' traces bit-identical by construction:
// there is no second copy of the semantics to drift.
//
// This header is an internal seam between the engines, not public API;
// user code goes through sim::simulate / SimulationOptions::engine.
#ifndef LRT_SIM_RUNTIME_CORE_H_
#define LRT_SIM_RUNTIME_CORE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "impl/implementation.h"
#include "obs/sink.h"
#include "sim/environment.h"
#include "sim/fault_plan.h"
#include "sim/runtime.h"
#include "sim/trace.h"
#include "sim/voting.h"
#include "support/rng.h"
#include "support/status.h"

namespace lrt::sim::detail {

/// A broadcast output value awaiting its commit (write) instant.
struct PendingWrite {
  spec::CommId comm = -1;
  arch::HostId source = -1;
  spec::Value value;
};

/// Restriction of a RuntimeCore to one logical process's share of the
/// workload (parallel engine only; a null shard means the whole workload).
/// Ownership is exclusive: every task, communicator, and host belongs to
/// exactly one shard, and a shard executes the canonical tick body over
/// its ids only — so per-run totals are the sums of the shards' and the
/// per-communicator statistics come from the single owner. All id lists
/// must be ascending (the iteration order of the unsharded loops).
struct ShardSpec {
  std::vector<spec::TaskId> tasks;   ///< tasks executed here
  std::vector<spec::CommId> comms;   ///< commits + accounting here
  /// Foreign-owned *sensor* communicators read by an owned task: their
  /// value is recomputed locally at each due instant (the keyed fault
  /// draw and a parallel_safe environment make the replay exact), with
  /// counters and accumulators left to the owner.
  std::vector<spec::CommId> shadow_comms;
  std::vector<arch::HostId> hosts;   ///< host events + EDF processors here
  /// Exactly one shard per run emits the run-level counters (sim.runs,
  /// sim.periods) and the per-period trace spans.
  bool primary = true;
};

class RuntimeCore {
 public:
  /// `phases` must be nonempty and share one specification/architecture;
  /// iteration k runs under phases[k mod N]. All references must outlive
  /// the core. A non-null `shard` restricts the core to that slice of the
  /// workload; sharded cores never host a monitor (the parallel engine
  /// coalesces monitored runs) and never hot-swap.
  RuntimeCore(std::span<const impl::Implementation> phases, Environment& env,
              const SimulationOptions& options,
              const ShardSpec* shard = nullptr);

  /// Validates the configuration and builds the initial state. Must be
  /// called (and succeed) before any other method.
  [[nodiscard]] Status init();

  /// Executes the canonical body for instant `now`: host events, the
  /// period-boundary tracer span and monitor hook, communicator commits,
  /// recording/actuation, input latching, and task execution. Instants
  /// must be visited in strictly increasing order. Fails only on a
  /// monitor remap targeting foreign models.
  [[nodiscard]] Status tick(spec::Time now);

  /// Timed execution mode: runs every host's preemptive-EDF processor
  /// over the window [from, to). The function is additive over window
  /// splits, so engines may advance tick-by-tick or in one jump. No-op
  /// when model_execution_time is off.
  void advance_processors(spec::Time from, spec::Time to);

  /// Advances the environment over [from, to), honouring its granularity
  /// contract: one advance() call per base tick (kEveryTick) or a single
  /// call for the whole window (kCoalesce).
  void advance_environment(spec::Time from, spec::Time to);

  /// Emits the trailing trace span and the run counters, then assembles
  /// the result. Call exactly once, after the last tick.
  [[nodiscard]] SimulationResult finish();

  /// The harmonic grid step (gcd of the communicator periods) of the
  /// specification currently in force.
  [[nodiscard]] spec::Time step() const { return step_; }
  /// The specification period pi_S currently in force.
  [[nodiscard]] spec::Time hyperperiod() const { return hyperperiod_; }
  /// Total simulated ticks, frozen at init() from the initial
  /// specification (a later hot-swap never moves the horizon).
  [[nodiscard]] spec::Time duration() const { return duration_; }
  /// The specification currently in force (changes on a hot-swap).
  [[nodiscard]] const spec::Specification& spec() const { return *spec_; }
  /// Instant the current specification took effect: its grid and period
  /// arithmetic are measured from here (0 until the first hot-swap).
  [[nodiscard]] spec::Time epoch() const { return epoch_; }
  /// Bumped on every hot-swap. Engines watch this to rebuild calendars
  /// derived from the outgoing specification.
  [[nodiscard]] std::int64_t generation() const { return generation_; }
  /// Scripted host events, time-sorted (valid after init()).
  [[nodiscard]] const std::vector<FaultPlan::HostEvent>& host_events() const {
    return host_events_;
  }
  /// The monitor-installed mapping override, null until a remap commits.
  /// Engines watch this to resynchronize release schedules after a remap.
  [[nodiscard]] const impl::Implementation* override_mapping() const {
    return override_;
  }
  [[nodiscard]] const obs::Sink* sink() const { return sink_; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Relative write offsets (pi_c * i per writer output port, duplicates
  /// possible) of `comm`; a commit is due at epoch-relative times
  /// w + k * hyperperiod for each offset w. The parallel engine derives
  /// cross-LP commit schedules and lookahead from these.
  [[nodiscard]] const std::vector<spec::Time>& write_offsets(
      spec::CommId comm) const {
    return write_instants_[static_cast<std::size_t>(comm)];
  }

  /// Stages a commit of a foreign-owned communicator (winner already
  /// voted by the owning shard) for application at `commit_time`. The
  /// next tick at or after `commit_time` folds it into the replications
  /// before latching — the owner performs all accounting.
  void stage_foreign_commit(spec::Time commit_time, spec::CommId comm,
                            const spec::Value& winner);

  /// Resolves the vote for an owned communicator's commit at `commit_time`
  /// WITHOUT executing the instant: candidates are peeked from the pending
  /// broadcasts and filtered by the statically-known host availability at
  /// `commit_time`. Valid once every task execution that can contribute
  /// has run — i.e. once the core has completed some instant t with
  /// commit_time <= t + lookahead(comm). Pure: counters, accumulators,
  /// and replications are untouched; the later tick at `commit_time`
  /// recomputes the identical winner with full accounting.
  [[nodiscard]] spec::Value resolve_commit_winner(spec::CommId comm,
                                                  spec::Time commit_time) const;

 private:
  /// Installs `next` (possibly targeting a different specification) at
  /// boundary `now`: rebases the grid epoch, carries communicator state
  /// over by name, and re-derives every spec-shaped table. Fails only
  /// when `next` uses a foreign architecture or (in timed mode) a task
  /// without timing entries.
  [[nodiscard]] Status install_swap(spec::Time now,
                                    const impl::Implementation* next);
  void apply_host_events(spec::Time now);
  void commit_updates(spec::Time now);
  void record_and_actuate(spec::Time now);
  void latch_inputs(spec::Time now);
  void execute_tasks(spec::Time now);
  void deliver_outputs(spec::TaskId task, arch::HostId host,
                       spec::Time period_start, spec::Time available_at,
                       const std::vector<spec::Value>& outputs);

  /// The replication-consensus value of `comm` (hosts always agree; the
  /// canonical copy is shard-independent — it tracks every commit, owned
  /// or staged, even when host 0 lives in another shard).
  [[nodiscard]] const spec::Value& committed(spec::CommId comm) const {
    return canonical_[static_cast<std::size_t>(comm)];
  }

  void set_all_replications(spec::CommId comm, const spec::Value& value) {
    canonical_[static_cast<std::size_t>(comm)] = value;
    for (const arch::HostId h : owned_hosts_) {
      values_[static_cast<std::size_t>(h)][static_cast<std::size_t>(comm)] =
          value;
    }
  }

  /// Host availability at absolute time `future` (>= the last tick),
  /// folded from the current state and the not-yet-applied scripted
  /// events — the fault plan is static, so the future is known.
  [[nodiscard]] bool host_up_at(arch::HostId host, spec::Time future) const {
    bool up = host_up_[static_cast<std::size_t>(host)];
    for (std::size_t e = next_host_event_; e < host_events_.size() &&
                                           host_events_[e].time <= future;
         ++e) {
      if (host_events_[e].host == host) up = host_events_[e].up;
    }
    return up;
  }

  /// Applies staged foreign commits with time <= now (the consumer side
  /// of a cross-shard channel). No-op for unsharded cores.
  void apply_foreign_commits(spec::Time now);

  /// The implementation in force at absolute time `now`: a monitor remap
  /// or hot-swap once installed, otherwise the scheduled phase.
  [[nodiscard]] const impl::Implementation& phase_at(spec::Time now) const {
    if (override_ != nullptr) return *override_;
    const auto index = static_cast<std::size_t>(
        ((now - epoch_) / hyperperiod_) %
        static_cast<spec::Time>(phases_.size()));
    return phases_[index];
  }

  std::span<const impl::Implementation> phases_;
  /// Specification in force; reseated by install_swap().
  const spec::Specification* spec_;
  const arch::Architecture& arch_;
  Environment& env_;
  const SimulationOptions& options_;
  RuntimeMonitor* monitor_;
  /// Resolved observability sink (null = disabled) and its tracer.
  const obs::Sink* sink_;
  obs::Tracer* tracer_;
  std::int64_t period_start_us_ = 0;
  /// Updates that committed bottom (no contributor / failed sensor).
  std::int64_t bottom_updates_ = 0;
  /// Mapping installed by the monitor; supersedes phases_ once set.
  const impl::Implementation* override_ = nullptr;
  /// Null = whole workload. When set, the owned_* lists below are the
  /// shard's; loops over tasks/comms/hosts iterate them instead of the
  /// full id ranges (in the same ascending order, so counters and vote
  /// candidate order match the unsharded run exactly).
  const ShardSpec* shard_;
  std::vector<spec::TaskId> owned_tasks_;
  std::vector<spec::CommId> owned_comms_;
  std::vector<arch::HostId> owned_hosts_;

  spec::Time step_ = 1;
  spec::Time hyperperiod_ = 1;
  /// Instant the current specification took effect (0 until a swap); all
  /// grid/period arithmetic is relative to it.
  spec::Time epoch_ = 0;
  /// Simulated horizon, frozen at init() from the initial specification.
  spec::Time duration_ = 0;
  /// Incremented per hot-swap (engine calendars key off it).
  std::int64_t generation_ = 0;

  // values_[host][comm]: the communicator replications.
  std::vector<std::vector<spec::Value>> values_;
  /// The shard-independent committed value per communicator (== every
  /// owned host's replication row after each commit).
  std::vector<spec::Value> canonical_;
  std::vector<bool> host_up_;
  std::size_t next_host_event_ = 0;
  std::vector<FaultPlan::HostEvent> host_events_;
  /// Cross-shard commits staged by the parallel engine, keyed by commit
  /// time; applied lazily at the next local tick.
  std::map<spec::Time, std::vector<std::pair<spec::CommId, spec::Value>>>
      foreign_pending_;

  // latched_[host][task][input j]
  std::vector<std::vector<std::vector<spec::Value>>> latched_;

  // Broadcast values keyed by absolute commit time.
  std::map<spec::Time, std::vector<PendingWrite>> pending_;

  // Timed execution mode: one preemptive-EDF processor per host.
  struct ActiveJob {
    spec::TaskId task = -1;
    spec::Time deadline = 0;  ///< absolute completion deadline (EDF key)
    spec::Time remaining = 0;  ///< WCET budget left
    spec::Time period_start = 0;
    bool silent = false;  ///< all attempts failed: consumes time only
    std::vector<spec::Value> outputs;
  };
  std::vector<std::vector<ActiveJob>> run_queues_;  // per host
  std::vector<spec::Time> wcet_;                    // [task * H + host]
  std::vector<spec::Time> wctt_;

  // Per communicator: the relative write instants (pi_c * i for each output
  // instance i of the writer task), used to decide when an update is due.
  std::vector<std::vector<spec::Time>> write_instants_;

  SimulationResult result_;
  std::vector<ReliabilityAccumulator> accumulators_;   // access instants
  std::vector<ReliabilityAccumulator> update_accums_;  // update events
  /// Accumulators of communicators a hot-swap dropped, stashed by name so
  /// a rollback (or a later re-splice) resumes their statistics instead
  /// of restarting the Wilson interval from zero.
  std::map<std::string,
           std::pair<ReliabilityAccumulator, ReliabilityAccumulator>>
      retired_accums_;
  std::vector<bool> record_values_;
  std::vector<bool> is_actuator_;
};

}  // namespace lrt::sim::detail

#endif  // LRT_SIM_RUNTIME_CORE_H_
