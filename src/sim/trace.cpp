#include "sim/trace.h"

#include <algorithm>
#include <cmath>

namespace lrt::sim {

ConfidenceInterval wilson_interval(std::int64_t successes,
                                   std::int64_t trials, double z) {
  if (trials <= 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

std::vector<int> reliability_abstraction(
    std::span<const spec::Value> values) {
  std::vector<int> abstract;
  abstract.reserve(values.size());
  for (const spec::Value& value : values) {
    abstract.push_back(value.is_bottom() ? 0 : 1);
  }
  return abstract;
}

double limit_average(std::span<const int> abstract_trace) {
  if (abstract_trace.empty()) return 1.0;
  std::int64_t sum = 0;
  for (const int z : abstract_trace) sum += z;
  return static_cast<double>(sum) /
         static_cast<double>(abstract_trace.size());
}

}  // namespace lrt::sim
