#include "sim/voting.h"

#include <vector>

namespace lrt::sim {

spec::Value vote(std::span<const spec::Value> candidates,
                 VotingPolicy policy, std::int64_t* divergences) {
  // Distinct non-bottom values with their multiplicities, first-seen order.
  std::vector<std::pair<const spec::Value*, int>> tally;
  for (const spec::Value& candidate : candidates) {
    if (candidate.is_bottom()) continue;
    bool found = false;
    for (auto& [value, count] : tally) {
      if (*value == candidate) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) tally.emplace_back(&candidate, 1);
  }
  if (tally.empty()) return spec::Value::bottom();
  if (tally.size() > 1 && divergences != nullptr) ++*divergences;

  if (policy == VotingPolicy::kAnyNonBottom) return *tally.front().first;

  const spec::Value* best = tally.front().first;
  int best_count = tally.front().second;
  for (const auto& [value, count] : tally) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return *best;
}

}  // namespace lrt::sim
