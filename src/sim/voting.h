// The voting routine run by every host over the replica outputs received
// for a communicator update (paper Section 4: "Each host then performs a
// voting routine on the received data to determine, if possible, the
// correct value").
//
// Under the paper's assumptions (functionally correct tasks, identical
// inputs via atomic broadcast) every non-bottom candidate is identical, so
// "any non-bottom value" is the canonical policy. Majority voting is
// provided as an extension: it coincides with the canonical policy under
// the paper's assumptions (tested) and additionally masks a minority of
// corrupted replicas if fail-silence were violated.
#ifndef LRT_SIM_VOTING_H_
#define LRT_SIM_VOTING_H_

#include <cstdint>
#include <span>

#include "spec/value.h"

namespace lrt::sim {

enum class VotingPolicy {
  /// Paper semantics: the first non-bottom candidate wins.
  kAnyNonBottom,
  /// The most frequent non-bottom candidate wins (ties: first seen).
  kMajority,
};

/// Resolves one communicator update from replica candidates. Returns
/// bottom when no candidate is non-bottom. If `divergences` is non-null it
/// is incremented once per update in which two distinct non-bottom
/// candidates were observed (a violation of the paper's determinism
/// assumption).
[[nodiscard]] spec::Value vote(std::span<const spec::Value> candidates,
                               VotingPolicy policy,
                               std::int64_t* divergences = nullptr);

}  // namespace lrt::sim

#endif  // LRT_SIM_VOTING_H_
