#include "gen/workload.h"

#include <string>
#include <vector>

namespace lrt::gen {
namespace {

using spec::Value;

int draw_between(Xoshiro256& rng, int lo, int hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

}  // namespace

Result<Workload> random_workload(Xoshiro256& rng,
                                 const WorkloadOptions& options) {
  if (options.min_layers < 1 || options.min_tasks_per_layer < 1 ||
      options.min_fan_in < 1 || options.min_sensors < 1 ||
      options.min_hosts < 1) {
    return InvalidArgumentError("workload options must be >= 1");
  }

  Workload workload;
  spec::SpecificationConfig config;
  config.name = "generated";

  std::vector<std::vector<std::string>> layers;   // comm names per layer
  std::vector<std::pair<std::string, int>> unconsumed;  // tree mode pool
  int extra_sensors = 0;

  const int sensors = draw_between(rng, options.min_sensors,
                                   options.max_sensors);
  layers.emplace_back();
  const auto add_sensor_comm = [&](const std::string& name) {
    config.communicators.push_back(
        {name, spec::ValueType::kReal, Value::real(0.0), options.period,
         rng.uniform(options.min_lrc, options.max_lrc)});
  };
  for (int i = 0; i < sensors; ++i) {
    const std::string name = "s" + std::to_string(i);
    add_sensor_comm(name);
    layers[0].push_back(name);
    unconsumed.emplace_back(name, 0);
  }

  const int task_layers = draw_between(rng, options.min_layers,
                                       options.max_layers);
  int task_counter = 0;
  for (int layer = 1; layer <= task_layers; ++layer) {
    layers.emplace_back();
    const int tasks = draw_between(rng, options.min_tasks_per_layer,
                                   options.max_tasks_per_layer);
    for (int i = 0; i < tasks; ++i) {
      const std::string out =
          "c" + std::to_string(layer) + "_" + std::to_string(i);
      config.communicators.push_back(
          {out, spec::ValueType::kReal, Value::real(0.0), options.period,
           rng.uniform(options.min_lrc, options.max_lrc)});
      spec::SpecificationConfig::TaskConfig task;
      task.name = "t" + std::to_string(task_counter++);
      const int fan_in = draw_between(rng, options.min_fan_in,
                                      options.max_fan_in);
      for (int j = 0; j < fan_in; ++j) {
        if (options.tree_structured) {
          std::vector<std::size_t> eligible;
          for (std::size_t k = 0; k < unconsumed.size(); ++k) {
            if (unconsumed[k].second < layer) eligible.push_back(k);
          }
          if (eligible.empty()) {
            const std::string name = "sx" + std::to_string(extra_sensors++);
            add_sensor_comm(name);
            task.inputs.emplace_back(name, 0);
          } else {
            const std::size_t pick = eligible[rng.next_below(eligible.size())];
            task.inputs.emplace_back(
                unconsumed[pick].first,
                static_cast<std::int64_t>(unconsumed[pick].second));
            unconsumed.erase(unconsumed.begin() +
                             static_cast<std::ptrdiff_t>(pick));
          }
        } else {
          const auto src_layer = static_cast<std::size_t>(
              rng.next_below(static_cast<std::uint64_t>(layer)));
          const auto& pool = layers[src_layer];
          task.inputs.emplace_back(pool[rng.next_below(pool.size())],
                                   static_cast<std::int64_t>(src_layer));
        }
      }
      task.outputs.emplace_back(out, layer);
      const std::uint64_t model = rng.next_below(3);
      task.model = model == 0   ? spec::FailureModel::kSeries
                   : model == 1 ? spec::FailureModel::kParallel
                                : spec::FailureModel::kIndependent;
      if (options.with_functions) {
        const double coef = rng.uniform(0.5, 2.0);
        const double bias = rng.uniform(-1.0, 1.0);
        task.function = [coef, bias](std::span<const Value> inputs) {
          double sum = bias;
          for (const Value& value : inputs) sum += coef * value.as_real();
          return std::vector<Value>{Value::real(sum)};
        };
      }
      config.tasks.push_back(std::move(task));
      layers[static_cast<std::size_t>(layer)].push_back(out);
      unconsumed.emplace_back(out, layer);
    }
  }

  const int hosts = draw_between(rng, options.min_hosts, options.max_hosts);
  for (int h = 0; h < hosts; ++h) {
    workload.architecture_config.hosts.push_back(
        {"h" + std::to_string(h),
         rng.uniform(options.min_host_reliability,
                     options.max_host_reliability)});
  }
  workload.architecture_config.default_wcet = options.wcet;
  workload.architecture_config.default_wctt = options.wctt;

  LRT_ASSIGN_OR_RETURN(spec::Specification built_spec,
                       spec::Specification::Build(std::move(config)));
  workload.specification =
      std::make_unique<spec::Specification>(std::move(built_spec));

  for (const auto& task : workload.specification->tasks()) {
    std::vector<std::string> chosen;
    for (int h = 0; h < hosts; ++h) {
      if (rng.bernoulli(options.replication_density)) {
        chosen.push_back("h" + std::to_string(h));
      }
    }
    if (chosen.empty()) {
      chosen.push_back(
          "h" + std::to_string(
                    rng.next_below(static_cast<std::uint64_t>(hosts))));
    }
    workload.implementation_config.task_mappings.push_back(
        {task.name, std::move(chosen)});
  }
  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(
               workload.specification->communicators().size());
       ++c) {
    if (workload.specification->is_input_communicator(c) &&
        !workload.specification->readers_of(c).empty()) {
      const std::string& name =
          workload.specification->communicator(c).name;
      workload.architecture_config.sensors.push_back(
          {"sens_" + name,
           rng.uniform(options.min_sensor_reliability,
                       options.max_sensor_reliability)});
      workload.implementation_config.sensor_bindings.push_back(
          {name, "sens_" + name});
    }
  }

  LRT_ASSIGN_OR_RETURN(
      arch::Architecture built_arch,
      arch::Architecture::Build(workload.architecture_config));
  workload.architecture =
      std::make_unique<arch::Architecture>(std::move(built_arch));
  LRT_ASSIGN_OR_RETURN(
      impl::Implementation built_impl,
      impl::Implementation::Build(*workload.specification,
                                  *workload.architecture,
                                  workload.implementation_config));
  workload.implementation =
      std::make_unique<impl::Implementation>(std::move(built_impl));
  return workload;
}

}  // namespace lrt::gen
