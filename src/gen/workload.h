// Random workload generation: layered LET dataflows with configurable
// shape, failure-model mix, architectures, and replication mappings. Used
// by the property-test suites and the scaling/ablation benches; seeded, so
// every generated system is reproducible.
#ifndef LRT_GEN_WORKLOAD_H_
#define LRT_GEN_WORKLOAD_H_

#include <cstdint>
#include <memory>

#include "impl/implementation.h"
#include "support/rng.h"
#include "support/status.h"

namespace lrt::gen {

struct WorkloadOptions {
  /// Layers of tasks (depth of the dataflow).
  int min_layers = 1;
  int max_layers = 4;
  /// Tasks per layer.
  int min_tasks_per_layer = 1;
  int max_tasks_per_layer = 3;
  /// Inputs per task.
  int min_fan_in = 1;
  int max_fan_in = 3;
  /// Sensor communicators seeding layer 0.
  int min_sensors = 1;
  int max_sensors = 3;
  /// Hosts in the architecture.
  int min_hosts = 1;
  int max_hosts = 3;
  /// Component reliability ranges.
  double min_host_reliability = 0.7;
  double max_host_reliability = 0.999;
  double min_sensor_reliability = 0.7;
  double max_sensor_reliability = 0.999;
  /// LRC range for generated communicators (kept loose by default so the
  /// single-host mapping is reliable; tighten to exercise synthesis).
  double min_lrc = 0.2;
  double max_lrc = 0.5;
  /// Probability that a task is mapped to any given host (at least one is
  /// always chosen).
  double replication_density = 0.4;
  /// Tree-structured dataflow: every communicator feeds at most one task
  /// input, making the paper's SRG rules exact (no shared-dependency
  /// correlation).
  bool tree_structured = false;
  /// Attach arithmetic task functions (for value-trace comparisons).
  bool with_functions = false;
  /// Base period of every communicator (ticks).
  spec::Time period = 10;
  /// WCET/WCTT defaults for the architecture.
  spec::Time wcet = 1;
  spec::Time wctt = 1;
};

/// A generated system; heap storage keeps back-references stable. The
/// configs are retained so callers can derive variants (e.g. boosted
/// reliabilities or alternative mappings).
struct Workload {
  std::unique_ptr<spec::Specification> specification;
  std::unique_ptr<arch::Architecture> architecture;
  std::unique_ptr<impl::Implementation> implementation;
  arch::ArchitectureConfig architecture_config;
  impl::ImplementationConfig implementation_config;
};

/// Draws one workload. The generated specification is acyclic (layered)
/// and race-free by construction; the implementation maps every task and
/// binds every read sensor communicator.
[[nodiscard]] Result<Workload> random_workload(Xoshiro256& rng,
                                               const WorkloadOptions& options
                                               = {});

}  // namespace lrt::gen

#endif  // LRT_GEN_WORKLOAD_H_
