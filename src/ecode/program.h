// E-code: the target of the HTL compiler (paper Section 4, "Implementation
// in HTL"; the E-machine model comes from Giotto/HTL).
//
// The generated code for one host is a set of *reaction blocks*, one per
// active instant of the specification period. A block is a straight-line
// sequence of driver calls and task releases, terminated by future() —
// which (re)arms the machine for the next block — and halt:
//
//   call sensor(c)    update the local replication of input communicator c
//                     from the (shared) physical sensor
//   call vote(c)      run the voting routine over the replica outputs
//                     received for c and commit the result locally
//   call actuate(c)   push the committed value of c to its actuator
//                     (emitted only on the designated I/O host)
//   call latch(t, j)  copy the local value of t's j-th input communicator
//                     into t's input port
//   release(t)        hand the local replication of t to the scheduler;
//                     outputs are broadcast for their write instants
//   future(dt, addr)  trigger block at addr after dt ticks
//   halt              end of reaction
//
// The order inside a block enforces the paper's update-then-read rule:
// votes and sensor updates first, then actuation, then latching, then
// releases.
#ifndef LRT_ECODE_PROGRAM_H_
#define LRT_ECODE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "impl/implementation.h"

namespace lrt::ecode {

enum class Opcode : std::uint8_t {
  kCallSensor,   ///< arg0 = communicator
  kCallVote,     ///< arg0 = communicator, arg1 = first due instant
  kCallActuate,  ///< arg0 = communicator
  kCallLatch,    ///< arg0 = task, arg1 = input index
  kRelease,      ///< arg0 = task
  kFuture,       ///< arg0 = delta ticks, arg1 = target address
  kHalt,
};

std::string_view to_string(Opcode op);

struct Instruction {
  Opcode op = Opcode::kHalt;
  std::int32_t arg0 = 0;
  std::int32_t arg1 = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// The E-code program of one host.
struct EcodeProgram {
  arch::HostId host = -1;
  spec::Time period = 0;  ///< specification period pi_S
  std::vector<Instruction> code;
  /// Entry addresses: (relative tick, address into code), ascending by
  /// tick; the machine starts at blocks.front() at absolute time 0.
  std::vector<std::pair<spec::Time, int>> blocks;

  /// Human-readable listing (names resolved against the specification).
  [[nodiscard]] std::string disassemble(
      const spec::Specification& spec) const;
};

/// Options for code generation.
struct CodegenOptions {
  /// Host that owns the actuator drivers (call actuate instructions).
  arch::HostId io_host = 0;
  /// Actuator communicators by name; empty = infer output communicators.
  std::vector<std::string> actuator_comms;
};

/// Generates the E-code program of `host` for an implementation.
[[nodiscard]] Result<EcodeProgram> generate_ecode(
    const impl::Implementation& impl, arch::HostId host,
    const CodegenOptions& options = {});

}  // namespace lrt::ecode

#endif  // LRT_ECODE_PROGRAM_H_
