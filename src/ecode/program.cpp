#include "ecode/program.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/math_util.h"

namespace lrt::ecode {

std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kCallSensor: return "call sensor";
    case Opcode::kCallVote: return "call vote";
    case Opcode::kCallActuate: return "call actuate";
    case Opcode::kCallLatch: return "call latch";
    case Opcode::kRelease: return "release";
    case Opcode::kFuture: return "future";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string EcodeProgram::disassemble(const spec::Specification& spec) const {
  std::string out =
      "; e-code for host " + std::to_string(host) + ", period " +
      std::to_string(period) + "\n";
  std::map<int, spec::Time> block_of;
  for (const auto& [tick, address] : blocks) block_of[address] = tick;
  for (std::size_t addr = 0; addr < code.size(); ++addr) {
    const auto block = block_of.find(static_cast<int>(addr));
    if (block != block_of.end()) {
      out += "@" + std::to_string(block->second) + ":\n";
    }
    const Instruction& inst = code[addr];
    out += "  " + std::string(to_string(inst.op));
    switch (inst.op) {
      case Opcode::kCallSensor:
      case Opcode::kCallVote:
      case Opcode::kCallActuate:
        out += "(" + spec.communicator(inst.arg0).name + ")";
        break;
      case Opcode::kCallLatch:
        out += "(" + spec.task(inst.arg0).name + ", in " +
               std::to_string(inst.arg1) + ")";
        break;
      case Opcode::kRelease:
        out += "(" + spec.task(inst.arg0).name + ")";
        break;
      case Opcode::kFuture:
        out += "(+" + std::to_string(inst.arg0) + ", @" +
               std::to_string(inst.arg1) + ")";
        break;
      case Opcode::kHalt:
        break;
    }
    out += "\n";
  }
  return out;
}

Result<EcodeProgram> generate_ecode(const impl::Implementation& impl,
                                    arch::HostId host,
                                    const CodegenOptions& options) {
  const spec::Specification& spec = impl.specification();
  if (host < 0 ||
      host >= static_cast<arch::HostId>(impl.architecture().hosts().size())) {
    return OutOfRangeError("generate_ecode: host " + std::to_string(host) +
                           " out of range");
  }

  std::vector<bool> is_actuator(spec.communicators().size(), false);
  if (options.actuator_comms.empty()) {
    for (spec::CommId c = 0;
         c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
      is_actuator[static_cast<std::size_t>(c)] =
          spec.is_output_communicator(c) && !spec.is_input_communicator(c);
    }
  } else {
    for (const std::string& name : options.actuator_comms) {
      const auto comm = spec.find_communicator(name);
      if (!comm.has_value()) {
        return NotFoundError("generate_ecode: unknown actuator "
                             "communicator '" + name + "'");
      }
      is_actuator[static_cast<std::size_t>(*comm)] = true;
    }
  }

  // Collect, per relative tick, the work of each phase. Every host votes on
  // every communicator (all communicators are replicated on all hosts);
  // only the hosts in I(t) latch and release t.
  struct TickWork {
    std::vector<spec::CommId> sensor_updates;
    /// (communicator, first absolute instant the write is due) — the vote
    /// driver is a no-op before that instant (nothing has been released).
    std::vector<std::pair<spec::CommId, spec::Time>> votes;
    std::vector<spec::CommId> actuations;
    std::vector<std::pair<spec::TaskId, int>> latches;
    std::vector<spec::TaskId> releases;
  };
  std::map<spec::Time, TickWork> ticks;
  const spec::Time period = spec.hyperperiod();

  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
    const spec::Communicator& comm = spec.communicator(c);
    if (spec.is_input_communicator(c) && !spec.readers_of(c).empty()) {
      for (spec::Time t = 0; t < period; t += comm.period) {
        ticks[t].sensor_updates.push_back(c);
      }
    }
    const auto writer = spec.writer_of(c);
    if (writer.has_value()) {
      for (const spec::PortRef& port : spec.task(*writer).outputs) {
        if (port.comm != c) continue;
        const spec::Time instant = comm.period * port.instance;
        ticks[instant % period].votes.emplace_back(c, instant);
      }
    }
    if (is_actuator[static_cast<std::size_t>(c)] && host == options.io_host) {
      for (spec::Time t = 0; t < period; t += comm.period) {
        ticks[t].actuations.push_back(c);
      }
    }
  }

  for (spec::TaskId t = 0; t < static_cast<spec::TaskId>(spec.tasks().size());
       ++t) {
    const auto& hosts = impl.hosts_for(t);
    if (std::find(hosts.begin(), hosts.end(), host) == hosts.end()) continue;
    const spec::Task& task = spec.task(t);
    for (int j = 0; j < static_cast<int>(task.inputs.size()); ++j) {
      const spec::PortRef& port = task.inputs[static_cast<std::size_t>(j)];
      const spec::Time instant =
          spec.communicator(port.comm).period * port.instance;
      ticks[instant].latches.emplace_back(t, j);
    }
    ticks[spec.read_time(t)].releases.push_back(t);
  }

  // Emit one reaction block per active tick, ordered: sensor/vote,
  // actuate, latch, release, future, halt.
  EcodeProgram program;
  program.host = host;
  program.period = period;
  std::vector<spec::Time> tick_times;
  for (const auto& [time, work] : ticks) {
    (void)work;
    tick_times.push_back(time);
  }
  if (tick_times.empty()) tick_times.push_back(0);

  std::vector<int> future_fixups;  // addresses of future instructions
  for (std::size_t k = 0; k < tick_times.size(); ++k) {
    const spec::Time now = tick_times[k];
    program.blocks.emplace_back(now, static_cast<int>(program.code.size()));
    const TickWork& work = ticks[now];
    for (const spec::CommId c : work.sensor_updates) {
      program.code.push_back({Opcode::kCallSensor, c, 0});
    }
    for (const auto& [c, instant] : work.votes) {
      program.code.push_back(
          {Opcode::kCallVote, c, static_cast<std::int32_t>(instant)});
    }
    for (const spec::CommId c : work.actuations) {
      program.code.push_back({Opcode::kCallActuate, c, 0});
    }
    for (const auto& [task, input] : work.latches) {
      program.code.push_back({Opcode::kCallLatch, task, input});
    }
    for (const spec::TaskId task : work.releases) {
      program.code.push_back({Opcode::kRelease, task, 0});
    }
    const spec::Time next =
        k + 1 < tick_times.size() ? tick_times[k + 1] : period + tick_times[0];
    future_fixups.push_back(static_cast<int>(program.code.size()));
    program.code.push_back(
        {Opcode::kFuture, static_cast<std::int32_t>(next - now), 0});
    program.code.push_back({Opcode::kHalt, 0, 0});
  }
  // Point each future at the following block (wrapping to block 0).
  for (std::size_t k = 0; k < future_fixups.size(); ++k) {
    const int target = static_cast<int>((k + 1) % program.blocks.size());
    program.code[static_cast<std::size_t>(future_fixups[k])].arg1 =
        program.blocks[static_cast<std::size_t>(target)].second;
  }
  return program;
}

}  // namespace lrt::ecode
