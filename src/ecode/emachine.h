// The E-machine: a virtual machine executing generated E-code on every
// host of an implementation, against a shared environment and atomic
// broadcast network. This is the "runtime infrastructure" half of the
// paper's prototype.
//
// Unlike sim::simulate — which interprets the specification directly — the
// E-machine runs only what the code generator emitted, so agreement between
// the two (tests/ecode_test.cpp) validates that the generated code encodes
// the LET/voting semantics correctly, the same way the paper validated its
// runtime on the 3TS rig.
#ifndef LRT_ECODE_EMACHINE_H_
#define LRT_ECODE_EMACHINE_H_

#include "ecode/program.h"
#include "sim/environment.h"
#include "sim/runtime.h"
#include "support/status.h"

namespace lrt::ecode {

/// Generates E-code for every host and executes it for
/// `options.periods` specification periods. Produces the same result type
/// as sim::simulate; faults, broadcast reliability, value recording, and
/// actuator bindings are honored identically.
[[nodiscard]] Result<sim::SimulationResult> run_emachine(
    const impl::Implementation& impl, sim::Environment& env,
    const sim::SimulationOptions& options, arch::HostId io_host = 0);

}  // namespace lrt::ecode

#endif  // LRT_ECODE_EMACHINE_H_
