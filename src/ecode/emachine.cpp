#include "ecode/emachine.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "support/math_util.h"
#include "support/rng.h"

namespace lrt::ecode {
namespace {

using arch::HostId;
using spec::CommId;
using spec::TaskId;
using spec::Time;
using spec::Value;

struct PendingWrite {
  CommId comm = -1;
  HostId source = -1;
  Value value;
};

class EMachineSystem {
 public:
  EMachineSystem(const impl::Implementation& impl, sim::Environment& env,
                 const sim::SimulationOptions& options, HostId io_host)
      : impl_(impl),
        spec_(impl.specification()),
        arch_(impl.architecture()),
        env_(env),
        options_(options),
        io_host_(io_host),
        rng_(options.faults.seed) {}

  Result<sim::SimulationResult> run() {
    const std::size_t num_hosts = arch_.hosts().size();
    const std::size_t num_comms = spec_.communicators().size();

    CodegenOptions codegen;
    codegen.io_host = io_host_;
    codegen.actuator_comms = options_.actuator_comms;
    for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
      LRT_ASSIGN_OR_RETURN(EcodeProgram program,
                           generate_ecode(impl_, h, codegen));
      programs_.push_back(std::move(program));
    }

    values_.assign(num_hosts, {});
    for (auto& host_values : values_) {
      for (const auto& comm : spec_.communicators()) {
        host_values.push_back(comm.init);
      }
    }
    latched_.assign(num_hosts, {});
    for (auto& host_latches : latched_) {
      for (const auto& task : spec_.tasks()) {
        host_latches.emplace_back(task.inputs.size(), Value::bottom());
      }
    }
    host_up_.assign(num_hosts, true);
    triggers_.clear();
    for (const EcodeProgram& program : programs_) {
      triggers_.push_back(program.blocks.empty()
                              ? Trigger{-1, -1}
                              : Trigger{program.blocks.front().first,
                                        program.blocks.front().second});
    }

    host_events_ = options_.faults.host_events;
    std::stable_sort(host_events_.begin(), host_events_.end(),
                     [](const sim::FaultPlan::HostEvent& a,
                        const sim::FaultPlan::HostEvent& b) {
                       return a.time < b.time;
                     });
    for (const auto& event : host_events_) {
      if (event.host < 0 || event.host >= static_cast<HostId>(num_hosts)) {
        return OutOfRangeError("host event references host " +
                               std::to_string(event.host));
      }
    }

    accumulators_.assign(num_comms, {});
    update_accums_.assign(num_comms, {});
    record_values_.assign(num_comms, false);
    for (const std::string& name : options_.record_values_for) {
      const auto comm = spec_.find_communicator(name);
      if (!comm.has_value()) {
        return NotFoundError("record_values_for references unknown "
                             "communicator '" + name + "'");
      }
      record_values_[static_cast<std::size_t>(*comm)] = true;
      result_.value_traces.emplace(name, std::vector<Value>{});
    }

    // The harmonic grid step, derived once at Build time.
    const Time step = spec_.base_period();
    const Time duration = spec_.hyperperiod() * options_.periods;

    for (Time now = 0; now < duration; now += step) {
      while (next_host_event_ < host_events_.size() &&
             host_events_[next_host_event_].time <= now) {
        const auto& event = host_events_[next_host_event_++];
        host_up_[static_cast<std::size_t>(event.host)] = event.up;
      }
      sensor_cache_.clear();
      for (HostId h = 0; h < static_cast<HostId>(num_hosts); ++h) {
        Trigger& trigger = triggers_[static_cast<std::size_t>(h)];
        if (trigger.time == now) execute_block(h, now, trigger);
      }
      sample(now);
      pending_.erase(now);
      env_.advance(now, step);
    }

    result_.periods = options_.periods;
    result_.ticks = duration;
    result_.comm_stats.resize(num_comms);
    for (std::size_t c = 0; c < num_comms; ++c) {
      sim::CommStats& stats = result_.comm_stats[c];
      stats.name = spec_.communicators()[c].name;
      stats.samples = accumulators_[c].samples();
      stats.reliable_samples = accumulators_[c].reliable();
      stats.limit_average = accumulators_[c].average();
      stats.updates = update_accums_[c].samples();
      stats.reliable_updates = update_accums_[c].reliable();
    }
    return std::move(result_);
  }

 private:
  struct Trigger {
    Time time = -1;
    int address = -1;
  };

  /// The sensor value at the current instant, drawn once and shared by all
  /// hosts ("the environment writes identical values to all replications").
  const Value& sensor_value(CommId comm, Time now) {
    const auto it = sensor_cache_.find(comm);
    if (it != sensor_cache_.end()) return it->second;
    const arch::Sensor& sensor = arch_.sensor(impl_.sensor_for(comm));
    const bool failed = options_.faults.inject_sensor_faults &&
                        rng_.bernoulli(1.0 - sensor.reliability);
    Value value = failed ? Value::bottom()
                         : env_.read_sensor(
                               spec_.communicator(comm).name, now);
    if (update_counting_enabled_) {
      update_accums_[static_cast<std::size_t>(comm)].record(!failed);
    }
    return sensor_cache_.emplace(comm, std::move(value)).first->second;
  }

  void execute_block(HostId h, Time now, Trigger& trigger) {
    const EcodeProgram& program = programs_[static_cast<std::size_t>(h)];
    const auto hs = static_cast<std::size_t>(h);
    int pc = trigger.address;
    update_counting_enabled_ = h == 0;
    while (true) {
      const Instruction inst = program.code[static_cast<std::size_t>(pc)];
      ++pc;
      switch (inst.op) {
        case Opcode::kCallSensor: {
          values_[hs][static_cast<std::size_t>(inst.arg0)] =
              sensor_value(inst.arg0, now);
          break;
        }
        case Opcode::kCallVote: {
          if (now < inst.arg1) break;  // write not yet due
          std::vector<Value> candidates;
          const auto pending_it = pending_.find(now);
          if (pending_it != pending_.end()) {
            for (const PendingWrite& write : pending_it->second) {
              if (write.comm != inst.arg0) continue;
              if (!host_up_[static_cast<std::size_t>(write.source)]) continue;
              candidates.push_back(write.value);
            }
          }
          // Divergences are counted once per update (on host 0 only).
          const Value winner = sim::vote(
              candidates, options_.voting_policy,
              h == 0 ? &result_.vote_divergences : nullptr);
          values_[hs][static_cast<std::size_t>(inst.arg0)] = winner;
          if (h == 0) {
            ++result_.committed_updates;
            update_accums_[static_cast<std::size_t>(inst.arg0)].record(
                !winner.is_bottom());
          }
          break;
        }
        case Opcode::kCallActuate: {
          env_.write_actuator(spec_.communicator(inst.arg0).name, now,
                              values_[hs][static_cast<std::size_t>(inst.arg0)]);
          break;
        }
        case Opcode::kCallLatch: {
          const spec::Task& task = spec_.task(inst.arg0);
          const spec::PortRef& port =
              task.inputs[static_cast<std::size_t>(inst.arg1)];
          latched_[hs][static_cast<std::size_t>(inst.arg0)]
                  [static_cast<std::size_t>(inst.arg1)] =
                      values_[hs][static_cast<std::size_t>(port.comm)];
          break;
        }
        case Opcode::kRelease: {
          release_task(h, inst.arg0, now);
          break;
        }
        case Opcode::kFuture: {
          trigger.time = now + inst.arg0;
          trigger.address = inst.arg1;
          break;
        }
        case Opcode::kHalt:
          return;
      }
    }
  }

  void release_task(HostId h, TaskId t, Time now) {
    const auto hs = static_cast<std::size_t>(h);
    const spec::Task& task = spec_.task(t);
    ++result_.invocations;

    bool failed = !host_up_[hs];
    if (!failed && options_.faults.inject_invocation_faults) {
      // Transient faults are independent per attempt; re-executions retry
      // on the same host within the LET.
      failed = true;
      for (int attempt = 0; failed && attempt <= impl_.reexecutions(t);
           ++attempt) {
        failed = rng_.bernoulli(1.0 - arch_.host(h).reliability);
      }
    }

    std::vector<Value> inputs;
    if (!failed) {
      inputs = latched_[hs][static_cast<std::size_t>(t)];
      std::size_t unreliable = 0;
      for (std::size_t j = 0; j < inputs.size(); ++j) {
        if (!inputs[j].is_bottom()) continue;
        ++unreliable;
        if (task.model != spec::FailureModel::kSeries) {
          inputs[j] = task.defaults[j];
        }
      }
      switch (task.model) {
        case spec::FailureModel::kSeries:
          failed = unreliable > 0;
          break;
        case spec::FailureModel::kParallel:
          failed = unreliable == inputs.size();
          break;
        case spec::FailureModel::kIndependent:
          break;
      }
    }
    if (failed) {
      ++result_.invocation_failures;
      return;
    }

    std::vector<Value> outputs;
    if (task.function) {
      outputs = task.function(inputs);
      assert(outputs.size() == task.outputs.size());
    } else {
      for (const spec::PortRef& port : task.outputs) {
        outputs.push_back(zero_value(spec_.communicator(port.comm).type));
      }
    }

    if (options_.broadcast_reliability < 1.0 &&
        !rng_.bernoulli(options_.broadcast_reliability)) {
      ++result_.invocation_failures;
      return;
    }
    const Time period_start = now - now % spec_.hyperperiod();
    for (std::size_t k = 0; k < task.outputs.size(); ++k) {
      const spec::PortRef& port = task.outputs[k];
      const Time commit =
          period_start + spec_.communicator(port.comm).period * port.instance;
      pending_[commit].push_back({port.comm, h, outputs[k]});
    }
  }

  void sample(Time now) {
    for (CommId c = 0; c < static_cast<CommId>(spec_.communicators().size());
         ++c) {
      if (now % spec_.communicator(c).period != 0) continue;
      const Value& value = values_[0][static_cast<std::size_t>(c)];
      accumulators_[static_cast<std::size_t>(c)].record(!value.is_bottom());
      if (record_values_[static_cast<std::size_t>(c)]) {
        result_.value_traces[spec_.communicator(c).name].push_back(value);
      }
      for (std::size_t h = 1; h < values_.size(); ++h) {
        if (!(values_[h][static_cast<std::size_t>(c)] == value)) {
          ++result_.vote_divergences;
        }
      }
    }
  }

  const impl::Implementation& impl_;
  const spec::Specification& spec_;
  const arch::Architecture& arch_;
  sim::Environment& env_;
  const sim::SimulationOptions& options_;
  HostId io_host_;
  Xoshiro256 rng_;

  std::vector<EcodeProgram> programs_;
  std::vector<Trigger> triggers_;
  std::vector<std::vector<Value>> values_;
  std::vector<std::vector<std::vector<Value>>> latched_;
  std::vector<bool> host_up_;
  std::vector<sim::FaultPlan::HostEvent> host_events_;
  std::size_t next_host_event_ = 0;
  std::map<Time, std::vector<PendingWrite>> pending_;
  std::map<CommId, Value> sensor_cache_;
  bool update_counting_enabled_ = false;

  sim::SimulationResult result_;
  std::vector<sim::ReliabilityAccumulator> accumulators_;
  std::vector<sim::ReliabilityAccumulator> update_accums_;
  std::vector<bool> record_values_;
};

}  // namespace

Result<sim::SimulationResult> run_emachine(
    const impl::Implementation& impl, sim::Environment& env,
    const sim::SimulationOptions& options, arch::HostId io_host) {
  if (options.periods <= 0) {
    return InvalidArgumentError("emachine needs a positive period count");
  }
  if (!is_probability(options.broadcast_reliability) ||
      options.broadcast_reliability <= 0.0) {
    return InvalidArgumentError("broadcast reliability must be in (0, 1]");
  }
  EMachineSystem machine(impl, env, options, io_host);
  return machine.run();
}

}  // namespace lrt::ecode
