// Canonical JSON codec for the implementation config vocabulary (lrtd
// wire schema, DESIGN.md §5k). to_json fixes the field order and sorts
// the map-like fields — task mappings by task name, hosts within a
// mapping and sensor bindings by name — so two configs that Build into
// the same implementation serialize to the same bytes. from_json
// accepts exactly what to_json emits, gated by `"schema": 1`.
#ifndef LRT_IMPL_IMPL_JSON_H_
#define LRT_IMPL_IMPL_JSON_H_

#include <string>
#include <string_view>

#include "impl/implementation.h"
#include "support/json.h"
#include "support/status.h"

namespace lrt::impl {

/// Canonical document: {"schema": 1, "name", "task_mappings": [...
/// sorted by task], "sensor_bindings": [... sorted by communicator]}.
[[nodiscard]] std::string to_json(const ImplementationConfig& config);
/// Same document written into an enclosing writer (for frame payloads).
void write_json(const ImplementationConfig& config, JsonWriter& json);

[[nodiscard]] Result<ImplementationConfig> implementation_config_from_json(
    const JsonValue& document);
[[nodiscard]] Result<ImplementationConfig> implementation_config_from_json(
    std::string_view text);

}  // namespace lrt::impl

#endif  // LRT_IMPL_IMPL_JSON_H_
