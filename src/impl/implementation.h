// The implementation I : tset -> 2^hset \ {} of paper Section 2: the
// replication mapping of tasks to hosts, plus the binding of input
// communicators to the sensors that update them.
//
// Replication semantics (paper): if task t maps to multiple hosts, each
// host runs a local copy (t, h); every communicator is replicated on every
// host; completed replications broadcast their outputs and each host votes
// before committing the communicator update.
#ifndef LRT_IMPL_IMPLEMENTATION_H_
#define LRT_IMPL_IMPLEMENTATION_H_

#include <string>
#include <vector>

#include "arch/architecture.h"
#include "spec/specification.h"
#include "support/status.h"

namespace lrt::impl {

using arch::HostId;
using arch::SensorId;

/// Builder-side description of an implementation, by name.
struct ImplementationConfig {
  std::string name = "impl";

  struct TaskMapping {
    std::string task;
    std::vector<std::string> hosts;  ///< nonempty; duplicates rejected
    /// Time redundancy (extension; cf. Izosimov et al., the paper's
    /// related work): number of re-execution attempts after a failed
    /// invocation on the same host, within the task's LET. 0 = the
    /// paper's model. Raises the per-host invocation reliability to
    /// 1 - (1 - hrel)^(1 + reexecutions) and multiplies the WCET demand
    /// by (1 + reexecutions).
    int reexecutions = 0;
    /// Checkpointing (extension; Izosimov et al. [10]): the task saves
    /// `checkpoints` intermediate states, so a re-execution repeats only
    /// the current segment (ceil(wcet / (checkpoints + 1)) ticks) instead
    /// of the whole task. Reliability is unchanged; the *reserved* WCET
    /// demand shrinks to
    ///   wcet + checkpoints * checkpoint_overhead
    ///        + reexecutions * (segment + checkpoint_overhead).
    /// Only meaningful with reexecutions > 0.
    int checkpoints = 0;
    /// Ticks to save one checkpoint.
    spec::Time checkpoint_overhead = 0;
  };
  std::vector<TaskMapping> task_mappings;

  struct SensorBinding {
    std::string communicator;  ///< must be an input communicator
    std::string sensor;
  };
  std::vector<SensorBinding> sensor_bindings;
};

/// An immutable, validated implementation for a (specification,
/// architecture) pair. The referenced Specification and Architecture must
/// outlive the Implementation.
class Implementation {
 public:
  /// Validates:
  ///  * every specification task is mapped to a nonempty, duplicate-free
  ///    set of existing hosts;
  ///  * every input communicator is bound to exactly one existing sensor;
  ///  * no non-input communicator carries a sensor binding.
  static Result<Implementation> Build(const spec::Specification& spec,
                                      const arch::Architecture& arch,
                                      ImplementationConfig config);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const spec::Specification& specification() const {
    return *spec_;
  }
  [[nodiscard]] const arch::Architecture& architecture() const {
    return *arch_;
  }

  /// I(t): hosts executing replications of task `id`, in ascending order.
  [[nodiscard]] const std::vector<HostId>& hosts_for(spec::TaskId id) const {
    return task_hosts_[static_cast<std::size_t>(id)];
  }

  /// Re-execution attempts after a failure, per replication of task `id`.
  [[nodiscard]] int reexecutions(spec::TaskId id) const {
    return reexecutions_[static_cast<std::size_t>(id)];
  }

  /// Checkpoints saved per invocation of task `id`.
  [[nodiscard]] int checkpoints(spec::TaskId id) const {
    return checkpoints_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] spec::Time checkpoint_overhead(spec::TaskId id) const {
    return checkpoint_overheads_[static_cast<std::size_t>(id)];
  }

  /// The WCET demand one invocation of task `id` must reserve, given a
  /// base WCET: full execution, checkpoint saves, and worst-case recovery
  /// of one segment per re-execution attempt.
  [[nodiscard]] spec::Time reserved_demand(spec::TaskId id,
                                           spec::Time wcet) const;

  /// The sensor updating input communicator `id`.
  /// Precondition: spec.is_input_communicator(id).
  [[nodiscard]] SensorId sensor_for(spec::CommId id) const;

  /// Total number of task replications (sum over tasks of |I(t)|) — the
  /// paper's space-redundancy cost measure used by the synthesizer.
  [[nodiscard]] std::size_t replication_count() const;

  /// Reconstructs a by-name config equivalent to this implementation
  /// (mappings in TaskId order, bindings in CommId order), the starting
  /// point for derived mappings such as the adaptive layer's repairs.
  /// Build(spec, arch, to_config()) round-trips.
  [[nodiscard]] ImplementationConfig to_config() const;

 private:
  Implementation() = default;

  std::string name_;
  const spec::Specification* spec_ = nullptr;
  const arch::Architecture* arch_ = nullptr;
  std::vector<std::vector<HostId>> task_hosts_;   // by TaskId
  std::vector<int> reexecutions_;                 // by TaskId
  std::vector<int> checkpoints_;                  // by TaskId
  std::vector<spec::Time> checkpoint_overheads_;  // by TaskId
  std::vector<SensorId> sensor_bindings_;         // by CommId; -1 = none
};

}  // namespace lrt::impl

#endif  // LRT_IMPL_IMPLEMENTATION_H_
