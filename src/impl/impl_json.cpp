#include "impl/impl_json.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "spec/spec_json.h"

namespace lrt::impl {

void write_json(const ImplementationConfig& config, JsonWriter& json) {
  std::vector<const ImplementationConfig::TaskMapping*> mappings;
  mappings.reserve(config.task_mappings.size());
  for (const auto& mapping : config.task_mappings)
    mappings.push_back(&mapping);
  std::sort(mappings.begin(), mappings.end(),
            [](const auto* a, const auto* b) { return a->task < b->task; });

  std::vector<const ImplementationConfig::SensorBinding*> bindings;
  bindings.reserve(config.sensor_bindings.size());
  for (const auto& binding : config.sensor_bindings)
    bindings.push_back(&binding);
  std::sort(bindings.begin(), bindings.end(), [](const auto* a,
                                                 const auto* b) {
    return a->communicator < b->communicator;
  });

  json.begin_object();
  json.key("schema");
  json.value(spec::kConfigSchemaVersion);
  json.key("name");
  json.value(config.name);
  json.key("task_mappings");
  json.begin_array();
  for (const ImplementationConfig::TaskMapping* mapping : mappings) {
    json.begin_object();
    json.key("task");
    json.value(mapping->task);
    json.key("hosts");
    json.begin_array();
    std::vector<std::string> hosts = mapping->hosts;
    std::sort(hosts.begin(), hosts.end());
    for (const std::string& host : hosts) json.value(host);
    json.end_array();
    json.key("reexecutions");
    json.value(mapping->reexecutions);
    json.key("checkpoints");
    json.value(mapping->checkpoints);
    json.key("checkpoint_overhead");
    json.value(mapping->checkpoint_overhead);
    json.end_object();
  }
  json.end_array();
  json.key("sensor_bindings");
  json.begin_array();
  for (const ImplementationConfig::SensorBinding* binding : bindings) {
    json.begin_object();
    json.key("communicator");
    json.value(binding->communicator);
    json.key("sensor");
    json.value(binding->sensor);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string to_json(const ImplementationConfig& config) {
  JsonWriter json;
  write_json(config, json);
  return std::move(json).str();
}

Result<ImplementationConfig> implementation_config_from_json(
    const JsonValue& document) {
  LRT_RETURN_IF_ERROR(
      json_check_schema(document, spec::kConfigSchemaVersion, "impl"));
  ImplementationConfig config;
  LRT_ASSIGN_OR_RETURN(config.name,
                       json_member_string(document, "name", "impl"));

  LRT_ASSIGN_OR_RETURN(const JsonValue* mappings,
                       json_member(document, "task_mappings", "impl"));
  if (!mappings->is_array()) {
    return InvalidArgumentError("impl.task_mappings must be an array");
  }
  for (std::size_t i = 0; i < mappings->array.size(); ++i) {
    const std::string path =
        "impl.task_mappings[" + std::to_string(i) + "]";
    const JsonValue& entry = mappings->array[i];
    ImplementationConfig::TaskMapping mapping;
    LRT_ASSIGN_OR_RETURN(mapping.task,
                         json_member_string(entry, "task", path));
    LRT_ASSIGN_OR_RETURN(const JsonValue* hosts,
                         json_member(entry, "hosts", path));
    if (!hosts->is_array()) {
      return InvalidArgumentError(path + ".hosts must be an array");
    }
    for (std::size_t h = 0; h < hosts->array.size(); ++h) {
      const JsonValue& host = hosts->array[h];
      if (!host.is_string()) {
        return InvalidArgumentError(path + ".hosts[" + std::to_string(h) +
                                    "] must be a string");
      }
      mapping.hosts.push_back(host.string);
    }
    LRT_ASSIGN_OR_RETURN(const std::int64_t reexecutions,
                         json_member_int(entry, "reexecutions", path));
    mapping.reexecutions = static_cast<int>(reexecutions);
    LRT_ASSIGN_OR_RETURN(const std::int64_t checkpoints,
                         json_member_int(entry, "checkpoints", path));
    mapping.checkpoints = static_cast<int>(checkpoints);
    LRT_ASSIGN_OR_RETURN(
        mapping.checkpoint_overhead,
        json_member_int(entry, "checkpoint_overhead", path));
    config.task_mappings.push_back(std::move(mapping));
  }

  LRT_ASSIGN_OR_RETURN(const JsonValue* bindings,
                       json_member(document, "sensor_bindings", "impl"));
  if (!bindings->is_array()) {
    return InvalidArgumentError("impl.sensor_bindings must be an array");
  }
  for (std::size_t i = 0; i < bindings->array.size(); ++i) {
    const std::string path =
        "impl.sensor_bindings[" + std::to_string(i) + "]";
    const JsonValue& entry = bindings->array[i];
    ImplementationConfig::SensorBinding binding;
    LRT_ASSIGN_OR_RETURN(binding.communicator,
                         json_member_string(entry, "communicator", path));
    LRT_ASSIGN_OR_RETURN(binding.sensor,
                         json_member_string(entry, "sensor", path));
    config.sensor_bindings.push_back(std::move(binding));
  }
  return config;
}

Result<ImplementationConfig> implementation_config_from_json(
    std::string_view text) {
  LRT_ASSIGN_OR_RETURN(const JsonValue document, parse_json(text));
  return implementation_config_from_json(document);
}

}  // namespace lrt::impl
