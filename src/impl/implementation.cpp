#include "impl/implementation.h"

#include <algorithm>
#include <cassert>

namespace lrt::impl {

Result<Implementation> Implementation::Build(const spec::Specification& spec,
                                             const arch::Architecture& arch,
                                             ImplementationConfig config) {
  Implementation impl;
  impl.name_ = std::move(config.name);
  impl.spec_ = &spec;
  impl.arch_ = &arch;
  impl.task_hosts_.assign(spec.tasks().size(), {});
  impl.reexecutions_.assign(spec.tasks().size(), 0);
  impl.checkpoints_.assign(spec.tasks().size(), 0);
  impl.checkpoint_overheads_.assign(spec.tasks().size(), 0);
  impl.sensor_bindings_.assign(spec.communicators().size(), -1);

  for (const auto& mapping : config.task_mappings) {
    const auto task = spec.find_task(mapping.task);
    if (!task.has_value()) {
      return NotFoundError("mapping references unknown task '" +
                           mapping.task + "'");
    }
    auto& hosts = impl.task_hosts_[static_cast<std::size_t>(*task)];
    if (!hosts.empty()) {
      return AlreadyExistsError("task '" + mapping.task + "' mapped twice");
    }
    if (mapping.hosts.empty()) {
      return InvalidArgumentError("task '" + mapping.task +
                                  "' mapped to an empty host set");
    }
    if (mapping.reexecutions < 0) {
      return InvalidArgumentError("task '" + mapping.task +
                                  "' has a negative re-execution count");
    }
    if (mapping.checkpoints < 0 || mapping.checkpoint_overhead < 0) {
      return InvalidArgumentError("task '" + mapping.task +
                                  "' has negative checkpoint settings");
    }
    if (mapping.checkpoints > 0 && mapping.reexecutions == 0) {
      return InvalidArgumentError(
          "task '" + mapping.task +
          "' declares checkpoints without re-executions (checkpointing "
          "only shortens recovery)");
    }
    impl.reexecutions_[static_cast<std::size_t>(*task)] =
        mapping.reexecutions;
    impl.checkpoints_[static_cast<std::size_t>(*task)] = mapping.checkpoints;
    impl.checkpoint_overheads_[static_cast<std::size_t>(*task)] =
        mapping.checkpoint_overhead;
    for (const std::string& host_name : mapping.hosts) {
      const auto host = arch.find_host(host_name);
      if (!host.has_value()) {
        return NotFoundError("task '" + mapping.task +
                             "' mapped to unknown host '" + host_name + "'");
      }
      hosts.push_back(*host);
    }
    std::sort(hosts.begin(), hosts.end());
    if (std::adjacent_find(hosts.begin(), hosts.end()) != hosts.end()) {
      return InvalidArgumentError("task '" + mapping.task +
                                  "' mapped to a host more than once");
    }
  }

  for (spec::TaskId t = 0; t < static_cast<spec::TaskId>(spec.tasks().size());
       ++t) {
    if (impl.task_hosts_[static_cast<std::size_t>(t)].empty()) {
      return InvalidArgumentError("task '" + spec.task(t).name +
                                  "' is not mapped to any host");
    }
  }

  for (const auto& binding : config.sensor_bindings) {
    const auto comm = spec.find_communicator(binding.communicator);
    if (!comm.has_value()) {
      return NotFoundError("sensor binding references unknown communicator '" +
                           binding.communicator + "'");
    }
    if (!spec.is_input_communicator(*comm)) {
      return InvalidArgumentError(
          "communicator '" + binding.communicator +
          "' is written by task '" +
          spec.task(*spec.writer_of(*comm)).name +
          "' and cannot also be updated by a sensor");
    }
    const auto sensor = arch.find_sensor(binding.sensor);
    if (!sensor.has_value()) {
      return NotFoundError("sensor binding references unknown sensor '" +
                           binding.sensor + "'");
    }
    auto& slot = impl.sensor_bindings_[static_cast<std::size_t>(*comm)];
    if (slot != -1) {
      return AlreadyExistsError("communicator '" + binding.communicator +
                                "' bound to two sensors");
    }
    slot = *sensor;
  }

  for (spec::CommId c = 0;
       c < static_cast<spec::CommId>(spec.communicators().size()); ++c) {
    if (spec.is_input_communicator(c) && spec.readers_of(c).size() > 0 &&
        impl.sensor_bindings_[static_cast<std::size_t>(c)] == -1) {
      return InvalidArgumentError("input communicator '" +
                                  spec.communicator(c).name +
                                  "' has no sensor binding");
    }
  }

  return impl;
}

spec::Time Implementation::reserved_demand(spec::TaskId id,
                                           spec::Time wcet) const {
  const auto ts = static_cast<std::size_t>(id);
  const int k = checkpoints_[ts];
  const int retries = reexecutions_[ts];
  const spec::Time overhead = checkpoint_overheads_[ts];
  // Segment length: ceil(wcet / (k + 1)).
  const spec::Time segment = (wcet + k) / (k + 1);
  return wcet + k * overhead + retries * (segment + (k > 0 ? overhead : 0));
}

SensorId Implementation::sensor_for(spec::CommId id) const {
  const SensorId sensor = sensor_bindings_[static_cast<std::size_t>(id)];
  assert(sensor != -1 && "sensor_for() on a communicator with no binding");
  return sensor;
}

std::size_t Implementation::replication_count() const {
  std::size_t count = 0;
  for (const auto& hosts : task_hosts_) count += hosts.size();
  return count;
}

ImplementationConfig Implementation::to_config() const {
  ImplementationConfig config;
  config.name = name_;
  for (std::size_t t = 0; t < task_hosts_.size(); ++t) {
    ImplementationConfig::TaskMapping mapping;
    mapping.task = spec_->task(static_cast<spec::TaskId>(t)).name;
    for (const HostId h : task_hosts_[t]) {
      mapping.hosts.push_back(arch_->host(h).name);
    }
    mapping.reexecutions = reexecutions_[t];
    mapping.checkpoints = checkpoints_[t];
    mapping.checkpoint_overhead = checkpoint_overheads_[t];
    config.task_mappings.push_back(std::move(mapping));
  }
  for (std::size_t c = 0; c < sensor_bindings_.size(); ++c) {
    if (sensor_bindings_[c] == -1) continue;
    config.sensor_bindings.push_back(
        {spec_->communicator(static_cast<spec::CommId>(c)).name,
         arch_->sensor(sensor_bindings_[c]).name});
  }
  return config;
}

}  // namespace lrt::impl
