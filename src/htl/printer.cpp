#include "htl/printer.h"

#include "support/strings.h"

namespace lrt::htl {
namespace {

std::string literal(const spec::Value& value, spec::ValueType type) {
  if (type == spec::ValueType::kReal) {
    // Guarantee the token re-lexes as a float.
    const std::string text = format_double(value.as_real());
    return text.find_first_of(".eE") == std::string::npos ? text + ".0"
                                                          : text;
  }
  return value.to_string();
}

std::string default_literal(const spec::Value& value) {
  if (value.is_real()) return literal(value, spec::ValueType::kReal);
  return value.to_string();
}

std::string ports(const std::vector<PortAst>& list) {
  std::string out = "(";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ", ";
    out += list[i].communicator + "[" + std::to_string(list[i].instance) +
           "]";
  }
  return out + ")";
}

}  // namespace

std::string to_source(const ProgramAst& program) {
  std::string out = "program " + program.name;
  if (program.refines.has_value()) out += " refines " + *program.refines;
  out += " {\n";

  for (const CommunicatorAst& comm : program.communicators) {
    out += "  communicator " + comm.name + " : " +
           std::string(spec::to_string(comm.type)) + " period " +
           std::to_string(comm.period) + " init " +
           literal(comm.init, comm.type) + " lrc " + format_double(comm.lrc) +
           ";\n";
  }

  for (const ModuleAst& module : program.modules) {
    out += "  module " + module.name + " {\n";
    for (const TaskAst& task : module.tasks) {
      out += "    task " + task.name + " input " + ports(task.inputs) +
             " output " + ports(task.outputs) + " model " +
             std::string(spec::to_string(task.model));
      if (!task.defaults.empty()) {
        out += " defaults (";
        for (std::size_t i = 0; i < task.defaults.size(); ++i) {
          if (i > 0) out += ", ";
          out += default_literal(task.defaults[i]);
        }
        out += ")";
      }
      out += ";\n";
    }
    for (const ModeAst& mode : module.modes) {
      out += "    mode " + mode.name + " period " +
             std::to_string(mode.period) + " {\n";
      for (const std::string& task : mode.invokes) {
        out += "      invoke " + task + ";\n";
      }
      for (const SwitchAst& sw : mode.switches) {
        out += "      switch (" + sw.condition + ") to " + sw.target + ";\n";
      }
      out += "    }\n";
    }
    if (!module.start_mode.empty()) {
      out += "    start " + module.start_mode + ";\n";
    }
    out += "  }\n";
  }

  if (program.architecture.has_value()) {
    const ArchitectureAst& arch = *program.architecture;
    out += "  architecture {\n";
    for (const HostAst& host : arch.hosts) {
      out += "    host " + host.name + " reliability " +
             format_double(host.reliability) + ";\n";
    }
    for (const SensorAst& sensor : arch.sensors) {
      out += "    sensor " + sensor.name + " reliability " +
             format_double(sensor.reliability) + ";\n";
    }
    for (const MetricAst& metric : arch.metrics) {
      out += "    metrics ";
      if (metric.task.empty()) {
        out += "default";
      } else {
        out += "task " + metric.task + " on " + metric.host;
      }
      out += " wcet " + std::to_string(metric.wcet) + " wctt " +
             std::to_string(metric.wctt) + ";\n";
    }
    out += "  }\n";
  }

  if (program.mapping.has_value()) {
    out += "  mapping {\n";
    for (const MapAst& map : program.mapping->maps) {
      out += "    map " + map.task + " to " + join(map.hosts, ", ");
      if (map.retries > 0) out += " retries " + std::to_string(map.retries);
      if (map.checkpoints > 0) {
        out += " checkpoints " + std::to_string(map.checkpoints);
        if (map.checkpoint_overhead > 0) {
          out += " overhead " + std::to_string(map.checkpoint_overhead);
        }
      }
      out += ";\n";
    }
    for (const BindAst& bind : program.mapping->binds) {
      out += "    bind " + bind.communicator + " to " + bind.sensor + ";\n";
    }
    out += "  }\n";
  }

  for (const RefineAst& refinement : program.refinements) {
    out += "  refine task " + refinement.local_task + " to " +
           refinement.parent_task + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace lrt::htl
