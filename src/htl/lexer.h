// Lexer for the HTL subset (see src/htl/ast.h for the grammar).
#ifndef LRT_HTL_LEXER_H_
#define LRT_HTL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace lrt::htl {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kFloat,
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kColon,     // :
  kSemicolon, // ;
  kComma,     // ,
  kEndOfFile,
};

std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;      ///< identifier spelling or number literal
  int line = 0;          ///< 1-based
  int column = 0;        ///< 1-based

  /// "line L:C" prefix for diagnostics.
  [[nodiscard]] std::string location() const;
};

/// Tokenizes `source`. Supports //-line and /* block */ comments. The final
/// token is always kEndOfFile. Fails with kParseError on stray characters
/// or unterminated comments, reporting line:column.
[[nodiscard]] Result<std::vector<Token>> lex(std::string_view source);

}  // namespace lrt::htl

#endif  // LRT_HTL_LEXER_H_
