#include "htl/lexer.h"

#include <cctype>

namespace lrt::htl {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

std::string Token::location() const {
  return "line " + std::to_string(line) + ":" + std::to_string(column);
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      LRT_RETURN_IF_ERROR(skip_trivia());
      Token token;
      token.line = line_;
      token.column = column_;
      if (at_end()) {
        token.kind = TokenKind::kEndOfFile;
        tokens.push_back(std::move(token));
        return tokens;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        token.kind = TokenKind::kIdentifier;
        while (!at_end() &&
               (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
                peek() == '_')) {
          token.text += advance();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                 ((c == '-' || c == '+') && next_is_digit())) {
        LRT_RETURN_IF_ERROR(lex_number(token));
      } else {
        switch (c) {
          case '{': token.kind = TokenKind::kLBrace; break;
          case '}': token.kind = TokenKind::kRBrace; break;
          case '(': token.kind = TokenKind::kLParen; break;
          case ')': token.kind = TokenKind::kRParen; break;
          case '[': token.kind = TokenKind::kLBracket; break;
          case ']': token.kind = TokenKind::kRBracket; break;
          case ':': token.kind = TokenKind::kColon; break;
          case ';': token.kind = TokenKind::kSemicolon; break;
          case ',': token.kind = TokenKind::kComma; break;
          default:
            return ParseError(token.location() +
                              ": unexpected character '" +
                              std::string(1, c) + "'");
        }
        token.text = advance();
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek() const { return source_[pos_]; }
  [[nodiscard]] bool next_is_digit() const {
    return pos_ + 1 < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_ + 1])) != 0;
  }

  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == '/' && pos_ + 1 < source_.size()) {
        if (source_[pos_ + 1] == '/') {
          while (!at_end() && peek() != '\n') advance();
        } else if (source_[pos_ + 1] == '*') {
          const int start_line = line_;
          advance();
          advance();
          bool closed = false;
          while (!at_end()) {
            if (peek() == '*' && pos_ + 1 < source_.size() &&
                source_[pos_ + 1] == '/') {
              advance();
              advance();
              closed = true;
              break;
            }
            advance();
          }
          if (!closed) {
            return ParseError("line " + std::to_string(start_line) +
                              ": unterminated block comment");
          }
        } else {
          return Status::Ok();  // a bare '/' is a stray character
        }
      } else {
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  Status lex_number(Token& token) {
    token.kind = TokenKind::kInteger;
    if (peek() == '-' || peek() == '+') token.text += advance();
    while (!at_end() &&
           std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      token.text += advance();
    }
    if (!at_end() && peek() == '.') {
      token.kind = TokenKind::kFloat;
      token.text += advance();
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return ParseError(token.location() +
                          ": digits required after decimal point");
      }
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        token.text += advance();
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      token.kind = TokenKind::kFloat;
      token.text += advance();
      if (!at_end() && (peek() == '-' || peek() == '+')) {
        token.text += advance();
      }
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return ParseError(token.location() + ": malformed exponent");
      }
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        token.text += advance();
      }
    }
    return Status::Ok();
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace lrt::htl
