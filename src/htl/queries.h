// AST queries shared by the analysis layers (lint's mode-product
// supergraph in particular): by-name lookups over a parsed program and
// the switch-guard information the cross-mode rules reason about —
// which communicator guards an edge, what its declared init value is,
// and which tasks anywhere in the program write it.
//
// All helpers are read-only views into the ProgramAst; returned pointers
// stay valid as long as the program does.
#ifndef LRT_HTL_QUERIES_H_
#define LRT_HTL_QUERIES_H_

#include <string_view>
#include <vector>

#include "htl/ast.h"

namespace lrt::htl {

/// The module / communicator / task / mode with the given name, or null.
[[nodiscard]] const ModuleAst* find_module(const ProgramAst& program,
                                           std::string_view name);
[[nodiscard]] const CommunicatorAst* find_communicator(
    const ProgramAst& program, std::string_view name);
[[nodiscard]] const TaskAst* find_task(const ModuleAst& module,
                                       std::string_view name);
[[nodiscard]] const ModeAst* find_mode(const ModuleAst& module,
                                       std::string_view name);

/// The module's effective start mode: the declared one, else the first
/// declared mode. Null for a module without modes.
[[nodiscard]] const ModeAst* start_mode(const ModuleAst& module);

/// Every (module, task) pair in the program writing `communicator`
/// through an output port. Modules and tasks appear in declaration
/// order; a task is listed once even when it writes several instances.
struct WriterRef {
  const ModuleAst* module = nullptr;
  const TaskAst* task = nullptr;
  const PortAst* port = nullptr;  ///< the first matching output port
};
[[nodiscard]] std::vector<WriterRef> writers_of(const ProgramAst& program,
                                                std::string_view communicator);

/// Static guard information for one switch edge: the condition
/// communicator's declaration (null when undeclared — the flattener
/// rejects that separately) and whether the guard could *ever* be true:
/// its declared init is boolean true, or some task anywhere in the
/// program writes it. A guard that fails both can never fire, so the
/// edge is statically dead.
struct GuardInfo {
  const CommunicatorAst* condition = nullptr;
  bool init_true = false;
  bool ever_written = false;
  [[nodiscard]] bool statically_enabled() const {
    return condition == nullptr || init_true || ever_written;
  }
};
[[nodiscard]] GuardInfo guard_info(const ProgramAst& program,
                                   const SwitchAst& edge);

}  // namespace lrt::htl

#endif  // LRT_HTL_QUERIES_H_
