// Pretty-printer: ProgramAst back to HTL source. parse(print(ast)) is the
// identity on the AST (round-trip property, tested in htl_printer_test).
#ifndef LRT_HTL_PRINTER_H_
#define LRT_HTL_PRINTER_H_

#include <string>

#include "htl/ast.h"

namespace lrt::htl {

/// Canonical source text for a program AST.
[[nodiscard]] std::string to_source(const ProgramAst& program);

}  // namespace lrt::htl

#endif  // LRT_HTL_PRINTER_H_
