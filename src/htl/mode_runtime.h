// Mode-switching execution of HTL programs (paper Section 4: "In the
// example, there are mode switches between tasks, but the switch is always
// to tasks with identical reliability constraints, and the reliability
// analysis of Section 3 applies").
//
// Semantics implemented: each module is a mode automaton. At every period
// boundary the active mode's switch declarations are evaluated in order
// against the committed communicator values (a switch fires when its bool
// condition communicator holds a reliable `true`); the first firing switch
// selects the module's next mode. The period then executes the task set of
// the current mode selection under the LET/voting semantics of
// sim::simulate, with communicator values persisting across switches.
//
// Per-mode-selection systems are compiled lazily and cached; the analysis
// obligation — every selection individually reliable and schedulable — is
// the per-mode analysis the paper appeals to, available via
// `analyze_all_selections`.
#ifndef LRT_HTL_MODE_RUNTIME_H_
#define LRT_HTL_MODE_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "htl/compiler.h"
#include "sim/environment.h"
#include "sim/runtime.h"

namespace lrt::htl {

struct ModeSwitchingResult {
  /// Reliability statistics per communicator (as sim::SimulationResult).
  sim::SimulationResult simulation;
  /// Periods spent in each mode selection, keyed by
  /// "module1=modeA,module2=modeB" (modules in declaration order).
  std::map<std::string, std::int64_t> mode_occupancy;
  /// Number of period boundaries at which some module changed mode.
  std::int64_t switches_taken = 0;
};

/// Executes `source` for options.periods specification periods, switching
/// modes per the program's switch declarations. Fails on compile errors in
/// any reachable mode selection, or when a switch condition communicator
/// is not bool.
[[nodiscard]] Result<ModeSwitchingResult> simulate_with_switching(
    std::string_view source, const FunctionRegistry& functions,
    sim::Environment& env, const sim::SimulationOptions& options);

/// Verdict of the per-mode analysis over every mode selection of the
/// program: first = selection key, second = reliable && schedulable.
[[nodiscard]] Result<std::vector<std::pair<std::string, bool>>>
analyze_all_selections(std::string_view source);

}  // namespace lrt::htl

#endif  // LRT_HTL_MODE_RUNTIME_H_
