#include "htl/queries.h"

namespace lrt::htl {

const ModuleAst* find_module(const ProgramAst& program,
                             std::string_view name) {
  for (const ModuleAst& module : program.modules) {
    if (module.name == name) return &module;
  }
  return nullptr;
}

const CommunicatorAst* find_communicator(const ProgramAst& program,
                                         std::string_view name) {
  for (const CommunicatorAst& comm : program.communicators) {
    if (comm.name == name) return &comm;
  }
  return nullptr;
}

const TaskAst* find_task(const ModuleAst& module, std::string_view name) {
  for (const TaskAst& task : module.tasks) {
    if (task.name == name) return &task;
  }
  return nullptr;
}

const ModeAst* find_mode(const ModuleAst& module, std::string_view name) {
  for (const ModeAst& mode : module.modes) {
    if (mode.name == name) return &mode;
  }
  return nullptr;
}

const ModeAst* start_mode(const ModuleAst& module) {
  if (module.modes.empty()) return nullptr;
  if (!module.start_mode.empty()) {
    if (const ModeAst* declared = find_mode(module, module.start_mode)) {
      return declared;
    }
  }
  return &module.modes.front();
}

std::vector<WriterRef> writers_of(const ProgramAst& program,
                                  std::string_view communicator) {
  std::vector<WriterRef> writers;
  for (const ModuleAst& module : program.modules) {
    for (const TaskAst& task : module.tasks) {
      for (const PortAst& port : task.outputs) {
        if (port.communicator != communicator) continue;
        writers.push_back({&module, &task, &port});
        break;
      }
    }
  }
  return writers;
}

GuardInfo guard_info(const ProgramAst& program, const SwitchAst& edge) {
  GuardInfo info;
  info.condition = find_communicator(program, edge.condition);
  if (info.condition != nullptr) {
    info.init_true =
        info.condition->init.is_bool() && info.condition->init.as_bool();
  }
  info.ever_written = !writers_of(program, edge.condition).empty();
  return info;
}

}  // namespace lrt::htl
