// The HTL compiler: semantic analysis and flattening of a parsed program
// into the analysis models (Specification / Architecture / Implementation),
// mirroring the paper's "logical-reliability-enhanced prototype of the
// compiler ... for HTL".
//
// Subset semantics: one mode is selected per module (the declared start
// mode unless overridden); the selected modes' task invocations flatten
// into one task-set specification. Mode switches are parsed and checked
// (bool condition communicator, target mode exists) and the analysis is
// per-mode — the paper's example "switches ... always to tasks with
// identical reliability constraints", so per-mode analysis covers the
// published semantics. All selected mode periods must agree with the
// flattened specification period.
#ifndef LRT_HTL_COMPILER_H_
#define LRT_HTL_COMPILER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "htl/ast.h"
#include "impl/implementation.h"
#include "refine/refinement.h"
#include "support/status.h"

namespace lrt::htl {

/// Binds task names to executable C++ functions. Tasks without a binding
/// compile fine and produce type-correct zero outputs when simulated.
using FunctionRegistry =
    std::unordered_map<std::string, spec::TaskFunction>;

/// Overrides the mode chosen per module; unlisted modules use their start
/// mode.
struct ModeSelection {
  std::map<std::string, std::string> mode_by_module;
};

/// The result of compiling one HTL program.
struct CompiledSystem {
  ProgramAst ast;
  std::unique_ptr<spec::Specification> specification;
  /// Null when the program has no architecture block.
  std::unique_ptr<arch::Architecture> architecture;
  /// Null when the program has no mapping block (requires architecture).
  std::unique_ptr<impl::Implementation> implementation;
};

/// Parses, checks, and flattens `source`.
[[nodiscard]] Result<CompiledSystem> compile(
    std::string_view source, const FunctionRegistry& functions = {},
    const ModeSelection& selection = {});

/// Flattens an already-parsed program into a specification (semantic
/// checks included).
[[nodiscard]] Result<spec::Specification> flatten(
    const ProgramAst& program, const FunctionRegistry& functions = {},
    const ModeSelection& selection = {});

/// Extracts the kappa map declared by a refining program's `refine task`
/// declarations. Fails if the program declares no `refines` parent.
[[nodiscard]] Result<refine::RefinementMap> refinement_map(
    const ProgramAst& program);

/// Every mode selection of the program (the Cartesian product of each
/// module's modes), for exhaustive per-mode analysis: the paper applies
/// its reliability analysis per mode ("the switch is always to tasks with
/// identical reliability constraints, and the reliability analysis ...
/// applies"). Fails when the product exceeds `limit` or a module declares
/// no modes.
[[nodiscard]] Result<std::vector<ModeSelection>> enumerate_mode_selections(
    const ProgramAst& program, std::size_t limit = 4096);

}  // namespace lrt::htl

#endif  // LRT_HTL_COMPILER_H_
