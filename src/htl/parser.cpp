#include "htl/parser.h"

#include <charconv>

#include "htl/lexer.h"

namespace lrt::htl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ProgramAst> run() {
    ProgramAst program;
    LRT_RETURN_IF_ERROR(expect_keyword("program"));
    LRT_ASSIGN_OR_RETURN(program.name, expect_identifier("program name"));
    if (at_keyword("refines")) {
      advance();
      LRT_ASSIGN_OR_RETURN(auto parent, expect_identifier("parent program"));
      program.refines = std::move(parent);
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      if (at_keyword("communicator")) {
        LRT_ASSIGN_OR_RETURN(auto comm, parse_communicator());
        program.communicators.push_back(std::move(comm));
      } else if (at_keyword("module")) {
        LRT_ASSIGN_OR_RETURN(auto module, parse_module());
        program.modules.push_back(std::move(module));
      } else if (at_keyword("architecture")) {
        if (program.architecture.has_value()) {
          return error("duplicate architecture block");
        }
        LRT_ASSIGN_OR_RETURN(auto architecture, parse_architecture());
        program.architecture = std::move(architecture);
      } else if (at_keyword("mapping")) {
        if (program.mapping.has_value()) {
          return error("duplicate mapping block");
        }
        LRT_ASSIGN_OR_RETURN(auto mapping, parse_mapping());
        program.mapping = std::move(mapping);
      } else if (at_keyword("refine")) {
        LRT_ASSIGN_OR_RETURN(auto refinement, parse_refine());
        program.refinements.push_back(std::move(refinement));
      } else {
        return error("expected a declaration (communicator, module, "
                     "architecture, mapping, or refine)");
      }
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kEndOfFile));
    return program;
  }

 private:
  // --- token plumbing ---
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  [[nodiscard]] bool at_keyword(std::string_view word) const {
    return peek().kind == TokenKind::kIdentifier && peek().text == word;
  }
  const Token& advance() { return tokens_[pos_++]; }

  Status error(const std::string& message) const {
    return ParseError(peek().location() + ": " + message + " (found " +
                      std::string(to_string(peek().kind)) +
                      (peek().text.empty() ? "" : " '" + peek().text + "'") +
                      ")");
  }

  Status expect(TokenKind kind) {
    if (!at(kind)) {
      return error("expected " + std::string(to_string(kind)));
    }
    advance();
    return Status::Ok();
  }

  Status expect_keyword(std::string_view word) {
    if (!at_keyword(word)) {
      return error("expected '" + std::string(word) + "'");
    }
    advance();
    return Status::Ok();
  }

  Result<std::string> expect_identifier(std::string_view what) {
    if (!at(TokenKind::kIdentifier)) {
      return error("expected " + std::string(what));
    }
    return advance().text;
  }

  Result<std::int64_t> expect_integer(std::string_view what) {
    if (!at(TokenKind::kInteger)) {
      return error("expected integer " + std::string(what));
    }
    const Token& token = advance();
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        token.text.data(), token.text.data() + token.text.size(), value);
    if (ec != std::errc() || ptr != token.text.data() + token.text.size()) {
      return ParseError(token.location() + ": integer '" + token.text +
                        "' out of range");
    }
    return value;
  }

  Result<double> expect_number(std::string_view what) {
    if (!at(TokenKind::kInteger) && !at(TokenKind::kFloat)) {
      return error("expected number " + std::string(what));
    }
    const Token& token = advance();
    return std::stod(token.text);
  }

  /// Literal of a declared type: real accepts any number, int needs an
  /// integer token, bool needs true/false.
  Result<spec::Value> expect_literal(spec::ValueType type) {
    switch (type) {
      case spec::ValueType::kReal: {
        LRT_ASSIGN_OR_RETURN(const double value, expect_number("literal"));
        return spec::Value::real(value);
      }
      case spec::ValueType::kInt: {
        LRT_ASSIGN_OR_RETURN(const std::int64_t value,
                             expect_integer("literal"));
        return spec::Value::integer(value);
      }
      case spec::ValueType::kBool: {
        if (at_keyword("true")) {
          advance();
          return spec::Value::boolean(true);
        }
        if (at_keyword("false")) {
          advance();
          return spec::Value::boolean(false);
        }
        return error("expected 'true' or 'false'");
      }
    }
    return error("unknown literal type");
  }

  // --- grammar productions ---

  Result<CommunicatorAst> parse_communicator() {
    CommunicatorAst comm;
    comm.line = peek().line;
    comm.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("communicator"));
    LRT_ASSIGN_OR_RETURN(comm.name, expect_identifier("communicator name"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kColon));
    if (at_keyword("real")) {
      comm.type = spec::ValueType::kReal;
    } else if (at_keyword("int")) {
      comm.type = spec::ValueType::kInt;
    } else if (at_keyword("bool")) {
      comm.type = spec::ValueType::kBool;
    } else {
      return error("expected type ('real', 'int', or 'bool')");
    }
    advance();
    LRT_RETURN_IF_ERROR(expect_keyword("period"));
    LRT_ASSIGN_OR_RETURN(comm.period, expect_integer("period"));
    LRT_RETURN_IF_ERROR(expect_keyword("init"));
    LRT_ASSIGN_OR_RETURN(comm.init, expect_literal(comm.type));
    LRT_RETURN_IF_ERROR(expect_keyword("lrc"));
    LRT_ASSIGN_OR_RETURN(comm.lrc, expect_number("LRC"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    return comm;
  }

  Result<std::vector<PortAst>> parse_port_list() {
    std::vector<PortAst> ports;
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLParen));
    while (true) {
      PortAst port;
      port.line = peek().line;
      port.column = peek().column;
      LRT_ASSIGN_OR_RETURN(port.communicator,
                           expect_identifier("communicator in port"));
      LRT_RETURN_IF_ERROR(expect(TokenKind::kLBracket));
      LRT_ASSIGN_OR_RETURN(port.instance, expect_integer("instance"));
      LRT_RETURN_IF_ERROR(expect(TokenKind::kRBracket));
      ports.push_back(std::move(port));
      if (at(TokenKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    return ports;
  }

  Result<TaskAst> parse_task() {
    TaskAst task;
    task.line = peek().line;
    task.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("task"));
    LRT_ASSIGN_OR_RETURN(task.name, expect_identifier("task name"));
    LRT_RETURN_IF_ERROR(expect_keyword("input"));
    LRT_ASSIGN_OR_RETURN(task.inputs, parse_port_list());
    LRT_RETURN_IF_ERROR(expect_keyword("output"));
    LRT_ASSIGN_OR_RETURN(task.outputs, parse_port_list());
    if (at_keyword("model")) {
      advance();
      if (at_keyword("series")) {
        task.model = spec::FailureModel::kSeries;
      } else if (at_keyword("parallel")) {
        task.model = spec::FailureModel::kParallel;
      } else if (at_keyword("independent")) {
        task.model = spec::FailureModel::kIndependent;
      } else {
        return error(
            "expected 'series', 'parallel', or 'independent' after 'model'");
      }
      advance();
    }
    if (at_keyword("defaults")) {
      advance();
      LRT_RETURN_IF_ERROR(expect(TokenKind::kLParen));
      while (true) {
        // Defaults are parsed as reals/ints/bools liberally; the compiler
        // re-checks conformance against the communicator types.
        if (at_keyword("true") || at_keyword("false")) {
          task.defaults.push_back(spec::Value::boolean(at_keyword("true")));
          advance();
        } else if (at(TokenKind::kFloat)) {
          task.defaults.push_back(spec::Value::real(std::stod(advance().text)));
        } else if (at(TokenKind::kInteger)) {
          LRT_ASSIGN_OR_RETURN(const std::int64_t value,
                               expect_integer("default"));
          task.defaults.push_back(spec::Value::integer(value));
        } else {
          return error("expected a default literal");
        }
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
      LRT_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    return task;
  }

  Result<ModeAst> parse_mode() {
    ModeAst mode;
    mode.line = peek().line;
    mode.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("mode"));
    LRT_ASSIGN_OR_RETURN(mode.name, expect_identifier("mode name"));
    LRT_RETURN_IF_ERROR(expect_keyword("period"));
    LRT_ASSIGN_OR_RETURN(mode.period, expect_integer("mode period"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      if (at_keyword("invoke")) {
        advance();
        LRT_ASSIGN_OR_RETURN(auto task, expect_identifier("task to invoke"));
        mode.invokes.push_back(std::move(task));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
      } else if (at_keyword("switch")) {
        SwitchAst switch_ast;
        switch_ast.line = peek().line;
        switch_ast.column = peek().column;
        advance();
        LRT_RETURN_IF_ERROR(expect(TokenKind::kLParen));
        LRT_ASSIGN_OR_RETURN(switch_ast.condition,
                             expect_identifier("switch condition"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kRParen));
        LRT_RETURN_IF_ERROR(expect_keyword("to"));
        LRT_ASSIGN_OR_RETURN(switch_ast.target,
                             expect_identifier("target mode"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        mode.switches.push_back(std::move(switch_ast));
      } else {
        return error("expected 'invoke' or 'switch' in mode body");
      }
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return mode;
  }

  Result<ModuleAst> parse_module() {
    ModuleAst module;
    module.line = peek().line;
    module.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("module"));
    LRT_ASSIGN_OR_RETURN(module.name, expect_identifier("module name"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      if (at_keyword("task")) {
        LRT_ASSIGN_OR_RETURN(auto task, parse_task());
        module.tasks.push_back(std::move(task));
      } else if (at_keyword("mode")) {
        LRT_ASSIGN_OR_RETURN(auto mode, parse_mode());
        module.modes.push_back(std::move(mode));
      } else if (at_keyword("start")) {
        advance();
        if (!module.start_mode.empty()) {
          return error("duplicate start declaration");
        }
        LRT_ASSIGN_OR_RETURN(module.start_mode,
                             expect_identifier("start mode"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
      } else {
        return error("expected 'task', 'mode', or 'start' in module body");
      }
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return module;
  }

  Result<ArchitectureAst> parse_architecture() {
    ArchitectureAst architecture;
    architecture.line = peek().line;
    architecture.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("architecture"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      if (at_keyword("host")) {
        HostAst host;
        host.line = peek().line;
        host.column = peek().column;
        advance();
        LRT_ASSIGN_OR_RETURN(host.name, expect_identifier("host name"));
        LRT_RETURN_IF_ERROR(expect_keyword("reliability"));
        LRT_ASSIGN_OR_RETURN(host.reliability,
                             expect_number("host reliability"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        architecture.hosts.push_back(std::move(host));
      } else if (at_keyword("sensor")) {
        SensorAst sensor;
        sensor.line = peek().line;
        sensor.column = peek().column;
        advance();
        LRT_ASSIGN_OR_RETURN(sensor.name, expect_identifier("sensor name"));
        LRT_RETURN_IF_ERROR(expect_keyword("reliability"));
        LRT_ASSIGN_OR_RETURN(sensor.reliability,
                             expect_number("sensor reliability"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        architecture.sensors.push_back(std::move(sensor));
      } else if (at_keyword("metrics")) {
        MetricAst metric;
        metric.line = peek().line;
        metric.column = peek().column;
        advance();
        if (at_keyword("default")) {
          advance();
        } else {
          LRT_RETURN_IF_ERROR(expect_keyword("task"));
          LRT_ASSIGN_OR_RETURN(metric.task, expect_identifier("task name"));
          LRT_RETURN_IF_ERROR(expect_keyword("on"));
          LRT_ASSIGN_OR_RETURN(metric.host, expect_identifier("host name"));
        }
        LRT_RETURN_IF_ERROR(expect_keyword("wcet"));
        LRT_ASSIGN_OR_RETURN(metric.wcet, expect_integer("WCET"));
        LRT_RETURN_IF_ERROR(expect_keyword("wctt"));
        LRT_ASSIGN_OR_RETURN(metric.wctt, expect_integer("WCTT"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        architecture.metrics.push_back(std::move(metric));
      } else {
        return error("expected 'host', 'sensor', or 'metrics'");
      }
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return architecture;
  }

  Result<MappingAst> parse_mapping() {
    MappingAst mapping;
    mapping.line = peek().line;
    mapping.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("mapping"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      if (at_keyword("map")) {
        MapAst map;
        map.line = peek().line;
        map.column = peek().column;
        advance();
        LRT_ASSIGN_OR_RETURN(map.task, expect_identifier("task name"));
        LRT_RETURN_IF_ERROR(expect_keyword("to"));
        while (true) {
          LRT_ASSIGN_OR_RETURN(auto host, expect_identifier("host name"));
          map.hosts.push_back(std::move(host));
          if (at(TokenKind::kComma)) {
            advance();
            continue;
          }
          break;
        }
        if (at_keyword("retries")) {
          advance();
          LRT_ASSIGN_OR_RETURN(const std::int64_t retries,
                               expect_integer("retry count"));
          map.retries = static_cast<int>(retries);
        }
        if (at_keyword("checkpoints")) {
          advance();
          LRT_ASSIGN_OR_RETURN(const std::int64_t checkpoints,
                               expect_integer("checkpoint count"));
          map.checkpoints = static_cast<int>(checkpoints);
          if (at_keyword("overhead")) {
            advance();
            LRT_ASSIGN_OR_RETURN(map.checkpoint_overhead,
                                 expect_integer("checkpoint overhead"));
          }
        }
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        mapping.maps.push_back(std::move(map));
      } else if (at_keyword("bind")) {
        BindAst bind;
        bind.line = peek().line;
        bind.column = peek().column;
        advance();
        LRT_ASSIGN_OR_RETURN(bind.communicator,
                             expect_identifier("communicator name"));
        LRT_RETURN_IF_ERROR(expect_keyword("to"));
        LRT_ASSIGN_OR_RETURN(bind.sensor, expect_identifier("sensor name"));
        LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
        mapping.binds.push_back(std::move(bind));
      } else {
        return error("expected 'map' or 'bind'");
      }
    }
    LRT_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    return mapping;
  }

  Result<RefineAst> parse_refine() {
    RefineAst refinement;
    refinement.line = peek().line;
    refinement.column = peek().column;
    LRT_RETURN_IF_ERROR(expect_keyword("refine"));
    LRT_RETURN_IF_ERROR(expect_keyword("task"));
    LRT_ASSIGN_OR_RETURN(refinement.local_task,
                         expect_identifier("local task"));
    LRT_RETURN_IF_ERROR(expect_keyword("to"));
    LRT_ASSIGN_OR_RETURN(refinement.parent_task,
                         expect_identifier("parent task"));
    LRT_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    return refinement;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ProgramAst> parse(std::string_view source) {
  LRT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lex(source));
  return Parser(std::move(tokens)).run();
}

}  // namespace lrt::htl
