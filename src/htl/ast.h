// Abstract syntax for the HTL subset.
//
// The paper's prototype extends the Hierarchical Timing Language compiler
// with logical reliability constraints; this frontend implements a faithful
// subset of HTL (EMSOFT'06) plus the reliability extension:
//
//   program      := 'program' IDENT ('refines' IDENT)? '{' item* '}'
//   item         := communicator | module | architecture | mapping
//                 | refinedecl
//   communicator := 'communicator' IDENT ':' type 'period' INT
//                   'init' literal 'lrc' NUMBER ';'
//   type         := 'real' | 'int' | 'bool'
//   module       := 'module' IDENT '{' (taskdecl | modedecl | startdecl)* '}'
//   taskdecl     := 'task' IDENT 'input' portlist 'output' portlist
//                   ('model' ('series'|'parallel'|'independent'))?
//                   ('defaults' '(' literal (',' literal)* ')')? ';'
//   portlist     := '(' port (',' port)* ')'
//   port         := IDENT '[' INT ']'          -- communicator[instance]
//   modedecl     := 'mode' IDENT 'period' INT '{' (invoke | switchdecl)* '}'
//   invoke       := 'invoke' IDENT ';'
//   switchdecl   := 'switch' '(' IDENT ')' 'to' IDENT ';'
//   startdecl    := 'start' IDENT ';'
//   architecture := 'architecture' '{' (hostdecl | sensordecl
//                 | metricdecl)* '}'
//   hostdecl     := 'host' IDENT 'reliability' NUMBER ';'
//   sensordecl   := 'sensor' IDENT 'reliability' NUMBER ';'
//   metricdecl   := 'metrics' 'default' 'wcet' INT 'wctt' INT ';'
//                 | 'metrics' 'task' IDENT 'on' IDENT 'wcet' INT
//                   'wctt' INT ';'
//   mapping      := 'mapping' '{' (mapdecl | binddecl)* '}'
//   mapdecl      := 'map' IDENT 'to' IDENT (',' IDENT)*
//                   ('retries' INT)? ('checkpoints' INT
//                   ('overhead' INT)?)? ';'
//   binddecl     := 'bind' IDENT 'to' IDENT ';'
//   refinedecl   := 'refine' 'task' IDENT 'to' IDENT ';'
//
// Keywords are contextual identifiers ('program', 'task', ...), so they
// remain usable as names where unambiguous.
#ifndef LRT_HTL_AST_H_
#define LRT_HTL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spec/declarations.h"
#include "spec/value.h"

namespace lrt::htl {

struct PortAst {
  std::string communicator;
  std::int64_t instance = 0;
  int line = 0;
  int column = 0;
};

struct CommunicatorAst {
  std::string name;
  spec::ValueType type = spec::ValueType::kReal;
  spec::Value init;
  std::int64_t period = 0;
  double lrc = 1.0;
  int line = 0;
  int column = 0;
};

struct TaskAst {
  std::string name;
  std::vector<PortAst> inputs;
  std::vector<PortAst> outputs;
  spec::FailureModel model = spec::FailureModel::kSeries;
  std::vector<spec::Value> defaults;
  int line = 0;
  int column = 0;
};

struct SwitchAst {
  std::string condition;  ///< a bool communicator
  std::string target;     ///< a mode in the same module
  int line = 0;
  int column = 0;
};

struct ModeAst {
  std::string name;
  std::int64_t period = 0;
  std::vector<std::string> invokes;  ///< task names declared in the module
  std::vector<SwitchAst> switches;
  int line = 0;
  int column = 0;
};

struct ModuleAst {
  std::string name;
  std::vector<TaskAst> tasks;
  std::vector<ModeAst> modes;
  std::string start_mode;
  int line = 0;
  int column = 0;
};

struct HostAst {
  std::string name;
  double reliability = 1.0;
  int line = 0;
  int column = 0;
};

struct SensorAst {
  std::string name;
  double reliability = 1.0;
  int line = 0;
  int column = 0;
};

struct MetricAst {
  /// Empty task/host => the default entry.
  std::string task;
  std::string host;
  std::int64_t wcet = 1;
  std::int64_t wctt = 1;
  int line = 0;
  int column = 0;
};

struct ArchitectureAst {
  std::vector<HostAst> hosts;
  std::vector<SensorAst> sensors;
  std::vector<MetricAst> metrics;
  int line = 0;
  int column = 0;
};

struct MapAst {
  std::string task;
  std::vector<std::string> hosts;
  /// Re-execution attempts after a failure (time redundancy extension).
  int retries = 0;
  /// Checkpoints per invocation (shrinks per-retry recovery).
  int checkpoints = 0;
  std::int64_t checkpoint_overhead = 0;
  int line = 0;
  int column = 0;
};

struct BindAst {
  std::string communicator;
  std::string sensor;
  int line = 0;
  int column = 0;
};

struct MappingAst {
  std::vector<MapAst> maps;
  std::vector<BindAst> binds;
  int line = 0;
  int column = 0;
};

struct RefineAst {
  std::string local_task;   ///< task in this (refining) program
  std::string parent_task;  ///< task in the refined program
  int line = 0;
  int column = 0;
};

struct ProgramAst {
  std::string name;
  /// Name of the program this one refines, if any.
  std::optional<std::string> refines;
  std::vector<CommunicatorAst> communicators;
  std::vector<ModuleAst> modules;
  std::optional<ArchitectureAst> architecture;
  std::optional<MappingAst> mapping;
  std::vector<RefineAst> refinements;
};

}  // namespace lrt::htl

#endif  // LRT_HTL_AST_H_
