// Recursive-descent parser for the HTL subset grammar (src/htl/ast.h).
#ifndef LRT_HTL_PARSER_H_
#define LRT_HTL_PARSER_H_

#include <string_view>

#include "htl/ast.h"
#include "support/status.h"

namespace lrt::htl {

/// Lexes and parses one program. Diagnostics carry line:column positions.
[[nodiscard]] Result<ProgramAst> parse(std::string_view source);

}  // namespace lrt::htl

#endif  // LRT_HTL_PARSER_H_
