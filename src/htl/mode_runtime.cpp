#include "htl/mode_runtime.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "htl/parser.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/voting.h"
#include "support/rng.h"

namespace lrt::htl {
namespace {

using spec::CommId;
using spec::TaskId;
using spec::Time;
using spec::Value;

/// Canonical key of a mode selection: "m1=a,m2=b" in module order.
std::string selection_key(const ProgramAst& program,
                          const std::map<std::string, std::string>& modes) {
  std::string key;
  for (const ModuleAst& module : program.modules) {
    if (!key.empty()) key += ",";
    key += module.name + "=" + modes.at(module.name);
  }
  return key;
}

/// The mode-switching interpreter. Unlike sim::simulate it keeps a single
/// (consensus) copy of every communicator — the per-host replication
/// fidelity is already covered by the lower-level runtimes — and re-binds
/// the task set whenever a switch fires.
class ModeRuntime {
 public:
  ModeRuntime(const ProgramAst& program, std::string_view source,
              const FunctionRegistry& functions,
              sim::Environment& env, const sim::SimulationOptions& options)
      : program_(program),
        source_(source),
        functions_(functions),
        env_(env),
        options_(options),
        rng_(options.faults.seed) {}

  Result<ModeSwitchingResult> run() {
    // Start modes per module.
    for (const ModuleAst& module : program_.modules) {
      current_mode_[module.name] = module.start_mode.empty()
                                       ? module.modes.front().name
                                       : module.start_mode;
    }
    LRT_ASSIGN_OR_RETURN(const CompiledSystem* system, active_system());

    const spec::Specification& spec0 = *system->specification;
    const std::size_t num_comms = spec0.communicators().size();
    hyperperiod_ = spec0.hyperperiod();
    values_.reserve(num_comms);
    for (const auto& comm : spec0.communicators()) {
      values_.push_back(comm.init);
    }
    accumulators_.assign(num_comms, {});
    update_accums_.assign(num_comms, {});
    record_values_.assign(num_comms, false);
    for (const std::string& name : options_.record_values_for) {
      const auto comm = spec0.find_communicator(name);
      if (!comm.has_value()) {
        return NotFoundError("record_values_for references unknown "
                             "communicator '" + name + "'");
      }
      record_values_[static_cast<std::size_t>(*comm)] = true;
      result_.simulation.value_traces.emplace(name, std::vector<Value>{});
    }
    is_actuator_.assign(num_comms, false);
    for (const std::string& name : options_.actuator_comms) {
      const auto comm = spec0.find_communicator(name);
      if (!comm.has_value()) {
        return NotFoundError("actuator_comms references unknown "
                             "communicator '" + name + "'");
      }
      is_actuator_[static_cast<std::size_t>(*comm)] = true;
    }

    // The harmonic grid step, derived once at Build time.
    const Time step = spec0.base_period();

    host_up_.assign(system->architecture->hosts().size(), true);
    host_events_ = options_.faults.host_events;
    std::stable_sort(host_events_.begin(), host_events_.end(),
                     [](const sim::FaultPlan::HostEvent& a,
                        const sim::FaultPlan::HostEvent& b) {
                       return a.time < b.time;
                     });

    const Time duration = hyperperiod_ * options_.periods;
    for (Time now = 0; now < duration; now += step) {
      while (next_host_event_ < host_events_.size() &&
             host_events_[next_host_event_].time <= now) {
        const auto& event = host_events_[next_host_event_++];
        if (event.host < 0 ||
            event.host >= static_cast<arch::HostId>(host_up_.size())) {
          return OutOfRangeError("host event references host " +
                                 std::to_string(event.host));
        }
        host_up_[static_cast<std::size_t>(event.host)] = event.up;
      }

      commit_writes(now);
      if (now % hyperperiod_ == 0) {
        LRT_RETURN_IF_ERROR(evaluate_switches(now));
        LRT_ASSIGN_OR_RETURN(system, active_system());
        ++result_.mode_occupancy[selection_key(program_, current_mode_)];
        latched_.assign(system->specification->tasks().size(), {});
        for (TaskId t = 0;
             t < static_cast<TaskId>(system->specification->tasks().size());
             ++t) {
          latched_[static_cast<std::size_t>(t)].assign(
              system->specification->task(t).inputs.size(), Value::bottom());
        }
      }
      update_sensors(*system, now);
      record_and_actuate(*system, now);
      latch(*system, now);
      execute(*system, now);
      env_.advance(now, step);
    }

    result_.simulation.periods = options_.periods;
    result_.simulation.ticks = duration;
    result_.simulation.comm_stats.resize(num_comms);
    for (std::size_t c = 0; c < num_comms; ++c) {
      sim::CommStats& stats = result_.simulation.comm_stats[c];
      stats.name = spec0.communicators()[c].name;
      stats.samples = accumulators_[c].samples();
      stats.reliable_samples = accumulators_[c].reliable();
      stats.limit_average = accumulators_[c].average();
      stats.updates = update_accums_[c].samples();
      stats.reliable_updates = update_accums_[c].reliable();
    }
    return std::move(result_);
  }

 private:
  /// Compiles (and caches) the system for the current mode selection.
  Result<const CompiledSystem*> active_system() {
    const std::string key = selection_key(program_, current_mode_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second.get();
    ModeSelection selection;
    selection.mode_by_module = current_mode_;
    LRT_ASSIGN_OR_RETURN(CompiledSystem compiled,
                         compile(source_, functions_, selection));
    if (compiled.implementation == nullptr) {
      return FailedPreconditionError(
          "mode-switching execution needs architecture and mapping blocks");
    }
    // All selections must agree on the communicator list (guaranteed by
    // flatten order) so ids remain stable across switches.
    if (!values_.empty() &&
        compiled.specification->communicators().size() != values_.size()) {
      return InternalError("mode selections disagree on communicators");
    }
    auto owned = std::make_unique<CompiledSystem>(std::move(compiled));
    const CompiledSystem* raw = owned.get();
    cache_.emplace(key, std::move(owned));
    return raw;
  }

  /// First firing switch (reliable `true` condition) per module.
  Status evaluate_switches(Time now) {
    if (now == 0) return Status::Ok();  // no boundary before the first period
    bool switched = false;
    for (const ModuleAst& module : program_.modules) {
      const auto mode_it = std::find_if(
          module.modes.begin(), module.modes.end(),
          [this, &module](const ModeAst& m) {
            return m.name == current_mode_.at(module.name);
          });
      assert(mode_it != module.modes.end());
      for (const SwitchAst& sw : mode_it->switches) {
        const auto comm = std::find_if(
            program_.communicators.begin(), program_.communicators.end(),
            [&sw](const CommunicatorAst& c) {
              return c.name == sw.condition;
            });
        const auto index = static_cast<std::size_t>(
            comm - program_.communicators.begin());
        const Value& value = values_[index];
        if (!value.is_bottom() && value.as_bool()) {
          if (current_mode_[module.name] != sw.target) {
            current_mode_[module.name] = sw.target;
            switched = true;
          }
          break;
        }
      }
    }
    if (switched) ++result_.switches_taken;
    return Status::Ok();
  }

  void commit_writes(Time now) {
    const auto due = scheduled_commits_.find(now);
    if (due == scheduled_commits_.end()) return;
    const auto arrived_it = pending_.find(now);
    static const std::vector<std::pair<CommId, Value>> kNone;
    const auto& arrived =
        arrived_it == pending_.end() ? kNone : arrived_it->second;
    for (const CommId c : due->second) {
      std::vector<Value> candidates;
      for (const auto& [comm, value] : arrived) {
        if (comm == c) candidates.push_back(value);
      }
      const Value winner = sim::vote(candidates, options_.voting_policy,
                                     &result_.simulation.vote_divergences);
      values_[static_cast<std::size_t>(c)] = winner;
      ++result_.simulation.committed_updates;
      update_accums_[static_cast<std::size_t>(c)].record(!winner.is_bottom());
    }
    scheduled_commits_.erase(due);
    pending_.erase(now);
  }

  void update_sensors(const CompiledSystem& system, Time now) {
    const spec::Specification& spec = *system.specification;
    for (CommId c = 0; c < static_cast<CommId>(values_.size()); ++c) {
      if (now % spec.communicator(c).period != 0) continue;
      if (!spec.is_input_communicator(c) || spec.readers_of(c).empty()) {
        continue;
      }
      const arch::Sensor& sensor = system.architecture->sensor(
          system.implementation->sensor_for(c));
      const bool failed = options_.faults.inject_sensor_faults &&
                          rng_.bernoulli(1.0 - sensor.reliability);
      values_[static_cast<std::size_t>(c)] =
          failed ? Value::bottom()
                 : env_.read_sensor(spec.communicator(c).name, now);
      update_accums_[static_cast<std::size_t>(c)].record(!failed);
    }
  }

  void record_and_actuate(const CompiledSystem& system, Time now) {
    const spec::Specification& spec = *system.specification;
    for (CommId c = 0; c < static_cast<CommId>(values_.size()); ++c) {
      if (now % spec.communicator(c).period != 0) continue;
      const Value& value = values_[static_cast<std::size_t>(c)];
      accumulators_[static_cast<std::size_t>(c)].record(!value.is_bottom());
      if (record_values_[static_cast<std::size_t>(c)]) {
        result_.simulation.value_traces[spec.communicator(c).name].push_back(
            value);
      }
      if (is_actuator_[static_cast<std::size_t>(c)]) {
        env_.write_actuator(spec.communicator(c).name, now, value);
      }
    }
  }

  void latch(const CompiledSystem& system, Time now) {
    const spec::Specification& spec = *system.specification;
    const Time rel = now % hyperperiod_;
    for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
      const spec::Task& task = spec.task(t);
      for (std::size_t j = 0; j < task.inputs.size(); ++j) {
        const spec::PortRef& port = task.inputs[j];
        if (spec.communicator(port.comm).period * port.instance != rel) {
          continue;
        }
        latched_[static_cast<std::size_t>(t)][j] =
            values_[static_cast<std::size_t>(port.comm)];
      }
    }
  }

  void execute(const CompiledSystem& system, Time now) {
    const spec::Specification& spec = *system.specification;
    const impl::Implementation& impl = *system.implementation;
    const Time rel = now % hyperperiod_;
    const Time period_start = now - rel;
    for (TaskId t = 0; t < static_cast<TaskId>(spec.tasks().size()); ++t) {
      if (spec.read_time(t) != rel) continue;
      const spec::Task& task = spec.task(t);
      // Register the expected commits: the update is due whether or not
      // any replication survives.
      for (const spec::PortRef& port : task.outputs) {
        scheduled_commits_[period_start +
                           spec.communicator(port.comm).period *
                               port.instance]
            .insert(port.comm);
      }

      for (const arch::HostId h : impl.hosts_for(t)) {
        ++result_.simulation.invocations;
        if (!host_up_[static_cast<std::size_t>(h)]) {
          ++result_.simulation.invocation_failures;
          continue;
        }
        std::vector<Value> inputs = latched_[static_cast<std::size_t>(t)];
        std::size_t unreliable = 0;
        for (std::size_t j = 0; j < inputs.size(); ++j) {
          if (!inputs[j].is_bottom()) continue;
          ++unreliable;
          if (task.model != spec::FailureModel::kSeries) {
            inputs[j] = task.defaults[j];
          }
        }
        const bool inputs_bad =
            (task.model == spec::FailureModel::kSeries && unreliable > 0) ||
            (task.model == spec::FailureModel::kParallel &&
             unreliable == inputs.size());
        bool failed = inputs_bad;
        if (!failed && options_.faults.inject_invocation_faults) {
          const double hrel =
              system.architecture->host(h).reliability;
          failed = true;
          for (int attempt = 0; failed && attempt <= impl.reexecutions(t);
               ++attempt) {
            failed = rng_.bernoulli(1.0 - hrel);
          }
        }
        if (failed) {
          ++result_.simulation.invocation_failures;
          continue;
        }
        std::vector<Value> outputs;
        if (task.function) {
          outputs = task.function(inputs);
        } else {
          for (const spec::PortRef& port : task.outputs) {
            outputs.push_back(
                spec::zero_value(spec.communicator(port.comm).type));
          }
        }
        if (options_.broadcast_reliability < 1.0 &&
            !rng_.bernoulli(options_.broadcast_reliability)) {
          ++result_.simulation.invocation_failures;
          continue;
        }
        for (std::size_t k = 0; k < task.outputs.size(); ++k) {
          const spec::PortRef& port = task.outputs[k];
          pending_[period_start +
                   spec.communicator(port.comm).period * port.instance]
              .emplace_back(port.comm, outputs[k]);
        }
      }
    }
  }

  const ProgramAst& program_;
  std::string_view source_;
  const FunctionRegistry& functions_;
  sim::Environment& env_;
  const sim::SimulationOptions& options_;
  Xoshiro256 rng_;

  std::map<std::string, std::string> current_mode_;  // module -> mode
  std::map<std::string, std::unique_ptr<CompiledSystem>> cache_;

  Time hyperperiod_ = 1;
  std::vector<Value> values_;               // consensus copy per comm
  std::vector<std::vector<Value>> latched_;  // per active-spec task
  std::vector<bool> host_up_;
  std::vector<sim::FaultPlan::HostEvent> host_events_;
  std::size_t next_host_event_ = 0;
  std::map<Time, std::vector<std::pair<CommId, Value>>> pending_;
  std::map<Time, std::set<CommId>> scheduled_commits_;

  ModeSwitchingResult result_;
  std::vector<sim::ReliabilityAccumulator> accumulators_;
  std::vector<sim::ReliabilityAccumulator> update_accums_;
  std::vector<bool> record_values_;
  std::vector<bool> is_actuator_;
};

}  // namespace

Result<ModeSwitchingResult> simulate_with_switching(
    std::string_view source, const FunctionRegistry& functions,
    sim::Environment& env, const sim::SimulationOptions& options) {
  if (options.periods <= 0) {
    return InvalidArgumentError("simulation needs a positive period count");
  }
  if (options.model_execution_time) {
    return InvalidArgumentError(
        "mode-switching execution does not support timed execution yet");
  }
  LRT_ASSIGN_OR_RETURN(const ProgramAst program, parse(source));
  ModeRuntime runtime(program, source, functions, env, options);
  return runtime.run();
}

Result<std::vector<std::pair<std::string, bool>>> analyze_all_selections(
    std::string_view source) {
  LRT_ASSIGN_OR_RETURN(const ProgramAst program, parse(source));
  LRT_ASSIGN_OR_RETURN(const std::vector<ModeSelection> selections,
                       enumerate_mode_selections(program));
  std::vector<std::pair<std::string, bool>> verdicts;
  for (const ModeSelection& selection : selections) {
    LRT_ASSIGN_OR_RETURN(const CompiledSystem system,
                         compile(source, {}, selection));
    if (system.implementation == nullptr) {
      return FailedPreconditionError(
          "analyze_all_selections needs architecture and mapping blocks");
    }
    LRT_ASSIGN_OR_RETURN(const reliability::ReliabilityReport rel,
                         reliability::analyze(*system.implementation));
    LRT_ASSIGN_OR_RETURN(const sched::SchedulabilityReport sched,
                         sched::analyze_schedulability(
                             *system.implementation));
    verdicts.emplace_back(selection_key(program, selection.mode_by_module),
                          rel.reliable && sched.schedulable);
  }
  return verdicts;
}

}  // namespace lrt::htl
