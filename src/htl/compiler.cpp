#include "htl/compiler.h"

#include <algorithm>
#include <set>

#include "htl/parser.h"

namespace lrt::htl {
namespace {

/// "line L:C: message" — the uniform location prefix of every frontend
/// error (column 0 omits the ":C" part for constructs without one).
Status line_error(int line, int column, const std::string& message) {
  std::string prefix = "line " + std::to_string(line);
  if (column > 0) prefix += ":" + std::to_string(column);
  return ParseError(prefix + ": " + message);
}

/// Resolves the mode to flatten for `module`.
Result<const ModeAst*> selected_mode(const ModuleAst& module,
                                     const ModeSelection& selection) {
  if (module.modes.empty()) {
    return line_error(module.line, module.column,
                      "module '" + module.name + "' declares no modes");
  }
  std::string wanted = module.start_mode;
  const auto it = selection.mode_by_module.find(module.name);
  if (it != selection.mode_by_module.end()) wanted = it->second;
  if (wanted.empty()) wanted = module.modes.front().name;
  for (const ModeAst& mode : module.modes) {
    if (mode.name == wanted) return &mode;
  }
  return line_error(module.line, module.column,
                    "module '" + module.name + "' has no mode named '" +
                        wanted + "'");
}

/// Per-module semantic checks that do not depend on the selection.
Status check_module(const ProgramAst& program, const ModuleAst& module) {
  std::set<std::string> mode_names;
  std::set<std::string> task_names;
  for (const TaskAst& task : module.tasks) {
    if (!task_names.insert(task.name).second) {
      return line_error(task.line, task.column,
                        "duplicate task '" + task.name + "' in module '" +
                            module.name + "'");
    }
  }
  for (const ModeAst& mode : module.modes) {
    if (!mode_names.insert(mode.name).second) {
      return line_error(mode.line, mode.column,
                        "duplicate mode '" + mode.name + "' in module '" +
                            module.name + "'");
    }
    if (mode.period <= 0) {
      return line_error(mode.line, mode.column,
                        "mode '" + mode.name +
                            "' must have a positive period");
    }
    std::set<std::string> invoked;
    for (const std::string& task : mode.invokes) {
      if (task_names.count(task) == 0) {
        return line_error(mode.line, mode.column,
                          "mode '" + mode.name + "' invokes unknown task '" +
                              task + "'");
      }
      if (!invoked.insert(task).second) {
        return line_error(mode.line, mode.column,
                          "mode '" + mode.name + "' invokes task '" + task +
                              "' more than once");
      }
    }
    for (const SwitchAst& switch_ast : mode.switches) {
      const auto comm = std::find_if(
          program.communicators.begin(), program.communicators.end(),
          [&switch_ast](const CommunicatorAst& c) {
            return c.name == switch_ast.condition;
          });
      if (comm == program.communicators.end()) {
        return line_error(switch_ast.line, switch_ast.column,
                          "switch condition references unknown communicator "
                          "'" + switch_ast.condition + "'");
      }
      if (comm->type != spec::ValueType::kBool) {
        return line_error(switch_ast.line, switch_ast.column,
                          "switch condition '" + switch_ast.condition +
                              "' must be a bool communicator");
      }
      if (mode_names.count(switch_ast.target) == 0 &&
          std::none_of(module.modes.begin(), module.modes.end(),
                       [&switch_ast](const ModeAst& m) {
                         return m.name == switch_ast.target;
                       })) {
        return line_error(switch_ast.line, switch_ast.column,
                          "switch targets unknown mode '" +
                              switch_ast.target + "'");
      }
    }
  }
  if (!module.start_mode.empty() && mode_names.count(module.start_mode) == 0) {
    return line_error(module.line, module.column,
                      "start mode '" + module.start_mode +
                          "' is not declared in module '" + module.name +
                          "'");
  }
  return Status::Ok();
}

}  // namespace

Result<spec::Specification> flatten(const ProgramAst& program,
                                    const FunctionRegistry& functions,
                                    const ModeSelection& selection) {
  // A selection naming a module the program does not declare is almost
  // certainly a typo; fail loudly rather than silently using start modes.
  for (const auto& [module_name, mode_name] : selection.mode_by_module) {
    if (std::none_of(program.modules.begin(), program.modules.end(),
                     [&module_name](const ModuleAst& m) {
                       return m.name == module_name;
                     })) {
      return NotFoundError("mode selection references unknown module '" +
                           module_name + "'");
    }
    (void)mode_name;
  }

  spec::SpecificationConfig config;
  config.name = program.name;
  for (const CommunicatorAst& comm : program.communicators) {
    config.communicators.push_back(
        {comm.name, comm.type, comm.init, comm.period, comm.lrc});
  }

  std::set<std::string> global_task_names;
  std::int64_t common_period = 0;
  const ModeAst* period_witness = nullptr;
  for (const ModuleAst& module : program.modules) {
    LRT_RETURN_IF_ERROR(check_module(program, module));
    LRT_ASSIGN_OR_RETURN(const ModeAst* mode,
                         selected_mode(module, selection));
    if (common_period == 0) {
      common_period = mode->period;
      period_witness = mode;
    } else if (common_period != mode->period) {
      return line_error(mode->line, mode->column,
                        "selected mode '" + mode->name + "' has period " +
                            std::to_string(mode->period) +
                            " but another module's mode has period " +
                            std::to_string(common_period) +
                            "; the flattening subset requires equal periods");
    }
    for (const std::string& task_name : mode->invokes) {
      if (!global_task_names.insert(task_name).second) {
        return line_error(mode->line, mode->column,
                          "task '" + task_name +
                              "' is invoked by more than one module");
      }
      const auto task_ast = std::find_if(
          module.tasks.begin(), module.tasks.end(),
          [&task_name](const TaskAst& t) { return t.name == task_name; });
      spec::SpecificationConfig::TaskConfig task;
      task.name = task_ast->name;
      for (const PortAst& port : task_ast->inputs) {
        task.inputs.emplace_back(port.communicator, port.instance);
      }
      for (const PortAst& port : task_ast->outputs) {
        task.outputs.emplace_back(port.communicator, port.instance);
      }
      task.model = task_ast->model;
      task.defaults = task_ast->defaults;
      const auto fn = functions.find(task_ast->name);
      if (fn != functions.end()) task.function = fn->second;
      config.tasks.push_back(std::move(task));
    }
  }

  LRT_ASSIGN_OR_RETURN(spec::Specification spec,
                       spec::Specification::Build(std::move(config)));

  // HTL semantics: invoked tasks repeat with the mode period, so the
  // flattened specification period must coincide with it.
  if (common_period != 0 && spec.hyperperiod() != common_period) {
    return line_error(
        period_witness != nullptr ? period_witness->line : 0,
        period_witness != nullptr ? period_witness->column : 0,
        "program '" + program.name + "': selected mode period " +
            std::to_string(common_period) +
            " does not match the derived specification period " +
            std::to_string(spec.hyperperiod()) +
            " (task write times must tile the mode period)");
  }
  return spec;
}

Result<refine::RefinementMap> refinement_map(const ProgramAst& program) {
  if (!program.refines.has_value()) {
    return FailedPreconditionError("program '" + program.name +
                                   "' declares no 'refines' parent");
  }
  refine::RefinementMap map;
  std::set<std::string> seen;
  for (const RefineAst& refinement : program.refinements) {
    if (!seen.insert(refinement.local_task).second) {
      return line_error(refinement.line, refinement.column,
                        "task '" + refinement.local_task +
                            "' appears in two refine declarations");
    }
    map.task_map.emplace_back(refinement.local_task, refinement.parent_task);
  }
  return map;
}

Result<std::vector<ModeSelection>> enumerate_mode_selections(
    const ProgramAst& program, std::size_t limit) {
  std::vector<ModeSelection> selections = {ModeSelection{}};
  for (const ModuleAst& module : program.modules) {
    if (module.modes.empty()) {
      return line_error(module.line, module.column,
                        "module '" + module.name + "' declares no modes");
    }
    std::vector<ModeSelection> next;
    next.reserve(selections.size() * module.modes.size());
    for (const ModeSelection& base : selections) {
      for (const ModeAst& mode : module.modes) {
        ModeSelection extended = base;
        extended.mode_by_module[module.name] = mode.name;
        next.push_back(std::move(extended));
        if (next.size() > limit) {
          return InvalidArgumentError(
              "mode-selection product of program '" + program.name +
              "' exceeds the limit of " + std::to_string(limit));
        }
      }
    }
    selections = std::move(next);
  }
  return selections;
}

Result<CompiledSystem> compile(std::string_view source,
                               const FunctionRegistry& functions,
                               const ModeSelection& selection) {
  CompiledSystem system;
  LRT_ASSIGN_OR_RETURN(system.ast, parse(source));

  LRT_ASSIGN_OR_RETURN(spec::Specification spec,
                       flatten(system.ast, functions, selection));
  system.specification =
      std::make_unique<spec::Specification>(std::move(spec));

  if (system.ast.architecture.has_value()) {
    const ArchitectureAst& ast = *system.ast.architecture;
    arch::ArchitectureConfig config;
    config.name = system.ast.name + "_arch";
    for (const HostAst& host : ast.hosts) {
      config.hosts.push_back({host.name, host.reliability});
    }
    for (const SensorAst& sensor : ast.sensors) {
      config.sensors.push_back({sensor.name, sensor.reliability});
    }
    config.default_wcet = std::nullopt;
    config.default_wctt = std::nullopt;
    for (const MetricAst& metric : ast.metrics) {
      if (metric.task.empty()) {
        config.default_wcet = metric.wcet;
        config.default_wctt = metric.wctt;
      } else {
        config.metrics.push_back(
            {metric.task, metric.host, metric.wcet, metric.wctt});
      }
    }
    LRT_ASSIGN_OR_RETURN(arch::Architecture architecture,
                         arch::Architecture::Build(std::move(config)));
    system.architecture =
        std::make_unique<arch::Architecture>(std::move(architecture));
  }

  if (system.ast.mapping.has_value()) {
    if (system.architecture == nullptr) {
      return line_error(system.ast.mapping->line, system.ast.mapping->column,
                        "program '" + system.ast.name +
                            "' has a mapping block but no architecture "
                            "block");
    }
    const MappingAst& ast = *system.ast.mapping;
    impl::ImplementationConfig config;
    config.name = system.ast.name + "_impl";
    for (const MapAst& map : ast.maps) {
      // Mappings may cover tasks of non-selected modes; keep only those in
      // the flattened specification, but reject names declared nowhere.
      if (!system.specification->find_task(map.task).has_value()) {
        const bool declared_somewhere = std::any_of(
            system.ast.modules.begin(), system.ast.modules.end(),
            [&map](const ModuleAst& module) {
              return std::any_of(module.tasks.begin(), module.tasks.end(),
                                 [&map](const TaskAst& t) {
                                   return t.name == map.task;
                                 });
            });
        if (declared_somewhere) continue;
        return line_error(map.line, map.column,
                          "mapping references unknown task '" + map.task +
                              "'");
      }
      config.task_mappings.push_back({map.task, map.hosts, map.retries,
                                      map.checkpoints,
                                      map.checkpoint_overhead});
    }
    for (const BindAst& bind : ast.binds) {
      config.sensor_bindings.push_back({bind.communicator, bind.sensor});
    }
    LRT_ASSIGN_OR_RETURN(
        impl::Implementation implementation,
        impl::Implementation::Build(*system.specification,
                                    *system.architecture, std::move(config)));
    system.implementation =
        std::make_unique<impl::Implementation>(std::move(implementation));
  }

  return system;
}

}  // namespace lrt::htl
