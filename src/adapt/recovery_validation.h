// Monte Carlo recovery validation: does the self-healing runtime actually
// deliver the reliability the repair's re-analysis promised?
//
// Each trial simulates the implementation under a self-healing controller
// (one controller per trial, so detector/monitor state never crosses
// trials). After the campaign, the validator pools every repaired trial's
// post-repair update outcomes per communicator and checks the empirical
// reliability, with a Wilson interval, against
//  * the re-analyzed lambda_c of the repaired mapping (analysis_sound), and
//  * the declared mu_c (meets_lrc) — skipped for communicators the repair
//    shed, whose LRC was explicitly sacrificed.
// This is the paper's Proposition 1 cross-check, re-run on the *repaired*
// system: the static validation of the Monte Carlo engine, lifted to the
// adaptive layer.
#ifndef LRT_ADAPT_RECOVERY_VALIDATION_H_
#define LRT_ADAPT_RECOVERY_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/self_healing.h"
#include "impl/implementation.h"
#include "sim/monte_carlo.h"
#include "support/status.h"

namespace lrt::adapt {

struct RecoveryValidationOptions {
  /// Campaign configuration; monitor_factory is overwritten by the
  /// validator (it installs the per-trial self-healing controllers).
  sim::MonteCarloOptions monte_carlo;
  /// Controller configuration shared by every trial's controller.
  SelfHealingOptions controller;
};

/// Post-repair empirical vs re-analyzed reliability of one communicator,
/// pooled over all repaired trials.
struct CommRecovery {
  std::string name;
  std::int64_t updates = 0;
  std::int64_t reliable_updates = 0;
  double empirical = 1.0;
  sim::ConfidenceInterval interval;
  /// lambda_c of the repaired mapping (first repaired trial's re-analysis;
  /// repairs are deterministic given the dead-host set, so all trials that
  /// repaired agree).
  double reanalyzed_srg = 1.0;
  double lrc = 1.0;
  /// True when the repair waived this communicator's LRC.
  bool shed = false;
  /// interval.high >= lrc; vacuously true for shed communicators.
  bool meets_lrc = true;
  /// interval.high >= reanalyzed_srg.
  bool analysis_sound = true;
};

struct RecoveryReport {
  /// The underlying campaign's aggregate (pre- and post-repair pooled).
  sim::ValidationReport monte_carlo;
  std::int64_t repaired_trials = 0;
  /// Repaired trials whose plan shed at least one communicator.
  std::int64_t degraded_trials = 0;
  /// Surviving trials in which no repair committed.
  std::int64_t unrepaired_trials = 0;
  /// Shed communicator names in shed order (first repaired trial's plan).
  std::vector<std::string> shed_communicators;
  std::vector<CommRecovery> communicators;  ///< indexed by CommId
  /// True iff at least one trial repaired and every unshed communicator's
  /// post-repair interval meets its LRC and its re-analyzed lambda_c.
  bool recovery_validated = false;

  /// Multi-line post-repair table (empirical vs lambda_c vs mu_c).
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] std::string to_json(const RecoveryReport& report);

/// Runs a self-healing Monte Carlo campaign and reduces it into a
/// RecoveryReport. Options must outlive the validator.
class RecoveryValidator {
 public:
  explicit RecoveryValidator(RecoveryValidationOptions options);

  [[nodiscard]] Result<RecoveryReport> run(
      const impl::Implementation& impl) const;

 private:
  RecoveryValidationOptions options_;
};

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_RECOVERY_VALIDATION_H_
