#include "adapt/failure_detector.h"

#include <cassert>

namespace lrt::adapt {

std::string_view to_string(ComponentHealth health) {
  switch (health) {
    case ComponentHealth::kHealthy:
      return "healthy";
    case ComponentHealth::kDegraded:
      return "degraded";
    case ComponentHealth::kSuspectedDead:
      return "suspected-dead";
  }
  return "?";
}

FailureDetector::FailureDetector(std::size_t num_hosts,
                                 std::size_t num_sensors,
                                 FailureDetectorOptions options)
    : options_(options) {
  assert(options_.window > 0 && options_.suspect_after_misses > 0 &&
         options_.revive_after_successes > 0 &&
         "detector thresholds must be positive");
  hosts_.resize(num_hosts);
  sensors_.resize(num_sensors);
  for (auto& state : hosts_) {
    state.ring.assign(static_cast<std::size_t>(options_.window), 0);
  }
  for (auto& state : sensors_) {
    state.ring.assign(static_cast<std::size_t>(options_.window), 0);
  }
}

void FailureDetector::record(ComponentState& state, spec::Time now,
                             bool success) {
  if (state.filled == options_.window) {
    state.window_successes -= state.ring[static_cast<std::size_t>(state.head)];
  } else {
    ++state.filled;
  }
  state.ring[static_cast<std::size_t>(state.head)] = success ? 1 : 0;
  state.head = (state.head + 1) % options_.window;
  state.window_successes += success ? 1 : 0;
  ++state.observations;

  if (success) {
    state.consecutive_misses = 0;
    ++state.consecutive_successes;
    // Hysteresis: leaving the suspected state needs sustained evidence.
    if (state.suspected &&
        state.consecutive_successes >= options_.revive_after_successes) {
      state.suspected = false;
      state.suspected_since = -1;
    }
  } else {
    state.consecutive_successes = 0;
    ++state.consecutive_misses;
    if (!state.suspected &&
        state.consecutive_misses >= options_.suspect_after_misses) {
      state.suspected = true;
      state.suspected_since = now;
    }
  }
}

void FailureDetector::record_host(spec::Time now, arch::HostId host,
                                  bool success) {
  record(hosts_[static_cast<std::size_t>(host)], now, success);
}

void FailureDetector::record_sensor(spec::Time now, arch::SensorId sensor,
                                    bool success) {
  record(sensors_[static_cast<std::size_t>(sensor)], now, success);
}

ComponentHealth FailureDetector::health_of(
    const ComponentState& state) const {
  if (state.suspected) return ComponentHealth::kSuspectedDead;
  if (state.filled == options_.window &&
      reliability_of(state) < options_.degraded_threshold) {
    return ComponentHealth::kDegraded;
  }
  return ComponentHealth::kHealthy;
}

double FailureDetector::reliability_of(const ComponentState& state) {
  return state.filled == 0 ? 1.0
                           : static_cast<double>(state.window_successes) /
                                 static_cast<double>(state.filled);
}

ComponentHealth FailureDetector::host_health(arch::HostId host) const {
  return health_of(hosts_[static_cast<std::size_t>(host)]);
}

ComponentHealth FailureDetector::sensor_health(arch::SensorId sensor) const {
  return health_of(sensors_[static_cast<std::size_t>(sensor)]);
}

double FailureDetector::host_reliability(arch::HostId host) const {
  return reliability_of(hosts_[static_cast<std::size_t>(host)]);
}

double FailureDetector::sensor_reliability(arch::SensorId sensor) const {
  return reliability_of(sensors_[static_cast<std::size_t>(sensor)]);
}

std::int64_t FailureDetector::host_observations(arch::HostId host) const {
  return hosts_[static_cast<std::size_t>(host)].observations;
}

spec::Time FailureDetector::host_suspected_since(arch::HostId host) const {
  return hosts_[static_cast<std::size_t>(host)].suspected_since;
}

std::vector<arch::HostId> FailureDetector::suspected_hosts() const {
  std::vector<arch::HostId> out;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (hosts_[h].suspected) out.push_back(static_cast<arch::HostId>(h));
  }
  return out;
}

std::vector<arch::HostId> FailureDetector::surviving_hosts() const {
  std::vector<arch::HostId> out;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (!hosts_[h].suspected) out.push_back(static_cast<arch::HostId>(h));
  }
  return out;
}

bool FailureDetector::any_host_suspected() const {
  for (const ComponentState& state : hosts_) {
    if (state.suspected) return true;
  }
  return false;
}

}  // namespace lrt::adapt
