// Repair planning after a suspected-permanent host loss (adaptive layer).
//
// Given the currently running implementation and the set of dead hosts, the
// planner searches for a replacement replication mapping on the surviving
// hosts, re-running the paper's Section 3 analysis and the schedulability
// check on every candidate before anything is committed — the same
// machinery that validated the design-time mapping validates the repair,
// so a committed repair carries exactly the paper's guarantee
// (lambda_c >= mu_c under the *surviving* platform).
//
// When no mapping on the survivors can satisfy every LRC, the planner
// degrades gracefully: it sheds communicators — waives their LRC — in
// increasing order of achievable slack lambda_c - mu_c (most hopeless
// first, ties broken by CommId), where lambda_c is measured on the
// reliability ceiling (every task replicated on every survivor), and
// retries until the remaining constraints are satisfiable. The shed set is
// reported verbatim: graceful degradation is explicit, never silent.
#ifndef LRT_ADAPT_REPAIR_PLANNER_H_
#define LRT_ADAPT_REPAIR_PLANNER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "impl/implementation.h"
#include "reliability/analysis.h"
#include "support/status.h"
#include "synth/synthesis.h"

namespace lrt::adapt {

struct RepairPolicy {
  /// Synthesis strategy for the replacement mapping search.
  synth::SynthesisOptions::Strategy strategy =
      synth::SynthesisOptions::Strategy::kGreedy;
  /// Search engine (see SynthesisOptions::Engine) — a repair on a live
  /// system wants the incremental fast path; the reference engine stays
  /// available for differential runs.
  synth::SynthesisOptions::Engine engine =
      synth::SynthesisOptions::Engine::kFast;
  /// Worker threads for the fast exhaustive search (0 = all cores); the
  /// planned repair is identical for every value.
  unsigned threads = 1;
  /// Also require the repaired mapping to pass the schedulability check.
  bool require_schedulable = true;
  /// Upper bound on |I(t)| per task in the repaired mapping.
  int max_replication_per_task = 1 << 20;
};

struct RepairPlan {
  /// True when `config` satisfies every unshed LRC (and, when required,
  /// schedulability). False = best-effort degraded mapping: even shedding
  /// every communicator left no valid mapping (e.g. nothing schedulable
  /// on the survivors).
  bool feasible = false;
  /// The replacement mapping, ready for Implementation::Build. Preserves
  /// the current implementation's sensor bindings and per-task
  /// re-execution/checkpoint budgets (re-spent on the new hosts).
  impl::ImplementationConfig config;
  /// Communicator names whose LRC was sacrificed, in shed order
  /// (increasing achievable slack). Empty = full recovery.
  std::vector<std::string> shed_communicators;
  std::vector<spec::CommId> shed_ids;
  /// Section 3 re-analysis of `config` (per-communicator lambda_c).
  reliability::ReliabilityReport reliability;
  bool schedulable = false;
  /// Search effort across all shedding rounds.
  std::int64_t candidates_evaluated = 0;

  /// One-paragraph human-readable description of the outcome.
  [[nodiscard]] std::string describe() const;
};

/// Plans a repair of `current` around the loss of `dead_hosts`. Fails with
/// kFailedPrecondition when no host survives, kInvalidArgument for an
/// out-of-range dead host id; an implementation that can only be repaired
/// by shedding yields an OK plan with a nonempty shed set, not an error.
[[nodiscard]] Result<RepairPlan> plan_repair(
    const impl::Implementation& current,
    std::span<const arch::HostId> dead_hosts, const RepairPolicy& policy = {});

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_REPAIR_PLANNER_H_
