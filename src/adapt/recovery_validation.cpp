#include "adapt/recovery_validation.h"

#include <memory>
#include <utility>

#include "support/json.h"
#include "support/strings.h"

namespace lrt::adapt {

std::string RecoveryReport::summary() const {
  std::string out = "recovery validation: ";
  out += std::to_string(repaired_trials) + " repaired, " +
         std::to_string(degraded_trials) + " degraded, " +
         std::to_string(unrepaired_trials) + " unrepaired trial(s)";
  if (!shed_communicators.empty()) {
    out += "; shed: " + join(shed_communicators, ", ");
  }
  out += "\n";
  for (const CommRecovery& comm : communicators) {
    out += "  " + comm.name + ": post-repair=" +
           format_double(comm.empirical) + " [" +
           format_double(comm.interval.low) + ", " +
           format_double(comm.interval.high) + "]" +
           " lambda=" + format_double(comm.reanalyzed_srg) +
           " mu=" + format_double(comm.lrc);
    if (comm.shed) {
      out += " SHED";
    } else {
      out += comm.meets_lrc ? " ok" : " MISSES-LRC";
      if (!comm.analysis_sound) out += " UNSOUND";
    }
    out += "\n";
  }
  out += recovery_validated ? "recovery VALIDATED\n" : "recovery FAILED\n";
  return out;
}

std::string to_json(const RecoveryReport& report) {
  // The inner Monte Carlo aggregate has its own sim::to_json; this document
  // covers only the recovery reduction.
  JsonWriter json;
  json.begin_object();
  json.key("implementation");
  json.value(report.monte_carlo.implementation);
  json.key("trials");
  json.value(report.monte_carlo.trials);
  json.key("failed_trials");
  json.value(report.monte_carlo.failed_trials);
  json.key("repaired_trials");
  json.value(report.repaired_trials);
  json.key("degraded_trials");
  json.value(report.degraded_trials);
  json.key("unrepaired_trials");
  json.value(report.unrepaired_trials);
  json.key("recovery_validated");
  json.value(report.recovery_validated);
  json.key("shed_communicators");
  json.begin_array();
  for (const std::string& name : report.shed_communicators) {
    json.value(name);
  }
  json.end_array();
  json.key("communicators");
  json.begin_array();
  for (const CommRecovery& comm : report.communicators) {
    json.begin_object();
    json.key("name");
    json.value(comm.name);
    json.key("updates");
    json.value(comm.updates);
    json.key("reliable_updates");
    json.value(comm.reliable_updates);
    json.key("empirical");
    json.value(comm.empirical);
    json.key("ci_low");
    json.value(comm.interval.low);
    json.key("ci_high");
    json.value(comm.interval.high);
    json.key("reanalyzed_srg");
    json.value(comm.reanalyzed_srg);
    json.key("lrc");
    json.value(comm.lrc);
    json.key("shed");
    json.value(comm.shed);
    json.key("meets_lrc");
    json.value(comm.meets_lrc);
    json.key("analysis_sound");
    json.value(comm.analysis_sound);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

RecoveryValidator::RecoveryValidator(RecoveryValidationOptions options)
    : options_(std::move(options)) {}

Result<RecoveryReport> RecoveryValidator::run(
    const impl::Implementation& impl) const {
  const spec::Specification& spec = impl.specification();
  const auto num_comms = spec.communicators().size();

  // One controller per trial, index-addressed from the worker threads (no
  // two trials share an index, so no synchronization is needed), kept
  // alive until the reduction below is done with them.
  std::vector<std::unique_ptr<SelfHealingController>> controllers(
      static_cast<std::size_t>(options_.monte_carlo.trials));
  sim::MonteCarloOptions mc = options_.monte_carlo;
  mc.monitor_factory =
      [this, &impl, &controllers](std::int64_t trial) -> sim::RuntimeMonitor* {
    auto& slot = controllers[static_cast<std::size_t>(trial)];
    slot = std::make_unique<SelfHealingController>(impl, options_.controller);
    return slot.get();
  };

  RecoveryReport report;
  const sim::MonteCarloRunner runner(mc);
  LRT_ASSIGN_OR_RETURN(report.monte_carlo, runner.run(impl));

  // Sequential reduction in trial order: deterministic for every thread
  // count, like the underlying runner's.
  report.communicators.resize(num_comms);
  const RepairPlan* first_plan = nullptr;
  for (const auto& controller : controllers) {
    if (controller == nullptr || !controller->repaired()) continue;
    ++report.repaired_trials;
    const RepairPlan& plan = controller->repairs().front().plan;
    if (!plan.shed_communicators.empty()) ++report.degraded_trials;
    if (first_plan == nullptr) first_plan = &plan;
    const auto& stats = controller->post_repair_stats();
    for (std::size_t c = 0; c < num_comms; ++c) {
      report.communicators[c].updates += stats[c].updates;
      report.communicators[c].reliable_updates += stats[c].reliable_updates;
    }
  }
  report.unrepaired_trials = report.monte_carlo.trials -
                             report.monte_carlo.failed_trials -
                             report.repaired_trials;
  if (report.unrepaired_trials < 0) report.unrepaired_trials = 0;
  if (first_plan != nullptr) {
    report.shed_communicators = first_plan->shed_communicators;
  }

  bool all_ok = report.repaired_trials > 0;
  for (std::size_t c = 0; c < num_comms; ++c) {
    CommRecovery& comm = report.communicators[c];
    const auto id = static_cast<spec::CommId>(c);
    comm.name = spec.communicator(id).name;
    comm.lrc = spec.communicator(id).lrc;
    comm.empirical = comm.updates == 0
                         ? 1.0
                         : static_cast<double>(comm.reliable_updates) /
                               static_cast<double>(comm.updates);
    comm.interval = sim::wilson_interval(comm.reliable_updates, comm.updates,
                                         options_.monte_carlo.z);
    if (first_plan != nullptr) {
      for (const reliability::CommunicatorVerdict& verdict :
           first_plan->reliability.verdicts) {
        if (verdict.comm == id) comm.reanalyzed_srg = verdict.srg;
      }
      for (const spec::CommId shed_id : first_plan->shed_ids) {
        if (shed_id == id) comm.shed = true;
      }
    }
    comm.analysis_sound = comm.interval.high >= comm.reanalyzed_srg;
    comm.meets_lrc = comm.shed || comm.interval.high >= comm.lrc;
    if (!comm.shed && (!comm.meets_lrc || !comm.analysis_sound)) {
      all_ok = false;
    }
  }
  report.recovery_validated = all_ok;
  // The trial controllers already pooled their "adapt.*" counters into
  // this sink; the validator adds only its own reduction's verdicts.
  if (const obs::Sink* sink = obs::resolve_sink(options_.controller.sink)) {
    sink->counter_add("adapt.recovery_runs");
    if (report.recovery_validated) {
      sink->counter_add("adapt.repairs_validated", report.repaired_trials);
    }
  }
  return report;
}

}  // namespace lrt::adapt
