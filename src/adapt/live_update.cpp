#include "adapt/live_update.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

namespace lrt::adapt {
namespace {

using spec::CommId;
using spec::TaskId;
using spec::Time;

/// A task's structural signature with communicators identified by NAME,
/// so it is comparable across two specifications whose CommIds differ.
struct TaskShape {
  std::vector<std::pair<std::string, std::int64_t>> inputs;
  std::vector<std::pair<std::string, std::int64_t>> outputs;
  spec::FailureModel model = spec::FailureModel::kSeries;
  std::vector<spec::Value> defaults;
};

TaskShape shape_of(const spec::Specification& spec, const spec::Task& task) {
  TaskShape shape;
  for (const spec::PortRef& port : task.inputs) {
    shape.inputs.emplace_back(spec.communicator(port.comm).name,
                              port.instance);
  }
  for (const spec::PortRef& port : task.outputs) {
    shape.outputs.emplace_back(spec.communicator(port.comm).name,
                               port.instance);
  }
  shape.model = task.model;
  shape.defaults = task.defaults;
  return shape;
}

bool same_shape(const TaskShape& a, const TaskShape& b) {
  if (a.inputs != b.inputs || a.outputs != b.outputs || a.model != b.model) {
    return false;
  }
  if (a.defaults.size() != b.defaults.size()) return false;
  for (std::size_t i = 0; i < a.defaults.size(); ++i) {
    if (!(a.defaults[i] == b.defaults[i])) return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& names) {
  if (names.empty()) return "none";
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::string_view to_string(UpdatePath path) {
  switch (path) {
    case UpdatePath::kNone:
      return "none";
    case UpdatePath::kRefined:
      return "refined";
    case UpdatePath::kResynthesized:
      return "resynthesized";
  }
  return "?";
}

std::string_view to_string(UpdateState state) {
  switch (state) {
    case UpdateState::kIdle:
      return "idle";
    case UpdateState::kStaged:
      return "staged";
    case UpdateState::kProbation:
      return "probation";
    case UpdateState::kCommitted:
      return "committed";
    case UpdateState::kRolledBack:
      return "rolled-back";
    case UpdateState::kRejected:
      return "rejected";
  }
  return "?";
}

std::string UpdateReport::summary() const {
  std::string out = "live update: state=" + std::string(to_string(state)) +
                    " path=" + std::string(to_string(path)) + "\n";
  out += "  dirty tasks: " + join(dirty_tasks) + "\n";
  out += "  dirty comms: " + join(dirty_comms) + "\n";
  out += "  proposed@" + std::to_string(proposed_at) + " installed@" +
         std::to_string(installed_at) + " resolved@" +
         std::to_string(resolved_at) + "\n";
  if (!detail.empty()) out += "  " + detail + "\n";
  return out;
}

UpdateEngine::UpdateEngine(const impl::Implementation& initial,
                           LiveUpdateOptions options)
    : initial_(&initial),
      options_(std::move(options)),
      sink_(obs::resolve_sink(options_.sink)),
      active_(&initial),
      previous_(&initial) {}

Status UpdateEngine::propose(
    Time now, spec::SpecificationConfig proposed,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings) {
  if (report_.state != UpdateState::kIdle) {
    return FailedPreconditionError(
        "live update: a transaction is already in flight (state " +
        std::string(to_string(report_.state)) + ")");
  }
  report_.proposed_at = now;
  if (sink_ != nullptr) {
    sink_->counter_add("adapt.updates_proposed");
    if (sink_->tracer() != nullptr) {
      span_start_us_ = sink_->tracer()->now_us();
    }
  }
  return verify(std::move(proposed), std::move(sensor_bindings));
}

Status UpdateEngine::verify(
    spec::SpecificationConfig proposed,
    std::vector<impl::ImplementationConfig::SensorBinding> bindings) {
  auto built_spec = spec::Specification::Build(std::move(proposed));
  if (!built_spec.ok()) {
    reject("proposed specification is malformed: " +
           std::string(built_spec.status().message()));
    return Status::Ok();
  }
  staged_spec_ =
      std::make_shared<const spec::Specification>(*std::move(built_spec));
  const spec::Specification& to = *staged_spec_;
  const spec::Specification& from = active_->specification();
  const arch::Architecture& arch = active_->architecture();

  // --- propose: diff the specifications into the dirty cone. -------------
  const auto num_tasks = static_cast<TaskId>(to.tasks().size());
  const auto num_comms = static_cast<CommId>(to.communicators().size());
  std::vector<std::uint8_t> task_dirty(static_cast<std::size_t>(num_tasks),
                                       0);
  std::vector<std::uint8_t> comm_dirty(static_cast<std::size_t>(num_comms),
                                       0);
  for (TaskId t = 0; t < num_tasks; ++t) {
    const spec::Task& task = to.task(t);
    const auto old_id = from.find_task(task.name);
    if (!old_id.has_value() ||
        !same_shape(shape_of(to, task), shape_of(from, from.task(*old_id)))) {
      task_dirty[static_cast<std::size_t>(t)] = 1;
    }
  }
  for (CommId c = 0; c < num_comms; ++c) {
    const spec::Communicator& comm = to.communicator(c);
    const auto old_id = from.find_communicator(comm.name);
    bool dirty = !old_id.has_value();
    if (!dirty) {
      const spec::Communicator& old = from.communicator(*old_id);
      dirty = comm.type != old.type || comm.period != old.period ||
              comm.lrc != old.lrc || !(comm.init == old.init);
      // A writer change rewires the dataflow even when the declaration
      // itself is untouched.
      if (!dirty) {
        const auto new_writer = to.writer_of(c);
        const auto old_writer = from.writer_of(*old_id);
        const std::string new_name =
            new_writer.has_value() ? to.task(*new_writer).name : "";
        const std::string old_name =
            old_writer.has_value() ? from.task(*old_writer).name : "";
        dirty = new_name != old_name;
      }
    }
    comm_dirty[static_cast<std::size_t>(c)] = dirty ? 1 : 0;
  }
  // Downstream closure: a dirty task taints its outputs, a dirty
  // communicator taints its readers — the SRG dependency direction.
  for (bool changed = true; changed;) {
    changed = false;
    for (TaskId t = 0; t < num_tasks; ++t) {
      if (task_dirty[static_cast<std::size_t>(t)] == 0) continue;
      for (const spec::PortRef& port : to.task(t).outputs) {
        auto& flag = comm_dirty[static_cast<std::size_t>(port.comm)];
        if (flag == 0) {
          flag = 1;
          changed = true;
        }
      }
    }
    for (CommId c = 0; c < num_comms; ++c) {
      if (comm_dirty[static_cast<std::size_t>(c)] == 0) continue;
      for (const TaskId t : to.readers_of(c)) {
        auto& flag = task_dirty[static_cast<std::size_t>(t)];
        if (flag == 0) {
          flag = 1;
          changed = true;
        }
      }
    }
  }
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (task_dirty[static_cast<std::size_t>(t)] != 0) {
      report_.dirty_tasks.push_back(to.task(t).name);
    }
  }
  for (CommId c = 0; c < num_comms; ++c) {
    if (comm_dirty[static_cast<std::size_t>(c)] != 0) {
      report_.dirty_comms.push_back(to.communicator(c).name);
    }
  }
  std::sort(report_.dirty_tasks.begin(), report_.dirty_tasks.end());
  std::sort(report_.dirty_comms.begin(), report_.dirty_comms.end());

  // Sensor bindings: carry the running workload's by name (for
  // communicators that are still input communicators), then overlay the
  // caller's.
  const impl::ImplementationConfig active_config = active_->to_config();
  std::vector<impl::ImplementationConfig::SensorBinding> merged;
  for (const auto& binding : active_config.sensor_bindings) {
    const auto c = to.find_communicator(binding.communicator);
    if (!c.has_value() || !to.is_input_communicator(*c)) continue;
    const bool overridden = std::any_of(
        bindings.begin(), bindings.end(), [&binding](const auto& b) {
          return b.communicator == binding.communicator;
        });
    if (!overridden) merged.push_back(binding);
  }
  merged.insert(merged.end(), bindings.begin(), bindings.end());

  // --- verify, fast path: identity-kappa refinement. ---------------------
  // When the task sets match by name, carrying the running mapping over
  // gives a candidate that satisfies (a) and (b1) by construction; if
  // check_refinement discharges the rest, Lemmas 1-2 transfer
  // schedulability and reliability with zero search.
  bool names_match = from.tasks().size() == to.tasks().size();
  for (TaskId t = 0; names_match && t < num_tasks; ++t) {
    names_match = from.find_task(to.task(t).name).has_value();
  }
  if (names_match) {
    impl::ImplementationConfig carried;
    carried.name = active_config.name + "+update";
    for (TaskId t = 0; t < num_tasks; ++t) {
      const spec::Task& task = to.task(t);
      const TaskId old_id = *from.find_task(task.name);
      impl::ImplementationConfig::TaskMapping mapping;
      mapping.task = task.name;
      for (const arch::HostId h : active_->hosts_for(old_id)) {
        mapping.hosts.push_back(arch.host(h).name);
      }
      mapping.reexecutions = active_->reexecutions(old_id);
      mapping.checkpoints = active_->checkpoints(old_id);
      mapping.checkpoint_overhead = active_->checkpoint_overhead(old_id);
      carried.task_mappings.push_back(std::move(mapping));
    }
    carried.sensor_bindings = merged;
    auto candidate =
        impl::Implementation::Build(to, arch, std::move(carried));
    if (candidate.ok()) {
      refine::RefinementMap kappa;
      for (TaskId t = 0; t < num_tasks; ++t) {
        kappa.task_map.emplace_back(to.task(t).name, to.task(t).name);
      }
      auto verdict = refine::check_refinement(*candidate, *active_, kappa);
      if (verdict.ok()) {
        report_.refinement = *std::move(verdict);
        if (report_.refinement.refines) {
          staged_impl_ = std::make_unique<const impl::Implementation>(
              *std::move(candidate));
          report_.path = UpdatePath::kRefined;
          report_.replication_count = staged_impl_->replication_count();
          report_.state = UpdateState::kStaged;
          if (sink_ != nullptr) sink_->counter_add("adapt.updates_refined");
          return Status::Ok();
        }
      }
    }
  }

  // --- verify, slow path: re-synthesis restricted to the dirty cone. -----
  synth::SynthesisOptions opts = options_.synthesis;
  opts.sink = sink_;
  opts.pinned_hosts.assign(static_cast<std::size_t>(num_tasks), {});
  bool any_pin = false;
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (task_dirty[static_cast<std::size_t>(t)] != 0) continue;
    const auto old_id = from.find_task(to.task(t).name);
    if (!old_id.has_value()) continue;
    opts.pinned_hosts[static_cast<std::size_t>(t)] =
        active_->hosts_for(*old_id);
    any_pin = true;
  }
  if (opts.task_redundancy.empty()) {
    // Re-spend the running workload's time redundancy on carried tasks.
    opts.task_redundancy.resize(static_cast<std::size_t>(num_tasks));
    for (TaskId t = 0; t < num_tasks; ++t) {
      const auto old_id = from.find_task(to.task(t).name);
      if (!old_id.has_value()) continue;
      auto& redundancy = opts.task_redundancy[static_cast<std::size_t>(t)];
      redundancy.reexecutions = active_->reexecutions(*old_id);
      redundancy.checkpoints = active_->checkpoints(*old_id);
      redundancy.checkpoint_overhead = active_->checkpoint_overhead(*old_id);
    }
  }
  auto synthesized = synth::synthesize(to, arch, merged, opts);
  if (!synthesized.ok() &&
      synthesized.status().code() == StatusCode::kUnsatisfiable &&
      options_.widen_on_unsat && any_pin) {
    // The changed region alone cannot absorb the update; trade locality
    // for a global search before giving up.
    opts.pinned_hosts.clear();
    synthesized = synth::synthesize(to, arch, merged, opts);
  }
  if (!synthesized.ok()) {
    reject("re-synthesis failed: " +
           std::string(synthesized.status().message()));
    return Status::Ok();
  }
  auto built =
      impl::Implementation::Build(to, arch, std::move(synthesized->config));
  if (!built.ok()) {
    reject("synthesized mapping failed to build: " +
           std::string(built.status().message()));
    return Status::Ok();
  }
  staged_impl_ =
      std::make_unique<const impl::Implementation>(*std::move(built));
  report_.path = UpdatePath::kResynthesized;
  report_.replication_count = staged_impl_->replication_count();
  report_.state = UpdateState::kStaged;
  if (sink_ != nullptr) sink_->counter_add("adapt.updates_resynthesized");
  return Status::Ok();
}

void UpdateEngine::reject(const std::string& why) {
  report_.detail = why;
  staged_impl_.reset();
  resolve(report_.proposed_at, UpdateState::kRejected);
}

void UpdateEngine::resolve(Time now, UpdateState terminal) {
  report_.state = terminal;
  report_.resolved_at = now;
  if (sink_ != nullptr && sink_->tracer() != nullptr) {
    sink_->tracer()->complete(
        "adapt", "update", span_start_us_, sink_->tracer()->now_us(),
        {{"state", static_cast<double>(terminal)},
         {"path", static_cast<double>(report_.path)}});
  }
}

void UpdateEngine::on_update(Time now, CommId comm, bool reliable,
                             int /*contributors*/) {
  if (report_.state != UpdateState::kProbation || rollback_pending_) return;
  probation_->record_update(now, comm, reliable);
  if (probation_->state(comm) == LrcState::kViolated) {
    rollback_pending_ = true;
    report_.detail = "probation: LRC of '" +
                     staged_spec_->communicator(comm).name +
                     "' statistically violated (windowed rate " +
                     std::to_string(probation_->windowed_rate(comm)) +
                     " vs mu " +
                     std::to_string(staged_spec_->communicator(comm).lrc) +
                     ")";
  }
}

const impl::Implementation* UpdateEngine::on_update_point(Time now) {
  if (report_.state == UpdateState::kStaged) {
    if (now < options_.earliest_install) return nullptr;
    report_.installed_at = now;
    previous_ = active_;
    active_ = staged_impl_.get();
    if (sink_ != nullptr) {
      sink_->counter_add("adapt.updates_installed");
      sink_->instant("adapt", "update_install",
                     {{"t", static_cast<double>(now)}});
    }
    if (options_.probation_periods <= 0) {
      resolve(now, UpdateState::kCommitted);
    } else {
      report_.state = UpdateState::kProbation;
      probation_ =
          std::make_unique<LrcMonitor>(*staged_spec_, options_.lrc);
      probation_->reset(now);
      probation_ends_ =
          now + options_.probation_periods * staged_spec_->hyperperiod();
    }
    return staged_impl_.get();
  }
  if (report_.state == UpdateState::kProbation) {
    if (rollback_pending_) {
      const impl::Implementation* back = previous_;
      active_ = back;
      if (sink_ != nullptr) {
        sink_->counter_add("adapt.updates_rolled_back");
        sink_->instant("adapt", "update_rollback",
                       {{"t", static_cast<double>(now)}});
      }
      resolve(now, UpdateState::kRolledBack);
      return back;
    }
    if (now >= probation_ends_) resolve(now, UpdateState::kCommitted);
  }
  return nullptr;
}

}  // namespace lrt::adapt
