// The self-healing controller: the adaptive layer's RuntimeMonitor.
//
// Wires the failure detector, the online LRC monitor, and the repair
// planner into one observer the simulation runtime drives:
//  * every replica invocation outcome feeds the per-host detector, every
//    sensor commit the per-sensor detector, every update the LRC monitor;
//  * at a period boundary where the detector suspects a host that has not
//    been repaired around yet, the controller plans a repair (analysis and
//    schedulability re-run inside the loop), builds the replacement
//    Implementation, and hands it to the runtime — which installs it for
//    all following periods, so the re-execution budget is re-spent on the
//    new hosts from the next period on;
//  * after the first committed repair the controller separately pools
//    per-communicator update outcomes, the empirical evidence the recovery
//    validator checks against the re-analyzed lambda_c.
//
// A controller instance observes exactly one simulation (it is stateful
// and single-threaded); Monte Carlo campaigns build one per trial.
#ifndef LRT_ADAPT_SELF_HEALING_H_
#define LRT_ADAPT_SELF_HEALING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/failure_detector.h"
#include "adapt/lrc_monitor.h"
#include "adapt/repair_planner.h"
#include "impl/implementation.h"
#include "obs/sink.h"
#include "sim/runtime.h"
#include "support/status.h"

namespace lrt::adapt {

struct SelfHealingOptions {
  FailureDetectorOptions detector;
  LrcMonitorOptions lrc;
  RepairPolicy repair;
  /// False = observe only (detector + LRC monitor, never remap).
  bool enable_repair = true;
  /// Observability sink: "adapt.*" counters (suspicions, repairs
  /// planned/installed/failed, LRC state transitions) plus "adapt"
  /// instants. Null falls back to the process-global sink; counter adds
  /// commute, so totals pooled across parallel trial controllers are
  /// deterministic for every thread count.
  obs::Sink* sink = nullptr;
};

/// One committed repair.
struct RepairRecord {
  /// Period boundary at which the runtime installed the new mapping.
  spec::Time committed_at = 0;
  /// Hosts the repair routed around.
  std::vector<arch::HostId> dead_hosts;
  RepairPlan plan;
};

class SelfHealingController final : public sim::RuntimeMonitor {
 public:
  /// `initial` is the mapping the simulation starts under; it must outlive
  /// the controller.
  explicit SelfHealingController(const impl::Implementation& initial,
                                 SelfHealingOptions options = {});

  // RuntimeMonitor:
  void on_invocation(spec::Time now, spec::TaskId task, arch::HostId host,
                     bool success) override;
  void on_sensor_update(spec::Time now, spec::CommId comm,
                        arch::SensorId sensor, bool reliable) override;
  void on_update(spec::Time now, spec::CommId comm, bool reliable,
                 int contributors) override;
  const impl::Implementation* on_period_boundary(spec::Time now) override;

  [[nodiscard]] const FailureDetector& detector() const { return detector_; }
  [[nodiscard]] const LrcMonitor& lrc_monitor() const { return lrc_; }
  [[nodiscard]] const std::vector<RepairRecord>& repairs() const {
    return repairs_;
  }
  [[nodiscard]] bool repaired() const { return !repairs_.empty(); }
  /// Last planner/build failure (OK when every attempt committed). A
  /// failed attempt is recorded and not retried: the evidence that doomed
  /// it (the dead-host set) would not change.
  [[nodiscard]] const Status& last_error() const { return last_error_; }
  /// The mapping currently in force (the latest repair, else the initial).
  [[nodiscard]] const impl::Implementation& active() const;

  /// Per-communicator update outcomes observed strictly after the latest
  /// committed repair (all zero until a repair commits).
  struct PostRepairStats {
    std::int64_t updates = 0;
    std::int64_t reliable_updates = 0;
  };
  [[nodiscard]] const std::vector<PostRepairStats>& post_repair_stats()
      const {
    return post_repair_;
  }

 private:
  const impl::Implementation* initial_;
  SelfHealingOptions options_;
  const obs::Sink* sink_;
  FailureDetector detector_;
  LrcMonitor lrc_;
  std::vector<RepairRecord> repairs_;
  /// Repaired implementations stay alive for the rest of the run — the
  /// runtime executes out of them.
  std::vector<std::unique_ptr<impl::Implementation>> owned_;
  std::vector<bool> repair_attempted_;  // by HostId
  Status last_error_;
  std::vector<PostRepairStats> post_repair_;  // by CommId
};

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_SELF_HEALING_H_
