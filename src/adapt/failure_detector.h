// Online failure detection over the runtime's invocation and sensor-update
// streams (adaptive layer; extension beyond the paper's static model, see
// DESIGN.md).
//
// The paper treats hrel(h) as a design-time constant; the detector makes it
// an online estimate. Each host and sensor gets a sliding window of its
// most recent outcomes plus a consecutive-miss counter:
//  * kSuspectedDead is declared only after `suspect_after_misses`
//    consecutive misses. Under pure Bernoulli faults at nominal hrel the
//    probability of m consecutive misses at any given point is
//    (1 - hrel)^m — with hrel = 0.99 and the default m = 24 that is
//    1e-48, so transient noise never trips the detector across any
//    realistic Monte Carlo budget. A permanently unplugged host crosses
//    the threshold after exactly m invocations.
//  * Hysteresis: a suspected component is revived only after
//    `revive_after_successes` consecutive successes, so a single lucky
//    observation cannot flap the state back to healthy.
//  * kDegraded is a soft warning: the windowed empirical reliability fell
//    below `degraded_threshold` (with a full window), but the component is
//    still producing successes.
#ifndef LRT_ADAPT_FAILURE_DETECTOR_H_
#define LRT_ADAPT_FAILURE_DETECTOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/architecture.h"
#include "spec/declarations.h"

namespace lrt::adapt {

struct FailureDetectorOptions {
  /// Outcomes kept per component for the windowed reliability estimate.
  int window = 64;
  /// Consecutive misses before a component is suspected permanently dead.
  int suspect_after_misses = 24;
  /// Consecutive successes before a suspected component is revived.
  int revive_after_successes = 8;
  /// Windowed reliability below this (with a full window) flags kDegraded.
  double degraded_threshold = 0.75;
};

enum class ComponentHealth {
  kHealthy,
  kDegraded,      ///< producing successes, but well below nominal
  kSuspectedDead  ///< consecutive-miss threshold crossed; repair candidate
};

[[nodiscard]] std::string_view to_string(ComponentHealth health);

/// Tracks per-host and per-sensor empirical reliability. Fed by the
/// adaptive controller from RuntimeMonitor callbacks; single-threaded like
/// the simulation that drives it.
class FailureDetector {
 public:
  FailureDetector(std::size_t num_hosts, std::size_t num_sensors,
                  FailureDetectorOptions options = {});

  void record_host(spec::Time now, arch::HostId host, bool success);
  void record_sensor(spec::Time now, arch::SensorId sensor, bool success);

  [[nodiscard]] ComponentHealth host_health(arch::HostId host) const;
  [[nodiscard]] ComponentHealth sensor_health(arch::SensorId sensor) const;

  /// Windowed empirical reliability (1.0 before any observation).
  [[nodiscard]] double host_reliability(arch::HostId host) const;
  [[nodiscard]] double sensor_reliability(arch::SensorId sensor) const;

  [[nodiscard]] std::int64_t host_observations(arch::HostId host) const;

  /// Time of the miss that crossed the suspect threshold; -1 if the host
  /// is not currently suspected.
  [[nodiscard]] spec::Time host_suspected_since(arch::HostId host) const;

  /// Hosts currently suspected dead / not suspected, ascending.
  [[nodiscard]] std::vector<arch::HostId> suspected_hosts() const;
  [[nodiscard]] std::vector<arch::HostId> surviving_hosts() const;
  [[nodiscard]] bool any_host_suspected() const;

  [[nodiscard]] const FailureDetectorOptions& options() const {
    return options_;
  }

 private:
  struct ComponentState {
    std::vector<std::uint8_t> ring;  ///< outcome window, oldest overwritten
    int head = 0;
    int filled = 0;
    int window_successes = 0;
    int consecutive_misses = 0;
    int consecutive_successes = 0;
    std::int64_t observations = 0;
    bool suspected = false;
    spec::Time suspected_since = -1;
  };

  void record(ComponentState& state, spec::Time now, bool success);
  [[nodiscard]] ComponentHealth health_of(const ComponentState& state) const;
  [[nodiscard]] static double reliability_of(const ComponentState& state);

  FailureDetectorOptions options_;
  std::vector<ComponentState> hosts_;
  std::vector<ComponentState> sensors_;
};

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_FAILURE_DETECTOR_H_
