#include "adapt/lrc_monitor.h"

#include <algorithm>
#include <cassert>

#include "support/strings.h"

namespace lrt::adapt {

std::string_view to_string(LrcState state) {
  switch (state) {
    case LrcState::kHealthy:
      return "healthy";
    case LrcState::kAtRisk:
      return "at-risk";
    case LrcState::kViolated:
      return "violated";
  }
  return "?";
}

LrcMonitor::LrcMonitor(const spec::Specification& spec,
                       LrcMonitorOptions options)
    : spec_(&spec), options_(options) {
  assert(options_.window > 0 && "monitor window must be positive");
  comms_.resize(spec.communicators().size());
  for (auto& state : comms_) {
    state.ring.assign(static_cast<std::size_t>(options_.window), 0);
  }
}

void LrcMonitor::record_update(spec::Time /*now*/, spec::CommId comm,
                               bool reliable) {
  CommState& state = comms_[static_cast<std::size_t>(comm)];
  if (state.filled == options_.window) {
    state.window_successes -= state.ring[static_cast<std::size_t>(state.head)];
  } else {
    ++state.filled;
  }
  state.ring[static_cast<std::size_t>(state.head)] = reliable ? 1 : 0;
  state.head = (state.head + 1) % options_.window;
  state.window_successes += reliable ? 1 : 0;
  ++state.updates;
}

void LrcMonitor::reset(spec::Time now) {
  for (CommState& state : comms_) {
    std::fill(state.ring.begin(), state.ring.end(), std::uint8_t{0});
    state.head = 0;
    state.filled = 0;
    state.window_successes = 0;
    // state.updates is the lifetime count and survives on purpose.
  }
  last_reset_ = now;
}

double LrcMonitor::windowed_rate(spec::CommId comm) const {
  const CommState& state = comms_[static_cast<std::size_t>(comm)];
  return state.filled == 0 ? 1.0
                           : static_cast<double>(state.window_successes) /
                                 static_cast<double>(state.filled);
}

sim::ConfidenceInterval LrcMonitor::windowed_interval(
    spec::CommId comm) const {
  const CommState& state = comms_[static_cast<std::size_t>(comm)];
  return sim::wilson_interval(state.window_successes, state.filled,
                              options_.z);
}

std::int64_t LrcMonitor::updates_seen(spec::CommId comm) const {
  return comms_[static_cast<std::size_t>(comm)].updates;
}

LrcState LrcMonitor::state(spec::CommId comm) const {
  const CommState& state = comms_[static_cast<std::size_t>(comm)];
  if (state.filled < options_.min_updates) return LrcState::kHealthy;
  const double mu = spec_->communicator(comm).lrc;
  if (windowed_rate(comm) >= mu) return LrcState::kHealthy;
  return windowed_interval(comm).high >= mu ? LrcState::kAtRisk
                                            : LrcState::kViolated;
}

std::vector<spec::CommId> LrcMonitor::endangered() const {
  std::vector<spec::CommId> out;
  for (spec::CommId c = 0; c < static_cast<spec::CommId>(comms_.size());
       ++c) {
    if (state(c) != LrcState::kHealthy) out.push_back(c);
  }
  return out;
}

std::string LrcMonitor::summary() const {
  std::string out = "lrc monitor:\n";
  for (spec::CommId c = 0; c < static_cast<spec::CommId>(comms_.size());
       ++c) {
    const spec::Communicator& comm = spec_->communicator(c);
    out += "  " + comm.name + ": rate=" + format_double(windowed_rate(c)) +
           " mu=" + format_double(comm.lrc) + " [" +
           std::string(to_string(state(c))) + "]\n";
  }
  return out;
}

}  // namespace lrt::adapt
