// Transactional live workload update (adaptive layer).
//
// The paper's design-by-refinement story (Section 3) is a *static* one:
// a refined system may replace the original because schedulability
// (Lemma 1), reliability (Lemma 2) and hence validity (Prop. 2) transfer.
// This module turns that into a runtime capability: replace the workload
// of a LIVE simulation — splice a task, retime a pipeline, tighten an
// LRC — without stopping it, and without ever running an unverified or
// misbehaving mapping for more than a bounded probation window.
//
// The update is a four-stage transaction driven by an UpdateEngine
// mounted as the simulation's RuntimeMonitor:
//
//   propose   The new SpecificationConfig is diffed against the running
//             specification into a *dirty cone*: structurally changed
//             tasks and communicators plus their downstream dataflow
//             closure (everything whose SRG can change).
//   verify    Fast path: when the task sets match by name, the running
//             mapping is carried over and refine::check_refinement
//             discharges the swap with zero search — the paper's lemmas
//             transfer schedulability and reliability. Otherwise the
//             engine re-synthesizes with every task OUTSIDE the dirty
//             cone pinned to its running host set
//             (synth::SynthesisOptions::pinned_hosts), so the search
//             explores only the changed region; LRCs and EDF
//             schedulability are re-validated by the synthesizer. A
//             verification failure rejects the proposal — the running
//             workload is never touched.
//   install   The verified implementation is handed to the runtime at
//             the next specification-period boundary
//             (RuntimeMonitor::on_update_point): communicator state
//             carries over by name, so persisting communicators miss no
//             update; the boundary becomes the new specification's
//             epoch.
//   rollback  For `probation_periods` new-spec periods a fresh
//             LrcMonitor watches every committed update. A kViolated
//             verdict atomically restores the prior implementation at
//             the next boundary (counted as a second spec swap);
//             otherwise the transaction commits.
//
// One engine instance drives at most one transaction per run, mirroring
// the single-writer discipline of the runtime it monitors.
#ifndef LRT_ADAPT_LIVE_UPDATE_H_
#define LRT_ADAPT_LIVE_UPDATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adapt/lrc_monitor.h"
#include "impl/implementation.h"
#include "obs/sink.h"
#include "refine/refinement.h"
#include "sim/runtime.h"
#include "spec/specification.h"
#include "support/status.h"
#include "synth/synthesis.h"

namespace lrt::adapt {

/// How the verify stage discharged (or failed) the proposal.
enum class UpdatePath {
  kNone,            ///< not verified (rejected before either path applied)
  kRefined,         ///< refinement fast path: mapping carried, no search
  kResynthesized,   ///< dirty-cone re-synthesis produced a new mapping
};

/// Transaction lifecycle. Terminal states: kCommitted, kRolledBack,
/// kRejected.
enum class UpdateState {
  kIdle,          ///< no proposal yet
  kStaged,        ///< verified, waiting for an install boundary
  kProbation,     ///< installed, LrcMonitor may still roll it back
  kCommitted,     ///< probation elapsed with no violation
  kRolledBack,    ///< probation tripped; prior workload restored
  kRejected,      ///< verify failed; running workload never touched
};

[[nodiscard]] std::string_view to_string(UpdatePath path);
[[nodiscard]] std::string_view to_string(UpdateState state);

struct LiveUpdateOptions {
  /// Options for the re-synthesis path. `pinned_hosts` is overwritten by
  /// the engine (that is the point); everything else — strategy, engine,
  /// threads, allowed hosts — is honored.
  synth::SynthesisOptions synthesis;
  /// Probation watchdog configuration.
  LrcMonitorOptions lrc;
  /// New-spec periods the installed workload runs under watch before the
  /// transaction commits. 0 commits at the install boundary (no
  /// probation, no rollback).
  std::int64_t probation_periods = 10;
  /// Do not install before this instant (the engine keeps answering the
  /// runtime's update points with null until then).
  spec::Time earliest_install = 0;
  /// When the pinned re-synthesis is unsatisfiable, retry once with every
  /// pin released — trading locality for a global search — before
  /// rejecting.
  bool widen_on_unsat = true;
  /// Observability: adapt.updates_* counters and an "adapt/update" span
  /// covering propose -> resolution. Null falls back to the process-global
  /// sink.
  obs::Sink* sink = nullptr;
};

/// The transaction record, readable at any stage.
struct UpdateReport {
  UpdateState state = UpdateState::kIdle;
  UpdatePath path = UpdatePath::kNone;
  /// Names (new-spec perspective, ascending) inside the dirty cone.
  std::vector<std::string> dirty_tasks;
  std::vector<std::string> dirty_comms;
  spec::Time proposed_at = -1;   ///< instant passed to propose()
  spec::Time installed_at = -1;  ///< swap boundary, -1 if never installed
  spec::Time resolved_at = -1;   ///< commit/rollback/reject instant
  /// Human-readable reason for a rejection or rollback.
  std::string detail;
  /// The fast-path verdict (meaningful when the fast path was attempted).
  refine::RefinementReport refinement;
  /// Replications of the verified implementation (0 until verified).
  std::size_t replication_count = 0;

  [[nodiscard]] std::string summary() const;
};

/// Drives one live-update transaction against the simulation it monitors.
/// Mount as SimulationOptions::monitor, call propose() (before or during
/// the run), and read report() afterwards. The engine owns the staged
/// specification and implementation and keeps every workload it ever
/// handed to the runtime alive for its own lifetime, as the runtime
/// requires.
class UpdateEngine : public sim::RuntimeMonitor {
 public:
  /// `initial` is the workload the simulation starts on; it must outlive
  /// the engine.
  explicit UpdateEngine(const impl::Implementation& initial,
                        LiveUpdateOptions options = {});

  /// Stages a proposed replacement workload: diffs it against the running
  /// specification, verifies it (refinement fast path, else dirty-cone
  /// re-synthesis), and — on success — arms the install at the next
  /// eligible boundary. `now` stamps the report; pass 0 when proposing
  /// before the run. `sensor_bindings` bind input communicators the
  /// running workload does not already bind (by-name carry-over covers
  /// the rest).
  ///
  /// Returns an error only for API misuse (a transaction already in
  /// flight). Every well-formed call resolves to kStaged or kRejected —
  /// a rejection is a transaction outcome, not an error, and leaves the
  /// running workload untouched.
  [[nodiscard]] Status propose(
      spec::Time now, spec::SpecificationConfig proposed,
      std::vector<impl::ImplementationConfig::SensorBinding>
          sensor_bindings = {});

  // RuntimeMonitor:
  void on_update(spec::Time now, spec::CommId comm, bool reliable,
                 int contributors) override;
  const impl::Implementation* on_update_point(spec::Time now) override;

  [[nodiscard]] UpdateState state() const { return report_.state; }
  [[nodiscard]] const UpdateReport& report() const { return report_; }
  /// The workload currently in force from the engine's perspective.
  [[nodiscard]] const impl::Implementation& active() const {
    return *active_;
  }
  /// The staged/installed implementation (null before a successful
  /// verify).
  [[nodiscard]] const impl::Implementation* staged() const {
    return staged_impl_.get();
  }

 private:
  [[nodiscard]] Status verify(spec::SpecificationConfig proposed,
                              std::vector<impl::ImplementationConfig::
                                              SensorBinding> bindings);
  void reject(const std::string& why);
  void resolve(spec::Time now, UpdateState terminal);

  const impl::Implementation* initial_;
  LiveUpdateOptions options_;
  obs::Sink* sink_;

  const impl::Implementation* active_;    ///< currently-installed workload
  const impl::Implementation* previous_;  ///< rollback target
  std::shared_ptr<const spec::Specification> staged_spec_;
  std::unique_ptr<const impl::Implementation> staged_impl_;

  std::unique_ptr<LrcMonitor> probation_;
  spec::Time probation_ends_ = 0;
  bool rollback_pending_ = false;

  UpdateReport report_;
  std::int64_t span_start_us_ = 0;
};

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_LIVE_UPDATE_H_
