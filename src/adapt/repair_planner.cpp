#include "adapt/repair_planner.h"

#include <algorithm>

#include "sched/schedulability.h"
#include "support/strings.h"

namespace lrt::adapt {
namespace {

using arch::HostId;
using spec::CommId;
using spec::TaskId;

/// The current implementation's per-task time redundancy, carried into
/// every repair candidate so the re-execution budget is re-spent on the
/// replacement hosts.
std::vector<synth::SynthesisOptions::TaskRedundancy> redundancy_of(
    const impl::Implementation& current) {
  const auto num_tasks = current.specification().tasks().size();
  std::vector<synth::SynthesisOptions::TaskRedundancy> out(num_tasks);
  bool any = false;
  for (TaskId t = 0; t < static_cast<TaskId>(num_tasks); ++t) {
    auto& slot = out[static_cast<std::size_t>(t)];
    slot.reexecutions = current.reexecutions(t);
    slot.checkpoints = current.checkpoints(t);
    slot.checkpoint_overhead = current.checkpoint_overhead(t);
    any = any || slot.reexecutions > 0;
  }
  if (!any) out.clear();
  return out;
}

/// Sensor bindings of the current implementation, by name.
std::vector<impl::ImplementationConfig::SensorBinding> bindings_of(
    const impl::Implementation& current) {
  return current.to_config().sensor_bindings;
}

/// The reliability ceiling on the survivors: every task replicated on
/// every surviving host (replication never lowers an SRG), keeping the
/// current redundancy. Its per-communicator slack bounds what any repair
/// can achieve and therefore orders the shedding.
impl::ImplementationConfig ceiling_config(
    const impl::Implementation& current,
    const std::vector<HostId>& survivors) {
  const arch::Architecture& arch = current.architecture();
  impl::ImplementationConfig config = current.to_config();
  config.name = "repair-ceiling";
  for (auto& mapping : config.task_mappings) {
    mapping.hosts.clear();
    for (const HostId h : survivors) {
      mapping.hosts.push_back(arch.host(h).name);
    }
  }
  return config;
}

}  // namespace

std::string RepairPlan::describe() const {
  std::string out = feasible ? "repair: feasible mapping found"
                             : "repair: best-effort degraded mapping only";
  if (shed_communicators.empty()) {
    out += ", every LRC preserved";
  } else {
    out += ", shed LRCs (in slack order): " +
           join(shed_communicators, ", ");
  }
  out += "; schedulable=";
  out += schedulable ? "yes" : "no";
  out += ", candidates=" + std::to_string(candidates_evaluated);
  return out;
}

Result<RepairPlan> plan_repair(const impl::Implementation& current,
                               std::span<const arch::HostId> dead_hosts,
                               const RepairPolicy& policy) {
  const spec::Specification& spec = current.specification();
  const arch::Architecture& arch = current.architecture();
  const auto num_hosts = static_cast<HostId>(arch.hosts().size());
  const auto num_comms = static_cast<CommId>(spec.communicators().size());

  std::vector<bool> dead(static_cast<std::size_t>(num_hosts), false);
  for (const HostId h : dead_hosts) {
    if (h < 0 || h >= num_hosts) {
      return InvalidArgumentError("repair: dead host " + std::to_string(h) +
                                  " is outside the architecture");
    }
    dead[static_cast<std::size_t>(h)] = true;
  }
  std::vector<HostId> survivors;
  for (HostId h = 0; h < num_hosts; ++h) {
    if (!dead[static_cast<std::size_t>(h)]) survivors.push_back(h);
  }
  if (survivors.empty()) {
    return FailedPreconditionError(
        "repair: no surviving host to remap onto");
  }

  synth::SynthesisOptions options;
  options.strategy = policy.strategy;
  options.engine = policy.engine;
  options.threads = policy.threads;
  options.require_schedulable = policy.require_schedulable;
  options.max_replication_per_task = policy.max_replication_per_task;
  options.allowed_hosts = survivors;
  options.task_redundancy = redundancy_of(current);
  const auto bindings = bindings_of(current);

  RepairPlan plan;

  // Achievable slack per communicator, measured on the reliability
  // ceiling. Computed once: shedding does not change any SRG.
  auto ceiling_impl = impl::Implementation::Build(
      spec, arch, ceiling_config(current, survivors));
  if (!ceiling_impl.ok()) return ceiling_impl.status();
  LRT_ASSIGN_OR_RETURN(const reliability::ReliabilityReport ceiling_report,
                       reliability::analyze(*ceiling_impl));

  std::vector<bool> shed(static_cast<std::size_t>(num_comms), false);
  while (true) {
    auto synthesized = synth::synthesize(spec, arch, bindings, options);
    if (synthesized.ok()) {
      plan.feasible = true;
      plan.config = std::move(synthesized->config);
      plan.config.name = current.name() + "-repaired";
      plan.candidates_evaluated += synthesized->candidates_evaluated;
      break;
    }
    if (synthesized.status().code() != StatusCode::kUnsatisfiable) {
      return synthesized.status();
    }

    // Shed the unshed communicator with the least achievable slack
    // (ties: lowest CommId), then retry with its LRC waived.
    CommId victim = -1;
    double victim_slack = 0.0;
    for (const reliability::CommunicatorVerdict& verdict :
         ceiling_report.verdicts) {
      if (shed[static_cast<std::size_t>(verdict.comm)]) continue;
      if (victim == -1 || verdict.slack < victim_slack) {
        victim = verdict.comm;
        victim_slack = verdict.slack;
      }
    }
    if (victim == -1) {
      // Every LRC already waived and synthesis still fails: nothing on
      // the survivors is schedulable. Fall back to the ceiling mapping.
      plan.feasible = false;
      plan.config = ceiling_config(current, survivors);
      plan.config.name = current.name() + "-degraded";
      break;
    }
    shed[static_cast<std::size_t>(victim)] = true;
    plan.shed_ids.push_back(victim);
    plan.shed_communicators.push_back(spec.communicator(victim).name);
    options.relaxed_lrcs.push_back(victim);
  }

  // Re-validate the final mapping with the full Section 3 analysis and the
  // schedulability check — the committed numbers, not the search's.
  auto final_impl = impl::Implementation::Build(spec, arch, plan.config);
  if (!final_impl.ok()) return final_impl.status();
  LRT_ASSIGN_OR_RETURN(plan.reliability, reliability::analyze(*final_impl));
  LRT_ASSIGN_OR_RETURN(const sched::SchedulabilityReport sched_report,
                       sched::analyze_schedulability(*final_impl));
  plan.schedulable = sched_report.schedulable;
  return plan;
}

}  // namespace lrt::adapt
