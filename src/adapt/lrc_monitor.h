// Online LRC monitoring (adaptive layer): tracks each communicator's
// windowed update reliability against its declared mu_c.
//
// The paper's Proposition 1 discharges "limavg >= mu_c with probability 1"
// once, at design time. The monitor watches the same quantity at run time
// over a sliding window of update events and grades each communicator:
//  * kHealthy  — windowed rate >= mu_c;
//  * kAtRisk   — rate < mu_c but the Wilson interval still reaches mu_c:
//                statistically compatible with a healthy long-run average
//                (expected transiently even at nominal hrel);
//  * kViolated — the whole Wilson interval lies below mu_c: the window is
//                statistical evidence that the LRC is being missed.
#ifndef LRT_ADAPT_LRC_MONITOR_H_
#define LRT_ADAPT_LRC_MONITOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.h"
#include "spec/specification.h"

namespace lrt::adapt {

struct LrcMonitorOptions {
  /// Update events kept per communicator.
  int window = 200;
  /// z-score of the windowed Wilson interval (2.576 ~ 99%).
  double z = 2.576;
  /// Below this many observed updates the state is kHealthy (no evidence).
  int min_updates = 20;
};

enum class LrcState { kHealthy, kAtRisk, kViolated };

[[nodiscard]] std::string_view to_string(LrcState state);

/// Windowed per-communicator LRC watchdog. Fed from RuntimeMonitor's
/// on_update; single-threaded like the simulation that drives it.
class LrcMonitor {
 public:
  explicit LrcMonitor(const spec::Specification& spec,
                      LrcMonitorOptions options = {});

  void record_update(spec::Time now, spec::CommId comm, bool reliable);

  /// Forgets every windowed observation (ring, head, window_successes)
  /// while keeping the lifetime update counters. Called when the workload
  /// the monitor is judging changes under it — a repair remap or a live
  /// update install — so pre-change evidence cannot indict (or excuse) the
  /// post-change mapping. States return to kHealthy until min_updates
  /// fresh events accumulate.
  void reset(spec::Time now);

  /// Instant of the last reset() (0 before the first).
  [[nodiscard]] spec::Time last_reset() const { return last_reset_; }

  [[nodiscard]] LrcState state(spec::CommId comm) const;
  /// Windowed update reliability (1.0 before any update).
  [[nodiscard]] double windowed_rate(spec::CommId comm) const;
  [[nodiscard]] sim::ConfidenceInterval windowed_interval(
      spec::CommId comm) const;
  [[nodiscard]] std::int64_t updates_seen(spec::CommId comm) const;

  /// Communicators currently kAtRisk or kViolated, ascending by id.
  [[nodiscard]] std::vector<spec::CommId> endangered() const;

  /// Multi-line per-communicator table (rate vs mu_c, state).
  [[nodiscard]] std::string summary() const;

 private:
  struct CommState {
    std::vector<std::uint8_t> ring;
    int head = 0;
    int filled = 0;
    int window_successes = 0;
    std::int64_t updates = 0;
  };

  const spec::Specification* spec_;
  LrcMonitorOptions options_;
  std::vector<CommState> comms_;  // by CommId
  spec::Time last_reset_ = 0;
};

}  // namespace lrt::adapt

#endif  // LRT_ADAPT_LRC_MONITOR_H_
