#include "adapt/self_healing.h"

#include <string>
#include <utility>

namespace lrt::adapt {

SelfHealingController::SelfHealingController(
    const impl::Implementation& initial, SelfHealingOptions options)
    : initial_(&initial),
      options_(options),
      sink_(obs::resolve_sink(options.sink)),
      detector_(initial.architecture().hosts().size(),
                initial.architecture().sensors().size(), options.detector),
      lrc_(initial.specification(), options.lrc),
      repair_attempted_(initial.architecture().hosts().size(), false),
      post_repair_(initial.specification().communicators().size()) {}

void SelfHealingController::on_invocation(spec::Time now,
                                          spec::TaskId /*task*/,
                                          arch::HostId host, bool success) {
  detector_.record_host(now, host, success);
}

void SelfHealingController::on_sensor_update(spec::Time now,
                                             spec::CommId /*comm*/,
                                             arch::SensorId sensor,
                                             bool reliable) {
  detector_.record_sensor(now, sensor, reliable);
}

void SelfHealingController::on_update(spec::Time now, spec::CommId comm,
                                      bool reliable, int /*contributors*/) {
  if (sink_ != nullptr) {
    // state() is pure, so the before/after compare changes no behavior.
    const LrcState before = lrc_.state(comm);
    lrc_.record_update(now, comm, reliable);
    const LrcState after = lrc_.state(comm);
    if (after != before) {
      sink_->counter_add("adapt.lrc_transitions");
      sink_->counter_add("adapt.lrc_transitions." +
                         std::string(to_string(after)));
      sink_->instant("adapt", "lrc",
                     {{"comm", static_cast<double>(comm)},
                      {"t", static_cast<double>(now)},
                      {"state", static_cast<double>(after)}});
    }
  } else {
    lrc_.record_update(now, comm, reliable);
  }
  // Strictly after the commit boundary: updates at the boundary tick were
  // produced by replications still running under the old mapping.
  if (!repairs_.empty() && now > repairs_.back().committed_at) {
    PostRepairStats& stats = post_repair_[static_cast<std::size_t>(comm)];
    ++stats.updates;
    if (reliable) ++stats.reliable_updates;
  }
}

const impl::Implementation* SelfHealingController::on_period_boundary(
    spec::Time now) {
  if (!options_.enable_repair) return nullptr;

  std::vector<arch::HostId> dead;
  for (const arch::HostId h : detector_.suspected_hosts()) {
    if (!repair_attempted_[static_cast<std::size_t>(h)]) dead.push_back(h);
  }
  if (dead.empty()) return nullptr;
  // One repair attempt per host, win or lose: the dead-host evidence that
  // doomed a failed attempt would not change on retry.
  for (const arch::HostId h : dead) {
    repair_attempted_[static_cast<std::size_t>(h)] = true;
    if (sink_ != nullptr) {
      sink_->counter_add("adapt.suspicions");
      sink_->instant("adapt", "suspect",
                     {{"host", static_cast<double>(h)},
                      {"t", static_cast<double>(now)}});
    }
  }

  // Route around everything currently suspected, not only the new hosts.
  if (sink_ != nullptr) sink_->counter_add("adapt.repairs_planned");
  auto planned =
      plan_repair(active(), detector_.suspected_hosts(), options_.repair);
  if (!planned.ok()) {
    last_error_ = planned.status();
    if (sink_ != nullptr) sink_->counter_add("adapt.repair_failures");
    return nullptr;
  }
  auto built = impl::Implementation::Build(initial_->specification(),
                                           initial_->architecture(),
                                           planned->config);
  if (!built.ok()) {
    last_error_ = built.status();
    if (sink_ != nullptr) sink_->counter_add("adapt.repair_failures");
    return nullptr;
  }

  owned_.push_back(
      std::make_unique<impl::Implementation>(*std::move(built)));
  RepairRecord record;
  record.committed_at = now;
  record.dead_hosts = detector_.suspected_hosts();
  record.plan = *std::move(planned);
  repairs_.push_back(std::move(record));
  post_repair_.assign(post_repair_.size(), {});
  // Pre-repair evidence judged the outgoing mapping; start the watchdog's
  // window fresh for the one being installed.
  lrc_.reset(now);
  if (sink_ != nullptr) {
    sink_->counter_add("adapt.repairs_installed");
    sink_->instant(
        "adapt", "repair",
        {{"t", static_cast<double>(now)},
         {"dead_hosts", static_cast<double>(repairs_.back().dead_hosts.size())},
         {"shed",
          static_cast<double>(
              repairs_.back().plan.shed_communicators.size())}});
  }
  return owned_.back().get();
}

const impl::Implementation& SelfHealingController::active() const {
  return owned_.empty() ? *initial_ : *owned_.back();
}

}  // namespace lrt::adapt
