#include "adapt/self_healing.h"

#include <utility>

namespace lrt::adapt {

SelfHealingController::SelfHealingController(
    const impl::Implementation& initial, SelfHealingOptions options)
    : initial_(&initial),
      options_(options),
      detector_(initial.architecture().hosts().size(),
                initial.architecture().sensors().size(), options.detector),
      lrc_(initial.specification(), options.lrc),
      repair_attempted_(initial.architecture().hosts().size(), false),
      post_repair_(initial.specification().communicators().size()) {}

void SelfHealingController::on_invocation(spec::Time now,
                                          spec::TaskId /*task*/,
                                          arch::HostId host, bool success) {
  detector_.record_host(now, host, success);
}

void SelfHealingController::on_sensor_update(spec::Time now,
                                             spec::CommId /*comm*/,
                                             arch::SensorId sensor,
                                             bool reliable) {
  detector_.record_sensor(now, sensor, reliable);
}

void SelfHealingController::on_update(spec::Time now, spec::CommId comm,
                                      bool reliable, int /*contributors*/) {
  lrc_.record_update(now, comm, reliable);
  // Strictly after the commit boundary: updates at the boundary tick were
  // produced by replications still running under the old mapping.
  if (!repairs_.empty() && now > repairs_.back().committed_at) {
    PostRepairStats& stats = post_repair_[static_cast<std::size_t>(comm)];
    ++stats.updates;
    if (reliable) ++stats.reliable_updates;
  }
}

const impl::Implementation* SelfHealingController::on_period_boundary(
    spec::Time now) {
  if (!options_.enable_repair) return nullptr;

  std::vector<arch::HostId> dead;
  for (const arch::HostId h : detector_.suspected_hosts()) {
    if (!repair_attempted_[static_cast<std::size_t>(h)]) dead.push_back(h);
  }
  if (dead.empty()) return nullptr;
  // One repair attempt per host, win or lose: the dead-host evidence that
  // doomed a failed attempt would not change on retry.
  for (const arch::HostId h : dead) {
    repair_attempted_[static_cast<std::size_t>(h)] = true;
  }

  // Route around everything currently suspected, not only the new hosts.
  auto planned =
      plan_repair(active(), detector_.suspected_hosts(), options_.repair);
  if (!planned.ok()) {
    last_error_ = planned.status();
    return nullptr;
  }
  auto built = impl::Implementation::Build(initial_->specification(),
                                           initial_->architecture(),
                                           planned->config);
  if (!built.ok()) {
    last_error_ = built.status();
    return nullptr;
  }

  owned_.push_back(
      std::make_unique<impl::Implementation>(*std::move(built)));
  RepairRecord record;
  record.committed_at = now;
  record.dead_hosts = detector_.suspected_hosts();
  record.plan = *std::move(planned);
  repairs_.push_back(std::move(record));
  post_repair_.assign(post_repair_.size(), {});
  return owned_.back().get();
}

const impl::Implementation& SelfHealingController::active() const {
  return owned_.empty() ? *initial_ : *owned_.back();
}

}  // namespace lrt::adapt
