// The unified facade: one header, one vocabulary, for the whole pipeline.
//
// Four PRs of growth left the library with per-subsystem entry points
// (`Specification::Build`, `Architecture::Build`, `Implementation::Build`,
// `reliability::analyze`, `sim::simulate`, `sim::MonteCarloRunner`,
// `synth::synthesize`, `lint::lint_source`) that every example re-wired by
// hand. This header consolidates them behind a single shape:
//
//   * a `Workload` — the problem instance (specification + architecture) —
//     is built once and passed FIRST to every call;
//   * every verb is a thin `Result<T>` wrapper taking
//     `(workload, subject, options)` in that order;
//   * every options struct already shares `seed` / `threads` /
//     `obs::Sink* sink` semantics, so observability plugs in uniformly.
//
// The wrappers add no logic beyond a membership check (the subject must
// have been built against the workload's models — catching the
// dangling-reference bug class at the API boundary instead of in a
// crash); their results are bit-identical to the direct calls, which
// remain fully supported internals for callers that need the extra
// degrees of freedom (time-dependent phase lists, custom monitor
// factories, pre-parsed HTL programs).
//
// The one deliberate deviation: `lrt::lint` takes HTL *source*, not a
// workload — linting runs before a workload can exist, on programs that
// may not even flatten.
#ifndef LRT_LRT_LRT_H_
#define LRT_LRT_LRT_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "adapt/live_update.h"
#include "arch/architecture.h"
#include "impl/implementation.h"
#include "lint/lint.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"
#include "sim/runtime.h"
#include "spec/specification.h"
#include "support/status.h"
#include "synth/synthesis.h"

namespace lrt {

/// The problem instance: a validated specification plus the architecture
/// it runs on. Shared ownership keeps the models alive for as long as any
/// Implementation built from them — the facade's answer to the "spec must
/// outlive impl" lifetime rule the direct Build calls leave to the caller.
struct Workload {
  std::shared_ptr<const spec::Specification> spec;
  std::shared_ptr<const arch::Architecture> arch;

  /// Stable 64-bit identity of the problem instance: hash_bytes over the
  /// canonical JSON serialization of spec + arch (spec::to_json /
  /// arch::to_json). Equal configs hash equal across processes, threads,
  /// and declaration order of map-like fields — lrtd keys its resident
  /// evaluator cache on it. Precondition: non-empty workload.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Workload::fingerprint computed at the config level, without building
/// the models — byte-for-byte the same hash (the canonical serialization
/// materializes everything Build would). lrtd uses this to key cache
/// lookups straight from parsed request configs.
[[nodiscard]] std::uint64_t fingerprint(
    const spec::SpecificationConfig& spec_config,
    const arch::ArchitectureConfig& arch_config);

/// Validates both configs and assembles a Workload (owning).
[[nodiscard]] Result<Workload> build_workload(
    spec::SpecificationConfig spec_config,
    arch::ArchitectureConfig arch_config);

/// Wraps already-built models WITHOUT taking ownership (no-op deleters):
/// for models owned elsewhere, e.g. plant::ThreeTankSystem's. The caller
/// keeps them alive for the Workload's lifetime.
[[nodiscard]] Workload borrow_workload(const spec::Specification& spec,
                                       const arch::Architecture& arch);

/// Builds a replication mapping against the workload's models. The
/// returned Implementation references the workload's spec/arch — keep the
/// Workload (or a copy of its shared_ptrs) alive alongside it.
[[nodiscard]] Result<impl::Implementation> build_implementation(
    const Workload& workload, impl::ImplementationConfig config);

/// Joint reliability analysis (paper Prop. 1): bit-identical to
/// reliability::analyze(implementation).
[[nodiscard]] Result<reliability::ReliabilityReport> analyze(
    const Workload& workload, const impl::Implementation& implementation);

struct SimulateOptions {
  sim::SimulationOptions simulation;
  /// Plant model driving sensor values; null = a fault-free
  /// sim::NullEnvironment owned by the call.
  sim::Environment* environment = nullptr;
};

/// One fault-injecting simulation run: bit-identical to
/// sim::simulate(implementation, env, options.simulation).
[[nodiscard]] Result<sim::SimulationResult> simulate(
    const Workload& workload, const impl::Implementation& implementation,
    const SimulateOptions& options = {});

/// A Monte Carlo campaign over the implementation: bit-identical to
/// sim::MonteCarloRunner(options).run(implementation).
[[nodiscard]] Result<sim::ValidationReport> validate(
    const Workload& workload, const impl::Implementation& implementation,
    const sim::MonteCarloOptions& options = {});

/// Replication-mapping synthesis: bit-identical to
/// synth::synthesize(*workload.spec, *workload.arch, bindings, options).
[[nodiscard]] Result<synth::SynthesisResult> synthesize(
    const Workload& workload,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const synth::SynthesisOptions& options = {});

struct UpdateOptions {
  /// Transaction policy: verification strategy, probation window,
  /// earliest install instant, observability.
  adapt::LiveUpdateOptions update;
  /// The run the transaction executes inside. `run.simulation.monitor`
  /// must be null — the update engine IS the monitor for this run.
  SimulateOptions run;
  /// Sensor bindings for input communicators the running workload does
  /// not already bind (a spliced input, say); carried-over communicators
  /// keep their existing sensors by name.
  std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings;
};

/// Runs one transactional live update end to end: stages `proposed`
/// against the running `implementation` (propose + verify before the
/// simulation starts), simulates under an adapt::UpdateEngine monitor —
/// installing at the first eligible boundary, watching probation, rolling
/// back on regression — and returns the transaction record. A rejected
/// proposal still runs the simulation untouched (its state says
/// kRejected and the workload never swaps). Errors are reserved for API
/// misuse: empty workload, foreign implementation, or a monitor already
/// set in `options.run`.
[[nodiscard]] Result<adapt::UpdateReport> update(
    const Workload& workload, const impl::Implementation& implementation,
    spec::SpecificationConfig proposed, const UpdateOptions& options = {});

/// Static analysis of HTL source: bit-identical to
/// lint::lint_source(source, options). Deviates from the
/// (workload, subject, options) shape on purpose — linting runs before a
/// workload can exist — and from the `lint` verb because that name is the
/// subsystem's namespace (`lrt::lint::`).
[[nodiscard]] Result<lint::LintResult> check(
    std::string_view source, const lint::LintOptions& options = {});

}  // namespace lrt

#endif  // LRT_LRT_LRT_H_
