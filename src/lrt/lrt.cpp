#include "lrt/lrt.h"

#include <cassert>
#include <utility>

#include "arch/arch_json.h"
#include "spec/spec_json.h"
#include "support/hash.h"

namespace lrt {
namespace {

/// The facade's one piece of added logic: the subject must have been
/// built against this workload's models, or every downstream reference
/// the Implementation holds is dangling-in-waiting.
Status check_membership(const Workload& workload,
                        const impl::Implementation& implementation) {
  if (workload.spec == nullptr || workload.arch == nullptr) {
    return InvalidArgumentError(
        "workload is empty: build_workload/borrow_workload it first");
  }
  // A lifetime/membership violation, not a malformed argument: the
  // implementation is valid, just built against other models — so it maps
  // to kFailedPrecondition on the wire (DESIGN.md §5k status audit).
  if (&implementation.specification() != workload.spec.get() ||
      &implementation.architecture() != workload.arch.get()) {
    return FailedPreconditionError(
        "implementation was not built against this workload's "
        "specification/architecture");
  }
  return Status::Ok();
}

Status check_models(const Workload& workload) {
  if (workload.spec == nullptr || workload.arch == nullptr) {
    return InvalidArgumentError(
        "workload is empty: build_workload/borrow_workload it first");
  }
  return Status::Ok();
}

}  // namespace

std::uint64_t Workload::fingerprint() const {
  assert(spec != nullptr && arch != nullptr &&
         "fingerprint() requires a non-empty workload");
  return lrt::fingerprint(spec->to_config(), arch->to_config());
}

std::uint64_t fingerprint(const spec::SpecificationConfig& spec_config,
                          const arch::ArchitectureConfig& arch_config) {
  const std::uint64_t seed = hash_bytes(spec::to_json(spec_config));
  return hash_bytes(arch::to_json(arch_config), seed);
}

Result<Workload> build_workload(spec::SpecificationConfig spec_config,
                                arch::ArchitectureConfig arch_config) {
  LRT_ASSIGN_OR_RETURN(spec::Specification spec,
                       spec::Specification::Build(std::move(spec_config)));
  LRT_ASSIGN_OR_RETURN(arch::Architecture arch,
                       arch::Architecture::Build(std::move(arch_config)));
  Workload workload;
  workload.spec =
      std::make_shared<const spec::Specification>(std::move(spec));
  workload.arch = std::make_shared<const arch::Architecture>(std::move(arch));
  return workload;
}

Workload borrow_workload(const spec::Specification& spec,
                         const arch::Architecture& arch) {
  Workload workload;
  workload.spec = std::shared_ptr<const spec::Specification>(
      &spec, [](const spec::Specification*) {});
  workload.arch = std::shared_ptr<const arch::Architecture>(
      &arch, [](const arch::Architecture*) {});
  return workload;
}

Result<impl::Implementation> build_implementation(
    const Workload& workload, impl::ImplementationConfig config) {
  LRT_RETURN_IF_ERROR(check_models(workload));
  return impl::Implementation::Build(*workload.spec, *workload.arch,
                                     std::move(config));
}

Result<reliability::ReliabilityReport> analyze(
    const Workload& workload, const impl::Implementation& implementation) {
  LRT_RETURN_IF_ERROR(check_membership(workload, implementation));
  return reliability::analyze(implementation);
}

Result<sim::SimulationResult> simulate(
    const Workload& workload, const impl::Implementation& implementation,
    const SimulateOptions& options) {
  LRT_RETURN_IF_ERROR(check_membership(workload, implementation));
  if (options.environment != nullptr) {
    return sim::simulate(implementation, *options.environment,
                         options.simulation);
  }
  sim::NullEnvironment env;
  return sim::simulate(implementation, env, options.simulation);
}

Result<sim::ValidationReport> validate(
    const Workload& workload, const impl::Implementation& implementation,
    const sim::MonteCarloOptions& options) {
  LRT_RETURN_IF_ERROR(check_membership(workload, implementation));
  const sim::MonteCarloRunner runner(options);
  return runner.run(implementation);
}

Result<synth::SynthesisResult> synthesize(
    const Workload& workload,
    std::vector<impl::ImplementationConfig::SensorBinding> sensor_bindings,
    const synth::SynthesisOptions& options) {
  LRT_RETURN_IF_ERROR(check_models(workload));
  return synth::synthesize(*workload.spec, *workload.arch,
                           std::move(sensor_bindings), options);
}

Result<adapt::UpdateReport> update(const Workload& workload,
                                   const impl::Implementation& implementation,
                                   spec::SpecificationConfig proposed,
                                   const UpdateOptions& options) {
  LRT_RETURN_IF_ERROR(check_membership(workload, implementation));
  if (options.run.simulation.monitor != nullptr) {
    return InvalidArgumentError(
        "lrt::update installs its own RuntimeMonitor; "
        "options.run.simulation.monitor must be null");
  }
  adapt::UpdateEngine engine(implementation, options.update);
  LRT_RETURN_IF_ERROR(
      engine.propose(0, std::move(proposed), options.sensor_bindings));
  sim::SimulationOptions sim_options = options.run.simulation;
  sim_options.monitor = &engine;
  Result<sim::SimulationResult> run = [&] {
    if (options.run.environment != nullptr) {
      return sim::simulate(implementation, *options.run.environment,
                           sim_options);
    }
    sim::NullEnvironment env;
    return sim::simulate(implementation, env, sim_options);
  }();
  LRT_RETURN_IF_ERROR(run.status());
  return engine.report();
}

Result<lint::LintResult> check(std::string_view source,
                               const lint::LintOptions& options) {
  return lint::lint_source(source, options);
}

}  // namespace lrt
