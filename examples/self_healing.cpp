// Self-healing three-tank system: a permanent host unplug that the static
// mapping cannot survive, repaired online by the adaptive layer.
//
// Four parts, each a gate (the binary exits nonzero if any fails):
//  1. Single-run story: scenario 1 (t1, t2 replicated on {h1, h2}) with an
//     0.98 control LRC; h1 is unplugged permanently mid-run. The failure
//     detector suspects h1 after 24 consecutive silent invocations, the
//     repair planner remaps onto {h2, h3}, re-runs the Section 3 analysis
//     and the schedulability check, and the runtime installs the repaired
//     mapping at the next period boundary — no LRC shed.
//  2. Static-vs-adaptive Monte Carlo: under the same fault plan, the
//     static mapping demonstrably misses the 0.98 control LRC, while the
//     self-healing runtime's post-repair empirical reliability meets every
//     mu_c (Wilson interval not below mu_c) and the re-analyzed lambda_c.
//  3. Capacity-starved degradation: the 2-host platform, where losing h1
//     leaves no mapping that can meet 0.98. The planner sheds u1 then u2
//     (least achievable slack first) and the survivors' LRCs still hold.
//  4. False-positive guard: pure Bernoulli faults at nominal hrel across
//     the full trial budget must never trip a repair.
//
// Build & run:
//   ./build/examples/self_healing [trials] [periods] [report.json]
//     [--trace-out trace.json] [--metrics-out metrics.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "adapt/recovery_validation.h"
#include "adapt/self_healing.h"
#include "obs/session.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/environment.h"
#include "sim/monte_carlo.h"
#include "support/argparse.h"

using namespace lrt;

namespace {

constexpr arch::HostId kH1 = 0;

plant::ThreeTankScenario scenario_with(int host_count) {
  plant::ThreeTankScenario scenario;
  scenario.variant = plant::ThreeTankVariant::kReplicatedTasks;
  scenario.lrc_controls = 0.98;
  scenario.host_count = host_count;
  return scenario;
}

/// Unplug h1 permanently at 20% of the run.
sim::FaultPlan unplug_h1(std::int64_t periods) {
  sim::FaultPlan faults;
  faults.host_events.push_back({periods / 5 * 500, kH1, false});
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("self_healing",
                   "adaptive-recovery validation of the 3TS case study");
  parser.set_positional_usage("[trials] [periods] [report.json]");
  std::string engine_name = "tick";
  parser.add_string("--engine", &engine_name,
                    "simulation engine: tick | event | parallel "
                    "(bit-identical)");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  if (const Status status = parser.parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  const auto& args = parser.positionals();
  const std::int64_t trials =
      args.size() > 0 ? std::atoll(args[0].c_str()) : 100;
  const std::int64_t periods =
      args.size() > 1 ? std::atoll(args[1].c_str()) : 400;
  const std::string report_path = args.size() > 2 ? args[2] : "";
  if (engine_name != "tick" && engine_name != "event" &&
      engine_name != "parallel") {
    std::fprintf(stderr,
                 "unknown --engine '%s' (want tick | event | parallel)\n",
                 engine_name.c_str());
    return 2;
  }
  const auto engine =
      engine_name == "event" ? sim::SimulationOptions::Engine::kEvent
      : engine_name == "parallel"
          ? sim::SimulationOptions::Engine::kParallelEvent
          : sim::SimulationOptions::Engine::kTick;
  const obs::ScopedSession session(obs_options);
  bool ok = true;

  // The exhaustive strategy exercises the instrumented branch-and-bound
  // fast engine (prunes, incumbent updates) on every planned repair; the
  // planned mappings still pass all four gates below.
  adapt::SelfHealingOptions healing;
  healing.repair.strategy = synth::SynthesisOptions::Strategy::kExhaustive;

  // --- part 1: single-run story --------------------------------------
  auto system = plant::make_three_tank_system(scenario_with(3));
  if (!system.ok()) {
    std::printf("3TS build error: %s\n",
                system.status().to_string().c_str());
    return 1;
  }
  adapt::SelfHealingController controller(*system->implementation, healing);
  sim::SimulationOptions run;
  run.engine = engine;
  run.faults = unplug_h1(periods);
  run.periods = periods;
  run.actuator_comms = {"u1", "u2"};
  run.monitor = &controller;
  sim::NullEnvironment env;
  auto single = sim::simulate(*system->implementation, env, run);
  if (!single.ok()) {
    std::printf("simulation error: %s\n",
                single.status().to_string().c_str());
    return 1;
  }
  std::printf("--- single run: permanent h1 unplug at tick %lld ---\n",
              static_cast<long long>(run.faults.host_events[0].time));
  if (controller.repaired()) {
    const adapt::RepairRecord& repair = controller.repairs().front();
    std::printf(
        "h1 suspected at tick %lld (after %d consecutive misses), "
        "repair committed at tick %lld\n",
        static_cast<long long>(
            controller.detector().host_suspected_since(kH1)),
        controller.detector().options().suspect_after_misses,
        static_cast<long long>(repair.committed_at));
    std::printf("%s\n", repair.plan.describe().c_str());
    std::printf("re-analyzed mapping:\n%s",
                repair.plan.reliability.summary().c_str());
    ok = ok && repair.plan.feasible && repair.plan.schedulable &&
         repair.plan.shed_communicators.empty() &&
         single->remaps_installed == 1;
  } else {
    std::printf("controller never repaired: %s\n",
                controller.last_error().to_string().c_str());
    ok = false;
  }

  // --- part 2: static-vs-adaptive Monte Carlo -------------------------
  std::printf("\n--- monte carlo: static vs self-healing (%lld trials, "
              "%lld periods) ---\n",
              static_cast<long long>(trials),
              static_cast<long long>(periods));
  sim::MonteCarloOptions mc;
  mc.trials = trials;
  mc.simulation.engine = engine;
  mc.simulation.periods = periods;
  mc.simulation.faults = unplug_h1(periods);
  mc.simulation.actuator_comms = {"u1", "u2"};

  sim::MonteCarloRunner static_runner(mc);
  const auto static_report = static_runner.run(*system->implementation);
  if (!static_report.ok()) {
    std::printf("static campaign error: %s\n",
                static_report.status().to_string().c_str());
    return 1;
  }
  const sim::CommAggregate* static_u1 = static_report->find("u1");
  std::printf("static u1: empirical=%.6f ci_high=%.6f vs mu=0.98 -> %s\n",
              static_u1->empirical, static_u1->interval.high,
              static_u1->meets_lrc ? "meets (unexpected)" : "MISSES");
  ok = ok && !static_u1->meets_lrc;

  adapt::RecoveryValidationOptions validation;
  validation.monte_carlo = mc;
  validation.controller = healing;
  const adapt::RecoveryValidator validator(validation);
  const auto recovery = validator.run(*system->implementation);
  if (!recovery.ok()) {
    std::printf("recovery campaign error: %s\n",
                recovery.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", recovery->summary().c_str());
  ok = ok && recovery->recovery_validated &&
       recovery->repaired_trials == trials &&
       recovery->shed_communicators.empty();

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::printf("cannot write %s\n", report_path.c_str());
      return 1;
    }
    out << adapt::to_json(*recovery) << "\n";
    std::printf("report written to %s\n", report_path.c_str());
  }

  // --- part 3: capacity-starved degradation ---------------------------
  std::printf("\n--- capacity-starved 2-host platform ---\n");
  auto starved = plant::make_three_tank_system(scenario_with(2));
  if (!starved.ok()) {
    std::printf("2-host build error: %s\n",
                starved.status().to_string().c_str());
    return 1;
  }
  const auto plan = adapt::plan_repair(*starved->implementation,
                                       std::vector<arch::HostId>{kH1});
  if (!plan.ok()) {
    std::printf("planner error: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", plan->describe().c_str());
  const bool shed_controls = plan->shed_communicators.size() == 2 &&
                             plan->shed_communicators[0] == "u1" &&
                             plan->shed_communicators[1] == "u2";
  if (!shed_controls) {
    std::printf("expected exactly u1, u2 shed (least slack first)\n");
  }
  ok = ok && plan->feasible && shed_controls && plan->schedulable;
  for (const reliability::CommunicatorVerdict& verdict :
       plan->reliability.verdicts) {
    const bool shed = verdict.name == "u1" || verdict.name == "u2";
    if (!shed && !verdict.satisfied) {
      std::printf("surviving LRC of %s violated after degradation\n",
                  verdict.name.c_str());
      ok = false;
    }
  }

  // --- part 4: false-positive guard -----------------------------------
  std::printf("\n--- false-positive guard: nominal Bernoulli faults ---\n");
  sim::MonteCarloOptions nominal = mc;
  nominal.simulation.faults.host_events.clear();
  adapt::RecoveryValidationOptions guard;
  guard.monte_carlo = nominal;
  guard.controller = healing;
  const adapt::RecoveryValidator guard_validator(guard);
  const auto guarded = guard_validator.run(*system->implementation);
  if (!guarded.ok()) {
    std::printf("guard campaign error: %s\n",
                guarded.status().to_string().c_str());
    return 1;
  }
  std::printf("repairs under nominal faults: %lld (want 0), "
              "remaps installed: %lld (want 0)\n",
              static_cast<long long>(guarded->repaired_trials),
              static_cast<long long>(guarded->monte_carlo.remaps_installed));
  ok = ok && guarded->repaired_trials == 0 &&
       guarded->monte_carlo.remaps_installed == 0;

  std::printf(ok ? "\nself-healing validation PASSED\n"
                 : "\nself-healing validation FAILED\n");
  return ok ? 0 : 1;
}
