// lrt_lint — the command-line front-end of the lrt-lint static analyzer.
//
//   lrt_lint [--format text|json|sarif] [--output FILE] [--fix]
//            [--max-product-nodes N]
//            [--rule RULE=SEV]... [--mode MODULE=MODE]... <file.htl>...
//
// Lints each program against the rule catalog of DESIGN.md section 5d
// (write-write races, memory/unsafe cycles, infeasible LRCs, dead
// communicators, missing defaults, period mismatches, unreachable modes,
// duplicate write ports) and renders the combined diagnostics as
// compiler-style text, tool-native JSON, or SARIF 2.1.0 for CI upload.
//
// RULE is a rule id (LRT004) or name (lrc-infeasible); SEV is one of
// off, note, warning, error. --mode pins the flattened mode of a module
// (unlisted modules use their start modes).
//
// --fix applies the structured fix-its the rules attach (delete dead
// declarations and switches, insert explicit defaults, drop duplicate
// ports) to each file in place, then reports the diagnostics that
// remain. With --output (one input file only) the fixed source is
// written there and the input is left untouched.
//
// Exit status: 0 when no error-severity diagnostics were found, 1 when
// at least one was (or a file could not be read), 2 on usage errors.
//
// Example:  ./build/examples/lrt_lint --format sarif examples/htl/*.htl
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/fixit.h"
#include "lint/lint.h"
#include "lint/sarif.h"
#include "obs/session.h"
#include "support/argparse.h"

using namespace lrt;

int main(int argc, char** argv) {
  ArgParser parser("lrt_lint", "lrt-lint static analyzer front-end");
  parser.set_positional_usage("<file.htl>...");
  std::string format = "text";
  std::string output_path;
  bool fix = false;
  std::int64_t max_product_nodes = 1024;
  std::vector<std::string> rule_flags;
  std::vector<std::string> mode_pins;
  parser.add_string("--format", &format, "text, json, or sarif");
  parser.add_string("--output", &output_path,
                    "write the rendered diagnostics to FILE (with --fix: "
                    "the fixed source)");
  parser.add_flag("--fix", &fix,
                  "apply the rules' mechanical fix-its to the input files");
  parser.add_int("--max-product-nodes", &max_product_nodes,
                 "mode-product supergraph node cap for the cross-mode "
                 "rules (LRT019 reports when it is hit)");
  parser.add_repeated("--rule", &rule_flags,
                      "RULE=SEV severity override (id or name; off, note, "
                      "warning, error)");
  parser.add_repeated("--mode", &mode_pins,
                      "MODULE=MODE pin for the flattened mode selection");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  lint::LintOptions options;
  options.rule_flags = rule_flags;
  if (max_product_nodes > 0) {
    options.max_product_nodes = static_cast<std::size_t>(max_product_nodes);
  }
  bool bad_usage = !status.ok() || parser.positionals().empty();
  if (fix && !output_path.empty() && parser.positionals().size() != 1) {
    std::fprintf(stderr,
                 "lrt_lint: --fix with --output takes exactly one input "
                 "file\n");
    bad_usage = true;
  }
  if (!status.ok())
    std::fprintf(stderr, "lrt_lint: %s\n", status.to_string().c_str());
  for (const std::string& pin : mode_pins) {
    const std::size_t eq = pin.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pin.size()) {
      bad_usage = true;
      break;
    }
    options.selection.mode_by_module[pin.substr(0, eq)] = pin.substr(eq + 1);
  }
  const bool want_text = format == "text";
  const bool want_json = format == "json";
  const bool want_sarif = format == "sarif";
  if (bad_usage || (!want_text && !want_json && !want_sarif)) {
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  const std::vector<std::string>& paths = parser.positionals();
  const obs::ScopedSession session(obs_options);

  bool read_failure = false;
  int errors = 0;
  int warnings = 0;
  std::vector<lint::Diagnostic> diagnostics;
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "lrt_lint: cannot open '%s'\n", path.c_str());
      read_failure = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string source = buffer.str();
    options.file = path;
    auto result = lint::lint_source(source, options);
    if (!result.ok()) {
      // Only invalid options reach here (e.g. an unknown --rule), so the
      // remaining files would fail identically.
      std::fprintf(stderr, "lrt_lint: %s\n",
                   result.status().to_string().c_str());
      return 2;
    }
    if (fix) {
      const auto fixed = lint::apply_fixits(source, result->diagnostics);
      if (!fixed.ok()) {
        std::fprintf(stderr, "lrt_lint: %s\n",
                     fixed.status().to_string().c_str());
        return 1;
      }
      const std::string& target = output_path.empty() ? path : output_path;
      if (fixed->applied > 0 || !output_path.empty()) {
        std::ofstream out(target);
        if (!out) {
          std::fprintf(stderr, "lrt_lint: cannot write '%s'\n",
                       target.c_str());
          return 1;
        }
        out << fixed->text;
      }
      std::fprintf(stderr, "lrt_lint: %s: applied %d fix(es), skipped %d\n",
                   path.c_str(), fixed->applied, fixed->skipped);
      // Report the diagnostics that remain after fixing, not the ones
      // the fixes just resolved.
      result = lint::lint_source(fixed->text, options);
      if (!result.ok()) {
        std::fprintf(stderr, "lrt_lint: %s\n",
                     result.status().to_string().c_str());
        return 2;
      }
    }
    errors += result->errors();
    warnings += result->warnings();
    diagnostics.insert(diagnostics.end(), result->diagnostics.begin(),
                       result->diagnostics.end());
  }

  std::string rendered;
  if (want_sarif) {
    rendered = lint::to_sarif(diagnostics);
  } else if (want_json) {
    rendered = lint::to_json(diagnostics);
  } else {
    rendered = lint::render_text(diagnostics);
  }
  if (!output_path.empty() && !fix) {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "lrt_lint: cannot write '%s'\n",
                   output_path.c_str());
      return 1;
    }
    out << rendered;
  } else {
    // With --fix, --output already received the fixed source; the
    // remaining diagnostics go to stdout.
    std::fputs(rendered.c_str(), stdout);
  }
  if (want_text) {
    std::fprintf(stderr, "lrt_lint: %zu file(s), %d error(s), %d warning(s)\n",
                 paths.size(), errors, warnings);
  }
  return errors > 0 || read_failure ? 1 : 0;
}
