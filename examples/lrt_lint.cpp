// lrt_lint — the command-line front-end of the lrt-lint static analyzer.
//
//   lrt_lint [--format text|json|sarif] [--output FILE]
//            [--rule RULE=SEV]... [--mode MODULE=MODE]... <file.htl>...
//
// Lints each program against the rule catalog of DESIGN.md section 5d
// (write-write races, memory/unsafe cycles, infeasible LRCs, dead
// communicators, missing defaults, period mismatches, unreachable modes,
// duplicate write ports) and renders the combined diagnostics as
// compiler-style text, tool-native JSON, or SARIF 2.1.0 for CI upload.
//
// RULE is a rule id (LRT004) or name (lrc-infeasible); SEV is one of
// off, note, warning, error. --mode pins the flattened mode of a module
// (unlisted modules use their start modes).
//
// Exit status: 0 when no error-severity diagnostics were found, 1 when
// at least one was (or a file could not be read), 2 on usage errors.
//
// Example:  ./build/examples/lrt_lint --format sarif examples/htl/*.htl
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/sarif.h"

using namespace lrt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lrt_lint [--format text|json|sarif] [--output FILE] "
               "[--rule RULE=SEV]... [--mode MODULE=MODE]... <file.htl>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* format = "text";
  const char* output_path = nullptr;
  lint::LintOptions options;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      options.rule_flags.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string pin = argv[++i];
      const std::size_t eq = pin.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == pin.size()) {
        return usage();
      }
      options.selection.mode_by_module[pin.substr(0, eq)] =
          pin.substr(eq + 1);
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) return usage();
  const bool want_text = std::strcmp(format, "text") == 0;
  const bool want_json = std::strcmp(format, "json") == 0;
  const bool want_sarif = std::strcmp(format, "sarif") == 0;
  if (!want_text && !want_json && !want_sarif) return usage();

  bool read_failure = false;
  int errors = 0;
  int warnings = 0;
  std::vector<lint::Diagnostic> diagnostics;
  for (const char* path : paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "lrt_lint: cannot open '%s'\n", path);
      read_failure = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    options.file = path;
    const auto result = lint::lint_source(buffer.str(), options);
    if (!result.ok()) {
      // Only invalid options reach here (e.g. an unknown --rule), so the
      // remaining files would fail identically.
      std::fprintf(stderr, "lrt_lint: %s\n",
                   result.status().to_string().c_str());
      return 2;
    }
    errors += result->errors();
    warnings += result->warnings();
    diagnostics.insert(diagnostics.end(), result->diagnostics.begin(),
                       result->diagnostics.end());
  }

  std::string rendered;
  if (want_sarif) {
    rendered = lint::to_sarif(diagnostics);
  } else if (want_json) {
    rendered = lint::to_json(diagnostics);
  } else {
    rendered = lint::render_text(diagnostics);
  }
  if (output_path != nullptr) {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "lrt_lint: cannot write '%s'\n", output_path);
      return 1;
    }
    out << rendered;
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  if (want_text) {
    std::fprintf(stderr, "lrt_lint: %zu file(s), %d error(s), %d warning(s)\n",
                 paths.size(), errors, warnings);
  }
  return errors > 0 || read_failure ? 1 : 0;
}
