// Quickstart: declare a small real-time task set with logical reliability
// constraints, map it onto a two-host architecture, and run the joint
// schedulability/reliability analysis plus a fault-injecting simulation —
// all through the unified lrt:: facade (lrt/lrt.h).
//
//   sensor --> s --[filter]--> level --[control]--> command
//
// Build & run:  ./build/examples/quickstart
//               [--trace-out trace.json] [--metrics-out metrics.json]
#include <cstdio>

#include "lrt/lrt.h"
#include "obs/session.h"
#include "sched/schedulability.h"
#include "support/argparse.h"

using namespace lrt;

int main(int argc, char** argv) {
  ArgParser parser("quickstart", "facade walkthrough of the full pipeline");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  if (const Status status = parser.parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  const obs::ScopedSession session(obs_options);

  // --- 1. Workload: communicators (with LRCs), tasks, and the hosts -----
  spec::SpecificationConfig spec_config;
  spec_config.name = "quickstart";
  spec_config.communicators = {
      // name, type, init, period (ticks), LRC
      {"s", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.95},
      {"level", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.90},
      {"command", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.90},
  };
  {
    spec::SpecificationConfig::TaskConfig filter;
    filter.name = "filter";
    filter.inputs = {{"s", 0}};        // reads s at time 0
    filter.outputs = {{"level", 1}};   // writes level at time 10
    filter.model = spec::FailureModel::kSeries;
    filter.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{spec::Value::real(in[0].as_real())};
    };
    spec_config.tasks.push_back(std::move(filter));

    spec::SpecificationConfig::TaskConfig control;
    control.name = "control";
    control.inputs = {{"level", 1}};    // reads level at time 10
    control.outputs = {{"command", 2}}; // writes command at time 20
    control.model = spec::FailureModel::kSeries;
    control.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{
          spec::Value::real(0.5 - in[0].as_real())};
    };
    spec_config.tasks.push_back(std::move(control));
  }
  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}, {"h2", 0.97}};
  arch_config.sensors = {{"gauge", 0.98}};
  arch_config.default_wcet = 4;
  arch_config.default_wctt = 1;
  const auto workload =
      build_workload(std::move(spec_config), std::move(arch_config));
  if (!workload.ok()) {
    std::printf("workload error: %s\n",
                workload.status().to_string().c_str());
    return 1;
  }
  std::printf("specification '%s': %zu tasks, hyperperiod %lld ticks\n",
              workload->spec->name().c_str(), workload->spec->tasks().size(),
              static_cast<long long>(workload->spec->hyperperiod()));

  // --- 2. Implementation: the replication mapping -----------------------
  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {{"filter", {"h1"}},
                               {"control", {"h1", "h2"}}};  // replicated!
  impl_config.sensor_bindings = {{"s", "gauge"}};
  const auto impl = build_implementation(*workload, std::move(impl_config));
  if (!impl.ok()) {
    std::printf("impl error: %s\n", impl.status().to_string().c_str());
    return 1;
  }

  // --- 3. Joint analysis -------------------------------------------------
  const auto reliability = analyze(*workload, *impl);
  const auto schedulability = sched::analyze_schedulability(*impl);
  std::printf("\n== reliability analysis (Prop. 1) ==\n%s",
              reliability->summary().c_str());
  std::printf("\n== schedulability analysis ==\n%s",
              schedulability->summary().c_str());

  // --- 4. Validate empirically with the fault-injecting runtime ---------
  SimulateOptions options;
  options.simulation.periods = 100'000;
  options.simulation.faults.seed = 2008;
  const auto result = simulate(*workload, *impl, options);
  std::printf("\n== simulation (%lld periods) ==\n",
              static_cast<long long>(result->periods));
  for (const auto& stats : result->comm_stats) {
    std::printf("  %-8s empirical limavg = %.5f\n", stats.name.c_str(),
                stats.limit_average);
  }
  std::printf("\nverdict: implementation is %s\n",
              reliability->reliable && schedulability->schedulable
                  ? "VALID (schedulable and reliable)"
                  : "NOT valid");
  return 0;
}
