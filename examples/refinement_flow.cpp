// Design by refinement (paper Section 3): start from an abstract
// specification with generous timing/reliability budgets, prove it valid
// once, then refine tasks step by step — each step checked by the *local*
// refinement constraints only, so the expensive joint analysis never has to
// be repeated (Prop. 2).
//
// Build & run:  ./build/examples/refinement_flow [--engine tick|event]
#include <cstdio>
#include <memory>
#include <string>

#include "obs/session.h"
#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "sim/runtime.h"
#include "support/argparse.h"

using namespace lrt;

namespace {

struct System {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
  std::unique_ptr<impl::Implementation> impl;
};

/// A filter/control pipeline; the knobs are what refinement may tighten.
System build(const char* task_prefix, spec::Time filter_read,
             spec::Time control_write, double lrc_command, spec::Time wcet) {
  spec::SpecificationConfig spec_config;
  spec_config.name = std::string(task_prefix) + "_system";
  spec_config.communicators = {
      {"s", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.9},
      {"level", spec::ValueType::kReal, spec::Value::real(0.0), 10, 0.9},
      {"command", spec::ValueType::kReal, spec::Value::real(0.0), 10,
       lrc_command},
  };
  spec::SpecificationConfig::TaskConfig filter;
  filter.name = std::string(task_prefix) + "_filter";
  filter.inputs = {{"s", filter_read}};
  filter.outputs = {{"level", 2}};  // writes at 20
  spec_config.tasks.push_back(std::move(filter));
  spec::SpecificationConfig::TaskConfig control;
  control.name = std::string(task_prefix) + "_control";
  control.inputs = {{"level", 2}};
  control.outputs = {{"command", control_write}};
  spec_config.tasks.push_back(std::move(control));

  System system;
  system.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(spec_config))).value());

  arch::ArchitectureConfig arch_config;
  arch_config.hosts = {{"h1", 0.99}, {"h2", 0.99}};
  arch_config.sensors = {{"gauge", 0.99}};
  arch_config.default_wcet = wcet;
  arch_config.default_wctt = 2;
  system.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());

  impl::ImplementationConfig impl_config;
  impl_config.task_mappings = {
      {std::string(task_prefix) + "_filter", {"h1"}},
      {std::string(task_prefix) + "_control", {"h1", "h2"}}};
  impl_config.sensor_bindings = {{"s", "gauge"}};
  system.impl = std::make_unique<impl::Implementation>(
      std::move(impl::Implementation::Build(*system.spec, *system.arch,
                                            std::move(impl_config)))
          .value());
  return system;
}

void report_validity(const char* label, const impl::Implementation& impl) {
  const auto rel = reliability::analyze(impl);
  const auto sched = sched::analyze_schedulability(impl);
  std::printf("%s: %s, %s => %s\n", label,
              rel->reliable ? "reliable" : "NOT reliable",
              sched->schedulable ? "schedulable" : "NOT schedulable",
              rel->reliable && sched->schedulable ? "VALID" : "INVALID");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("refinement_flow",
                   "design-by-refinement walkthrough (paper Section 3)");
  std::string engine_name = "tick";
  parser.add_string("--engine", &engine_name,
                    "simulation engine for step 4: tick | event | parallel");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || !parser.positionals().empty()) {
    if (!status.ok())
      std::fprintf(stderr, "refinement_flow: %s\n",
                   status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  if (engine_name != "tick" && engine_name != "event" &&
      engine_name != "parallel") {
    std::fprintf(stderr,
                 "unknown --engine '%s' (want tick | event | parallel)\n",
                 engine_name.c_str());
    return 2;
  }
  const obs::ScopedSession session(obs_options);

  std::printf("=== incremental design by refinement ===\n\n");

  // Step 0: the abstract design. Filter reads late (time 0), control has
  // the whole window, LRC 0.9, WCET budget 8.
  System abstract_sys = build("abs", /*filter_read=*/0,
                              /*control_write=*/4, /*lrc_command=*/0.9,
                              /*wcet=*/8);
  std::printf("step 0 — abstract design, full joint analysis:\n  ");
  report_validity("abstract", *abstract_sys.impl);

  // Step 1: the implementation team delivers concrete tasks: smaller
  // measured WCET (5), lower LRC demand (0.85), same LETs.
  System concrete_sys = build("impl", 0, 4, 0.85, 5);
  refine::RefinementMap kappa;
  kappa.task_map = {{"impl_filter", "abs_filter"},
                    {"impl_control", "abs_control"}};
  const auto check =
      refine::check_refinement(*concrete_sys.impl, *abstract_sys.impl, kappa);
  std::printf("\nstep 1 — concrete tasks, LOCAL refinement check only:\n");
  std::printf("  refinement constraints: %s",
              check->refines ? "all satisfied\n" : check->summary().c_str());
  std::printf("  => by Prop. 2 the concrete system inherits validity; "
              "re-analysis optional.\n");
  std::printf("  (cross-check) ");
  report_validity("concrete", *concrete_sys.impl);

  // Step 2: a bad refinement attempt — the new control task wants to write
  // a HIGHER-reliability command than the abstract design promised.
  System ambitious_sys = build("amb", 0, 4, /*lrc_command=*/0.95, 5);
  refine::RefinementMap kappa2;
  kappa2.task_map = {{"amb_filter", "abs_filter"},
                     {"amb_control", "abs_control"}};
  const auto check2 =
      refine::check_refinement(*ambitious_sys.impl, *abstract_sys.impl,
                               kappa2);
  std::printf("\nstep 2 — refinement demanding MORE reliability "
              "(LRC 0.95 > 0.9):\n%s", check2->summary().c_str());

  // Step 3: a bad refinement attempt — WCET grew beyond the budget.
  System slow_sys = build("slow", 0, 4, 0.85, /*wcet=*/9);
  refine::RefinementMap kappa3;
  kappa3.task_map = {{"slow_filter", "abs_filter"},
                     {"slow_control", "abs_control"}};
  const auto check3 =
      refine::check_refinement(*slow_sys.impl, *abstract_sys.impl, kappa3);
  std::printf("\nstep 3 — refinement whose WCET exceeds the budget:\n%s",
              check3->summary().c_str());

  std::printf("\nThe two rejected refinements were caught by local checks "
              "on (t', kappa(t')) pairs alone —\nno global schedulability "
              "or reliability analysis was run for them.\n");

  // Step 4: exercise the accepted concrete system on the runtime the
  // refinement guarantees extend to — either engine, same semantics.
  sim::SimulationOptions run;
  run.engine = engine_name == "event" ? sim::SimulationOptions::Engine::kEvent
               : engine_name == "parallel"
                   ? sim::SimulationOptions::Engine::kParallelEvent
                   : sim::SimulationOptions::Engine::kTick;
  run.periods = 200;
  sim::NullEnvironment env;
  const auto simulated = sim::simulate(*concrete_sys.impl, env, run);
  if (!simulated.ok()) {
    std::fprintf(stderr, "simulation error: %s\n",
                 simulated.status().to_string().c_str());
    return 1;
  }
  const sim::CommStats* command = simulated->find("command");
  std::printf("\nstep 4 — %lld periods on the %s engine: "
              "limavg(command)=%.4f (mu=0.85), divergences=%lld\n",
              static_cast<long long>(simulated->periods), engine_name.c_str(),
              command != nullptr ? command->limit_average : -1.0,
              static_cast<long long>(simulated->vote_divergences));
  return 0;
}
