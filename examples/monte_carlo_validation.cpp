// Monte Carlo validation of Proposition 1 on the three-tank system: fan
// hundreds of independent fault-injected simulations across all cores,
// pool the per-communicator reliabilities, and cross-check the empirical
// confidence intervals against the analytic SRGs and the declared LRCs.
//
// Exits nonzero when the campaign contradicts the analysis (a 99%
// interval that excludes lambda_c on a control communicator, or an
// unsound/unreliable verdict) — CI runs this binary as a convergence
// smoke check and archives its JSON report.
//
// Build & run:
//   ./build/examples/monte_carlo_validation [trials] [periods] [threads]
//                                           [report.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"

using namespace lrt;

int main(int argc, char** argv) {
  sim::MonteCarloOptions options;
  options.trials = argc > 1 ? std::atoll(argv[1]) : 200;
  options.simulation.periods = argc > 2 ? std::atoll(argv[2]) : 1000;
  options.threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;
  options.simulation.actuator_comms = {"u1", "u2"};

  auto system = plant::make_three_tank_system({});
  if (!system.ok()) {
    std::printf("3TS build error: %s\n",
                system.status().to_string().c_str());
    return 1;
  }

  const auto analytic = reliability::analyze(*system->implementation);
  if (!analytic.ok()) {
    std::printf("analysis error: %s\n",
                analytic.status().to_string().c_str());
    return 1;
  }
  std::printf("analytic verdict:\n%s\n", analytic->summary().c_str());

  sim::MonteCarloRunner runner(options);
  const auto report = runner.run(*system->implementation);
  if (!report.ok()) {
    std::printf("monte carlo error: %s\n",
                report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", report->summary().c_str());

  if (argc > 4) {
    std::ofstream out(argv[4]);
    if (!out) {
      std::printf("cannot write %s\n", argv[4]);
      return 1;
    }
    out << sim::to_json(*report) << "\n";
    std::printf("report written to %s\n", argv[4]);
  }

  // Convergence gate: the paper's control communicators must land inside
  // their 99% intervals around the analytic guarantee, and no verdict may
  // contradict the analysis.
  bool ok = report->analysis_sound && report->implementation_reliable &&
            report->vote_divergences == 0;
  for (const char* name : {"u1", "u2"}) {
    const sim::CommAggregate* comm = report->find(name);
    if (comm == nullptr || !comm->interval.contains(comm->analytic_srg)) {
      std::printf("%s: empirical interval excludes analytic SRG\n", name);
      ok = false;
    }
  }
  std::printf(ok ? "\nvalidation PASSED\n" : "\nvalidation FAILED\n");
  return ok ? 0 : 1;
}
