// Monte Carlo validation of Proposition 1 on the three-tank system: fan
// hundreds of independent fault-injected simulations across all cores,
// pool the per-communicator reliabilities, and cross-check the empirical
// confidence intervals against the analytic SRGs and the declared LRCs.
//
// Exits nonzero when the campaign contradicts the analysis (a 99%
// interval that excludes lambda_c on a control communicator, or an
// unsound/unreliable verdict) — CI runs this binary as a convergence
// smoke check and archives its JSON report.
//
// Build & run:
//   ./build/examples/monte_carlo_validation [trials] [periods] [threads]
//                                           [report.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/session.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "sim/monte_carlo.h"
#include "support/argparse.h"

using namespace lrt;

int main(int argc, char** argv) {
  ArgParser parser("monte_carlo_validation",
                   "Monte Carlo cross-check of Proposition 1 on the 3TS");
  parser.set_positional_usage("[trials] [periods] [threads] [report.json]");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  if (const Status status = parser.parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  const auto& args = parser.positionals();
  const obs::ScopedSession session(obs_options);

  sim::MonteCarloOptions options;
  options.trials = args.size() > 0 ? std::atoll(args[0].c_str()) : 200;
  options.simulation.periods =
      args.size() > 1 ? std::atoll(args[1].c_str()) : 1000;
  options.threads =
      args.size() > 2 ? static_cast<unsigned>(std::atoi(args[2].c_str())) : 0;
  options.simulation.actuator_comms = {"u1", "u2"};

  auto system = plant::make_three_tank_system({});
  if (!system.ok()) {
    std::printf("3TS build error: %s\n",
                system.status().to_string().c_str());
    return 1;
  }

  const auto analytic = reliability::analyze(*system->implementation);
  if (!analytic.ok()) {
    std::printf("analysis error: %s\n",
                analytic.status().to_string().c_str());
    return 1;
  }
  std::printf("analytic verdict:\n%s\n", analytic->summary().c_str());

  sim::MonteCarloRunner runner(options);
  const auto report = runner.run(*system->implementation);
  if (!report.ok()) {
    std::printf("monte carlo error: %s\n",
                report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", report->summary().c_str());

  if (args.size() > 3) {
    const std::string& report_path = args[3];
    std::ofstream out(report_path);
    if (!out) {
      std::printf("cannot write %s\n", report_path.c_str());
      return 1;
    }
    out << sim::to_json(*report) << "\n";
    std::printf("report written to %s\n", report_path.c_str());
  }

  // Convergence gate: the paper's control communicators must land inside
  // their 99% intervals around the analytic guarantee, and no verdict may
  // contradict the analysis.
  bool ok = report->analysis_sound && report->implementation_reliable &&
            report->vote_divergences == 0;
  for (const char* name : {"u1", "u2"}) {
    const sim::CommAggregate* comm = report->find(name);
    if (comm == nullptr || !comm->interval.contains(comm->analytic_srg)) {
      std::printf("%s: empirical interval excludes analytic SRG\n", name);
      ok = false;
    }
  }
  std::printf(ok ? "\nvalidation PASSED\n" : "\nvalidation FAILED\n");
  return ok ? 0 : 1;
}
