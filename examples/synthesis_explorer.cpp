// Replication-mapping synthesis: sweep the LRC demanded of the 3TS control
// communicators and watch the synthesizer buy exactly as much space
// redundancy as each requirement needs — automating the by-hand repair
// the paper performs in Section 4.
//
// Build & run:  ./build/examples/synthesis_explorer
#include <cstdio>

#include "obs/session.h"
#include "plant/three_tank_system.h"
#include "reliability/analysis.h"
#include "support/argparse.h"
#include "synth/synthesis.h"

using namespace lrt;

int main(int argc, char** argv) {
  ArgParser parser("synthesis_explorer",
                   "LRC sweep of the replication-mapping synthesizer");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || !parser.positionals().empty()) {
    if (!status.ok())
      std::fprintf(stderr, "synthesis_explorer: %s\n",
                   status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  const obs::ScopedSession session(obs_options);

  std::printf("=== replication synthesis on the 3TS task set ===\n\n");
  std::printf("%-8s %-14s %-12s %-10s %-30s\n", "LRC", "strategy",
              "replicas", "explored", "verdict / achieved lambda_u1");

  for (const double lrc : {0.95, 0.97, 0.98, 0.9899, 0.99}) {
    plant::ThreeTankScenario scenario;
    scenario.lrc_controls = lrc;
    auto system = plant::make_three_tank_system(scenario);
    if (!system.ok()) continue;

    for (const auto strategy :
         {synth::SynthesisOptions::Strategy::kGreedy,
          synth::SynthesisOptions::Strategy::kExhaustive}) {
      synth::SynthesisOptions options;
      options.strategy = strategy;
      const auto result = synth::synthesize(
          *system->specification, *system->architecture,
          {{"s1", "sensor1"}, {"s2", "sensor2"}}, options);
      const char* name =
          strategy == synth::SynthesisOptions::Strategy::kGreedy
              ? "greedy"
              : "exhaustive";
      if (!result.ok()) {
        std::printf("%-8.4f %-14s %-12s %-10s %s\n", lrc, name, "-", "-",
                    result.status().to_string().c_str());
        continue;
      }
      auto impl = impl::Implementation::Build(
          *system->specification, *system->architecture, result->config);
      const auto srgs = reliability::compute_srgs(*impl);
      const auto u1 = *system->specification->find_communicator("u1");
      std::printf("%-8.4f %-14s %-12zu %-10lld lambda_u1 = %.8f\n", lrc,
                  name, result->replication_count,
                  static_cast<long long>(result->candidates_evaluated),
                  (*srgs)[static_cast<std::size_t>(u1)]);
    }
  }

  std::printf("\nNotes:\n"
              " * LRC <= 0.970299 is met with 6 replicas (one per task) — "
              "the paper's baseline.\n"
              " * LRC 0.98 forces replication of the u-support (the paper's "
              "scenario 1 found by hand).\n"
              " * Past what full replication of every supporting task can "
              "deliver, synthesis reports UNSATISFIABLE.\n");
  return 0;
}
