// lrtd: the batched multi-tenant analysis daemon (DESIGN.md §5k).
//
//   lrtd serve --socket /tmp/lrtd.sock [--threads N] [--max-pending N]
//        [--max-resident N] [--trace-out t.json] [--metrics-out m.json]
//   lrtd ping --socket /tmp/lrtd.sock
//   lrtd shutdown --socket /tmp/lrtd.sock
//
// `serve` blocks until a `shutdown` frame arrives (or SIGINT/SIGTERM),
// then drains gracefully and unlinks the socket. `ping` and `shutdown`
// are one-shot clients that print the response frame.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/session.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/argparse.h"
#include "support/json.h"
#include "support/status.h"

using namespace lrt;

namespace {

service::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->Stop();
}

std::string simple_request(std::string_view verb) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema");
  writer.value(service::kWireSchemaVersion);
  writer.key("id");
  writer.value(std::string("lrtd-cli-") + std::string(verb));
  writer.key("verb");
  writer.value(verb);
  writer.end_object();
  return std::move(writer).str();
}

int run_client_verb(const std::string& socket_path, std::string_view verb) {
  auto client = service::Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "lrtd %s: %s\n", std::string(verb).c_str(),
                 client.status().to_string().c_str());
    return 1;
  }
  const auto response = client->call(simple_request(verb));
  if (!response.ok()) {
    std::fprintf(stderr, "lrtd %s: %s\n", std::string(verb).c_str(),
                 response.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", response->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("lrtd", "logical-reliability analysis daemon");

  ArgParser& serve = parser.add_subcommand(
      "serve", "bind the socket and serve requests until shutdown");
  std::string socket_path = "/tmp/lrtd.sock";
  std::int64_t threads = 0;
  std::int64_t max_pending = 128;
  std::int64_t max_resident = 8;
  obs::SessionOptions obs_options;
  serve.add_string("--socket", &socket_path, "AF_UNIX socket path");
  serve.add_int("--threads", &threads,
                "worker threads (0 = hardware concurrency)");
  serve.add_int("--max-pending", &max_pending,
                "admission-control bound on queued requests");
  serve.add_int("--max-resident", &max_resident,
                "LRU bound on resident workload evaluators");
  obs::add_session_flags(serve, &obs_options);

  ArgParser& ping = parser.add_subcommand(
      "ping", "send one ping frame and print the response");
  std::string ping_socket = "/tmp/lrtd.sock";
  ping.add_string("--socket", &ping_socket, "AF_UNIX socket path");

  ArgParser& shutdown = parser.add_subcommand(
      "shutdown", "ask a running server to drain and exit");
  std::string shutdown_socket = "/tmp/lrtd.sock";
  shutdown.add_string("--socket", &shutdown_socket, "AF_UNIX socket path");

  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "lrtd: %s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }

  if (parser.selected_subcommand() == "ping") {
    return run_client_verb(ping_socket, "ping");
  }
  if (parser.selected_subcommand() == "shutdown") {
    return run_client_verb(shutdown_socket, "shutdown");
  }

  // serve
  if (threads < 0 || max_pending <= 0 || max_resident <= 0) {
    std::fprintf(stderr,
                 "lrtd serve: --threads must be >= 0 and --max-pending/"
                 "--max-resident must be > 0\n");
    return 2;
  }
  const obs::ScopedSession session(obs_options);

  service::ServerOptions options;
  options.socket_path = socket_path;
  options.threads = static_cast<unsigned>(threads);
  options.max_pending = static_cast<std::size_t>(max_pending);
  options.service.max_resident_workloads =
      static_cast<std::size_t>(max_resident);
  auto server = service::Server::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "lrtd serve: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  std::printf("lrtd: serving on %s (%lld threads, %lld pending max)\n",
              (*server)->socket_path().c_str(),
              static_cast<long long>(threads),
              static_cast<long long>(max_pending));
  std::fflush(stdout);

  g_server = server->get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  (*server)->Wait();
  g_server = nullptr;
  std::printf("lrtd: drained, socket unlinked\n");
  return 0;
}
