// The paper's Section-4 case study, end to end (through the lrt:: facade):
//  1. analyze the baseline 3TS implementation (t1->h1, t2->h2, rest->h3)
//     and reproduce the published SRGs;
//  2. show that an LRC of 0.98 on u1/u2 is infeasible for the baseline and
//     met by both repair scenarios (task replication / sensor replication);
//  3. run the closed loop against the simulated plant and repeat the
//     paper's fault-tolerance experiment: unplug one of the two replicated
//     hosts and verify the control performance does not change.
//
// Build & run:  ./build/examples/three_tank_system
//               [--trace-out trace.json] [--metrics-out metrics.json]
#include <cstdio>

#include "lrt/lrt.h"
#include "obs/session.h"
#include "plant/three_tank_system.h"
#include "sched/schedulability.h"
#include "support/argparse.h"

using namespace lrt;

namespace {

/// The plant owns its models; the facade borrows them (no-op deleters).
Workload workload_of(const plant::ThreeTankSystem& system) {
  return borrow_workload(*system.specification, *system.architecture);
}

void print_srgs(const char* label, const impl::Implementation& impl) {
  const auto srgs = reliability::compute_srgs(impl);
  const auto& spec = impl.specification();
  std::printf("%s\n", label);
  for (const char* name : {"s1", "l1", "u1"}) {
    const auto comm = spec.find_communicator(name);
    if (!comm.has_value()) continue;
    std::printf("  lambda_%-3s = %.8f\n", name,
                (*srgs)[static_cast<std::size_t>(*comm)]);
  }
}

plant::ControlMetrics run_closed_loop(const plant::ThreeTankSystem& system,
                                      bool unplug_host) {
  plant::ThreeTankEnvironment env({}, 0.40, 0.30, 1e-3,
                                  /*warmup_seconds=*/300.0);
  // A disturbance 100 s after the (optional) unplug: tank1's extra
  // evacuation tap opens, so holding the last pump command is no longer
  // enough — only a live controller keeps the level.
  env.add_perturbation_event(700.0, 1, 1.0);
  SimulateOptions options;
  options.environment = &env;
  options.simulation.periods = 2400;  // 20 min of plant time, 0.5 s/period
  options.simulation.actuator_comms = {"u1", "u2"};
  options.simulation.faults.inject_invocation_faults = false;
  options.simulation.faults.inject_sensor_faults = false;
  if (unplug_host) {
    // Unplug h1 at t = 600 s, well after the warmup.
    options.simulation.faults.host_events = {{600'000, 0, false}};
  }
  const auto result =
      simulate(workload_of(system), *system.implementation, options);
  if (!result.ok()) {
    std::printf("simulation error: %s\n", result.status().to_string().c_str());
    return {};
  }
  return env.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("three_tank_system",
                   "the paper's Section-4 case study, end to end");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  if (const Status status = parser.parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  const obs::ScopedSession session(obs_options);

  std::printf("=== 3TS reliability analysis (paper Section 4) ===\n\n");

  plant::ThreeTankScenario baseline;  // hrel = srel = 0.99
  auto base = plant::make_three_tank_system(baseline);
  print_srgs("baseline (t1->h1, t2->h2, rest->h3):", *base->implementation);
  std::printf("  paper: lambda_l1 = 0.9801, lambda_u1 = 0.970299\n\n");

  for (const double lrc : {0.97, 0.98}) {
    plant::ThreeTankScenario scenario;
    scenario.lrc_controls = lrc;
    auto system = plant::make_three_tank_system(scenario);
    const auto report =
        analyze(workload_of(*system), *system->implementation);
    std::printf("baseline with LRC(u1,u2) = %.2f: %s\n", lrc,
                report->reliable ? "RELIABLE" : "NOT RELIABLE");
  }

  std::printf("\n--- repair scenario 1: replicate t1, t2 on {h1, h2} ---\n");
  plant::ThreeTankScenario scenario1;
  scenario1.variant = plant::ThreeTankVariant::kReplicatedTasks;
  scenario1.lrc_controls = 0.98;
  auto sys1 = plant::make_three_tank_system(scenario1);
  print_srgs("scenario 1:", *sys1->implementation);
  std::printf("  LRC 0.98: %s\n",
              analyze(workload_of(*sys1), *sys1->implementation)->reliable
                  ? "RELIABLE"
                  : "NOT RELIABLE");

  std::printf("\n--- repair scenario 2: replicate the sensors ---\n");
  plant::ThreeTankScenario scenario2;
  scenario2.variant = plant::ThreeTankVariant::kReplicatedSensors;
  scenario2.lrc_controls = 0.98;
  auto sys2 = plant::make_three_tank_system(scenario2);
  print_srgs("scenario 2:", *sys2->implementation);
  std::printf("  LRC 0.98: %s\n",
              analyze(workload_of(*sys2), *sys2->implementation)->reliable
                  ? "RELIABLE"
                  : "NOT RELIABLE");

  const auto sched = sched::analyze_schedulability(*sys1->implementation);
  std::printf("\nscenario 1 schedulability: %s\n",
              sched->schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE");

  std::printf("\n=== fault-tolerance experiment (paper: 'unplugging one of "
              "the two hosts ... has no effect') ===\n\n");
  const plant::ControlMetrics nominal =
      run_closed_loop(*sys1, /*unplug_host=*/false);
  const plant::ControlMetrics unplugged =
      run_closed_loop(*sys1, /*unplug_host=*/true);
  std::printf("RMS tracking error, tank1:  nominal %.5f m  | h1 unplugged "
              "%.5f m\n",
              nominal.rms_error1, unplugged.rms_error1);
  std::printf("RMS tracking error, tank2:  nominal %.5f m  | h1 unplugged "
              "%.5f m\n",
              nominal.rms_error2, unplugged.rms_error2);

  // Contrast: unplug the host in the UNreplicated baseline.
  const plant::ControlMetrics broken =
      run_closed_loop(*base, /*unplug_host=*/true);
  std::printf("\nwithout replication (baseline), unplugging h1 degrades "
              "tank1 control:\n  RMS error %.5f m (vs %.5f m nominal)\n",
              broken.rms_error1, nominal.rms_error1);
  return 0;
}
