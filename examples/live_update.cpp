// Transactional live update of the running three-tank system: splice a
// filter task into the tank-1 control path MID-RUN, without stopping the
// plant and without missing a single communicator update.
//
// Four parts, each a gate (the binary exits nonzero if any fails):
//  1. Committed splice: the running 3TS workload is live-updated to a
//     specification with a new `filter1` task between read1 and t1 (new
//     communicator f1, t1 retimed to read it). The task set changed, so
//     the verify stage re-synthesizes with every task outside the dirty
//     cone pinned to its running hosts; the swap installs at a period
//     boundary, survives probation, and commits — exactly one spec swap.
//  2. Zero missed updates: every communicator that persists across the
//     update commits exactly as many samples and updates as in a run that
//     never updated (the filter is a pass-through, so even u1's value
//     trace is bit-identical).
//  3. Engine bit-identity: the whole transaction replayed on the
//     calendar-queue event engine produces bit-identical traces, stats,
//     and swap counts to the tick engine.
//  4. Forced failure: a proposal whose spliced communicator carries an
//     unattainable LRC is rejected at the verify stage; the running
//     workload is never touched and the full value trace equals the
//     never-updated run's.
//
// Build & run:
//   ./build/examples/live_update [periods] [--engine tick|event]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "adapt/live_update.h"
#include "lrt/lrt.h"
#include "obs/session.h"
#include "plant/three_tank_system.h"
#include "support/argparse.h"

using namespace lrt;

namespace {

constexpr double kSetpoint1 = 0.40;
constexpr double kSetpoint2 = 0.30;

spec::Value control_law(double setpoint, const spec::Value& level) {
  const double command = plant::kThreeTankGain *
                         (setpoint - level.as_real());
  return spec::Value::real(command < 0.0 ? 0.0
                                         : (command > 1.0 ? 1.0 : command));
}

/// The 3TS specification (paper Fig. 2 timing), optionally with the
/// spliced tank-1 filter: filter1 reads (l1, 1) at 100 and writes the new
/// communicator (f1, 2) at 200; t1 then reads (f1, 2) instead of (l1, 1).
/// The hyperperiod stays 500, so the update is a pure splice.
spec::SpecificationConfig make_spec(bool with_filter, double filter_lrc) {
  spec::SpecificationConfig config;
  config.name = with_filter ? "three_tank_filtered" : "three_tank";
  const auto comm = [&config](const std::string& name, spec::Time period,
                              double lrc) {
    config.communicators.push_back(
        {name, spec::ValueType::kReal, spec::Value::real(0.0), period, lrc});
  };
  comm("s1", 500, 0.99);
  comm("s2", 500, 0.99);
  comm("l1", 100, 0.97);
  comm("l2", 100, 0.97);
  comm("u1", 100, 0.97);
  comm("u2", 100, 0.97);
  comm("r1", 500, 0.9);
  comm("r2", 500, 0.9);
  if (with_filter) comm("f1", 100, filter_lrc);

  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig read;
    read.name = "read" + i;
    read.inputs = {{"s" + i, 0}};
    read.outputs = {{"l" + i, 1}};
    read.model = spec::FailureModel::kParallel;
    read.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(read));
  }
  if (with_filter) {
    spec::SpecificationConfig::TaskConfig filter;
    filter.name = "filter1";
    filter.inputs = {{"l1", 1}};
    filter.outputs = {{"f1", 2}};
    filter.model = spec::FailureModel::kSeries;
    // Pass-through: the splice must not change the control values, which
    // is what lets gate 2 demand a bit-identical u1 trace.
    filter.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(filter));
  }
  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    const double setpoint = tank == 1 ? kSetpoint1 : kSetpoint2;
    spec::SpecificationConfig::TaskConfig control;
    control.name = "t" + i;
    control.inputs = {tank == 1 && with_filter
                          ? std::pair<std::string, std::int64_t>{"f1", 2}
                          : std::pair<std::string, std::int64_t>{"l" + i, 1}};
    control.outputs = {{"u" + i, 3}};
    control.model = spec::FailureModel::kSeries;
    control.function = [setpoint](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{control_law(setpoint, in[0])};
    };
    config.tasks.push_back(std::move(control));
  }
  for (const int tank : {1, 2}) {
    const std::string i = std::to_string(tank);
    spec::SpecificationConfig::TaskConfig estimate;
    estimate.name = "estimate" + i;
    estimate.inputs = {{"l" + i, 1}, {"u" + i, 0}};
    estimate.outputs = {{"r" + i, 1}};
    estimate.model = spec::FailureModel::kSeries;
    estimate.function = [](std::span<const spec::Value> in) {
      return std::vector<spec::Value>{in[0]};
    };
    config.tasks.push_back(std::move(estimate));
  }
  return config;
}

arch::ArchitectureConfig make_arch() {
  arch::ArchitectureConfig config;
  config.name = "three_tank_arch";
  for (const std::string name : {"h1", "h2", "h3"}) {
    config.hosts.push_back({name, 0.99});
  }
  for (const std::string name : {"sensor1", "sensor2"}) {
    config.sensors.push_back({name, 0.99});
  }
  config.default_wcet = 10;
  config.default_wctt = 5;
  return config;
}

impl::ImplementationConfig make_mapping() {
  impl::ImplementationConfig config;
  config.name = "three_tank_impl";
  config.task_mappings.push_back({"t1", {"h1"}});
  config.task_mappings.push_back({"t2", {"h2"}});
  for (const std::string task :
       {"read1", "read2", "estimate1", "estimate2"}) {
    config.task_mappings.push_back({task, {"h3"}});
  }
  config.sensor_bindings = {{"s1", "sensor1"}, {"s2", "sensor2"}};
  return config;
}

/// Deterministic run options: faults off so every gate below is about the
/// swap mechanics, not sampling noise.
sim::SimulationOptions run_options(std::int64_t periods,
                                   sim::SimulationOptions::Engine engine) {
  sim::SimulationOptions options;
  options.engine = engine;
  options.periods = periods;
  options.faults.inject_invocation_faults = false;
  options.faults.inject_sensor_faults = false;
  options.actuator_comms = {"u1", "u2"};
  options.record_values_for = {"u1", "u2", "l2"};
  return options;
}

bool same_traces(const sim::SimulationResult& a,
                 const sim::SimulationResult& b) {
  if (a.value_traces.size() != b.value_traces.size()) return false;
  for (const auto& [name, trace] : a.value_traces) {
    const auto it = b.value_traces.find(name);
    if (it == b.value_traces.end() ||
        it->second.size() != trace.size()) {
      return false;
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!(trace[i] == it->second[i])) return false;
    }
  }
  return true;
}

bool same_comm_stats(const sim::SimulationResult& a,
                     const sim::SimulationResult& b,
                     const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    const sim::CommStats* sa = a.find(name);
    const sim::CommStats* sb = b.find(name);
    if (sa == nullptr || sb == nullptr) return false;
    if (sa->samples != sb->samples || sa->updates != sb->updates ||
        sa->reliable_samples != sb->reliable_samples ||
        sa->reliable_updates != sb->reliable_updates) {
      return false;
    }
  }
  return true;
}

plant::ThreeTankEnvironment make_env() {
  return plant::ThreeTankEnvironment(plant::ThreeTankParams{}, kSetpoint1,
                                     kSetpoint2);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("live_update",
                   "transactional live update of the 3TS case study");
  parser.set_positional_usage("[periods]");
  std::string engine_name = "tick";
  parser.add_string("--engine", &engine_name,
                    "simulation engine for the story run: "
                    "tick | event | parallel");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  if (const Status status = parser.parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.to_string().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  const auto& args = parser.positionals();
  const std::int64_t periods =
      args.size() > 0 ? std::atoll(args[0].c_str()) : 40;
  if (engine_name != "tick" && engine_name != "event" &&
      engine_name != "parallel") {
    std::fprintf(stderr,
                 "unknown --engine '%s' (want tick | event | parallel)\n",
                 engine_name.c_str());
    return 2;
  }
  const auto story_engine =
      engine_name == "event" ? sim::SimulationOptions::Engine::kEvent
      : engine_name == "parallel"
          ? sim::SimulationOptions::Engine::kParallelEvent
          : sim::SimulationOptions::Engine::kTick;
  const obs::ScopedSession session(obs_options);
  bool ok = true;

  auto workload = build_workload(make_spec(false, 0.97), make_arch());
  if (!workload.ok()) {
    std::printf("workload build error: %s\n",
                workload.status().to_string().c_str());
    return 1;
  }
  auto running = build_implementation(*workload, make_mapping());
  if (!running.ok()) {
    std::printf("implementation build error: %s\n",
                running.status().to_string().c_str());
    return 1;
  }
  const spec::Time hyper = workload->spec->hyperperiod();
  const spec::Time swap_at = periods / 2 * hyper;

  adapt::LiveUpdateOptions policy;
  policy.probation_periods = 3;
  policy.earliest_install = swap_at;

  // --- part 1: committed splice ---------------------------------------
  std::printf("--- live splice of filter1 at tick %lld (%s engine) ---\n",
              static_cast<long long>(swap_at), engine_name.c_str());
  const auto run_updated = [&](sim::SimulationOptions::Engine engine)
      -> Result<std::pair<sim::SimulationResult, adapt::UpdateReport>> {
    adapt::UpdateEngine update_engine(*running, policy);
    LRT_RETURN_IF_ERROR(update_engine.propose(0, make_spec(true, 0.97)));
    sim::SimulationOptions options = run_options(periods, engine);
    options.monitor = &update_engine;
    auto env = make_env();
    LRT_ASSIGN_OR_RETURN(sim::SimulationResult result,
                         sim::simulate(*running, env, options));
    return std::make_pair(std::move(result), update_engine.report());
  };
  auto story = run_updated(story_engine);
  if (!story.ok()) {
    std::printf("update run error: %s\n", story.status().to_string().c_str());
    return 1;
  }
  const adapt::UpdateReport& report = story->second;
  std::printf("%s", report.summary().c_str());
  ok = ok && report.state == adapt::UpdateState::kCommitted &&
       report.path == adapt::UpdatePath::kResynthesized &&
       report.installed_at == swap_at && story->first.spec_swaps == 1;
  if (story->first.spec_swaps != 1) {
    std::printf("expected exactly one spec swap, saw %lld\n",
                static_cast<long long>(story->first.spec_swaps));
  }

  // --- part 2: zero missed updates vs the never-updated run ------------
  std::printf("\n--- zero missed updates across the swap ---\n");
  auto baseline_env = make_env();
  const auto baseline = sim::simulate(
      *running, baseline_env, run_options(periods, story_engine));
  if (!baseline.ok()) {
    std::printf("baseline run error: %s\n",
                baseline.status().to_string().c_str());
    return 1;
  }
  const std::vector<std::string> persisting = {"s1", "s2", "l1", "l2",
                                               "u1", "u2", "r1", "r2"};
  const bool counts_ok = same_comm_stats(story->first, *baseline, persisting);
  const bool traces_ok = same_traces(story->first, *baseline);
  std::printf("persisting comm stats %s, value traces %s\n",
              counts_ok ? "identical" : "DIVERGED",
              traces_ok ? "bit-identical" : "DIVERGED");
  ok = ok && counts_ok && traces_ok;

  // --- part 3: tick vs event bit-identity ------------------------------
  std::printf("\n--- tick vs event engine ---\n");
  auto tick = run_updated(sim::SimulationOptions::Engine::kTick);
  auto event = run_updated(sim::SimulationOptions::Engine::kEvent);
  if (!tick.ok() || !event.ok()) {
    std::printf("engine comparison run error\n");
    return 1;
  }
  const bool engines_ok =
      tick->first.spec_swaps == event->first.spec_swaps &&
      tick->first.committed_updates == event->first.committed_updates &&
      tick->first.invocations == event->first.invocations &&
      same_comm_stats(tick->first, event->first, persisting) &&
      same_traces(tick->first, event->first) &&
      tick->second.installed_at == event->second.installed_at;
  std::printf("tick vs event: %s\n",
              engines_ok ? "bit-identical" : "DIVERGED");
  ok = ok && engines_ok;

  // --- part 4: forced verify failure is atomic -------------------------
  std::printf("\n--- forced failure: unattainable LRC on f1 ---\n");
  UpdateOptions facade_options;
  facade_options.update = policy;
  facade_options.run.simulation = run_options(periods, story_engine);
  auto rejected = update(*workload, *running, make_spec(true, 0.9999),
                         facade_options);
  if (!rejected.ok()) {
    std::printf("lrt::update error: %s\n",
                rejected.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", rejected->summary().c_str());
  adapt::UpdateEngine reject_engine(*running, policy);
  if (const Status status =
          reject_engine.propose(0, make_spec(true, 0.9999));
      !status.ok()) {
    std::printf("propose error: %s\n", status.to_string().c_str());
    return 1;
  }
  sim::SimulationOptions reject_run = run_options(periods, story_engine);
  reject_run.monitor = &reject_engine;
  auto reject_env = make_env();
  const auto untouched = sim::simulate(*running, reject_env, reject_run);
  if (!untouched.ok()) {
    std::printf("rejected-proposal run error: %s\n",
                untouched.status().to_string().c_str());
    return 1;
  }
  const bool atomic = untouched->spec_swaps == 0 &&
                      same_traces(*untouched, *baseline) &&
                      same_comm_stats(*untouched, *baseline, persisting);
  std::printf("rejected at verify: %s; running workload untouched: %s\n",
              rejected->state == adapt::UpdateState::kRejected ? "yes" : "NO",
              atomic ? "yes (trace identical)" : "NO");
  ok = ok && rejected->state == adapt::UpdateState::kRejected && atomic;

  std::printf(ok ? "\nlive-update validation PASSED\n"
                 : "\nlive-update validation FAILED\n");
  return ok ? 0 : 1;
}
