// Closed-loop load generator for lrtd: a fixed set of client
// connections, each issuing one request at a time against a generated
// workload, measuring end-to-end frame latency.
//
//   lrtd_loadgen --socket /tmp/lrtd.sock [--clients 4] [--requests 1000]
//        [--seed 7] [--cold-every 0]
//
// The generator first primes the server with one cold `analyze` (full
// spec + arch + implementation documents) and remembers the returned
// fingerprint; the measured phase then issues delta `analyze` requests
// (`mutate` one task's host set against the resident fingerprint), which
// is the hot path the service is built around. `--cold-every N` mixes in
// a full cold analysis of a fresh workload every N requests to exercise
// the miss path. Reports requests/sec and p50/p99/p999 latency.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_json.h"
#include "gen/workload.h"
#include "impl/impl_json.h"
#include "service/client.h"
#include "service/protocol.h"
#include "spec/spec_json.h"
#include "support/argparse.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/status.h"

using namespace lrt;

namespace {

struct GeneratedWorkload {
  std::string spec_json;
  std::string arch_json;
  std::string impl_json;
  std::vector<std::string> tasks;
  std::vector<std::string> hosts;
};

Result<GeneratedWorkload> draw_workload(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  gen::WorkloadOptions options;
  options.min_layers = 3;
  options.max_layers = 4;
  options.min_tasks_per_layer = 3;
  options.max_tasks_per_layer = 5;
  options.min_hosts = 3;
  options.max_hosts = 4;
  LRT_ASSIGN_OR_RETURN(gen::Workload workload,
                       gen::random_workload(rng, options));
  GeneratedWorkload out;
  out.spec_json = spec::to_json(workload.specification->to_config());
  out.arch_json = arch::to_json(workload.architecture_config);
  out.impl_json = impl::to_json(workload.implementation_config);
  for (const auto& mapping : workload.implementation_config.task_mappings) {
    out.tasks.push_back(mapping.task);
  }
  for (const auto& host : workload.architecture_config.hosts) {
    out.hosts.push_back(host.name);
  }
  return out;
}

std::string cold_analyze_frame(const std::string& id,
                               const GeneratedWorkload& workload) {
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(service::kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("verb");
  json.value("analyze");
  json.key("spec");
  json.raw(workload.spec_json);
  json.key("arch");
  json.raw(workload.arch_json);
  json.key("implementation");
  json.raw(workload.impl_json);
  json.end_object();
  return std::move(json).str();
}

std::string mutate_frame(const std::string& id,
                         const std::string& fingerprint,
                         const GeneratedWorkload& workload,
                         std::size_t step) {
  // Rotate one task across single-host placements; every request is a
  // real state change, so the server's dirty-cone path does real work.
  const std::string& task = workload.tasks[step % workload.tasks.size()];
  const std::string& host =
      workload.hosts[(step / workload.tasks.size()) % workload.hosts.size()];
  JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value(service::kWireSchemaVersion);
  json.key("id");
  json.value(id);
  json.key("verb");
  json.value("analyze");
  json.key("fingerprint");
  json.value(fingerprint);
  json.key("mutate");
  json.begin_object();
  json.key("task");
  json.value(task);
  json.key("hosts");
  json.begin_array();
  json.value(host);
  json.end_array();
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

/// result.fingerprint from an ok response frame ("" when absent).
std::string response_fingerprint(const std::string& frame) {
  const auto document = parse_json(frame);
  if (!document.ok()) return "";
  const JsonValue* result = document->find("result");
  if (result == nullptr) return "";
  const JsonValue* fingerprint = result->find("fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string()) return "";
  return fingerprint->string;
}

bool response_ok(const std::string& frame) {
  const auto document = parse_json(frame);
  if (!document.ok()) return false;
  const JsonValue* ok = document->find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

double percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_us.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("lrtd_loadgen",
                   "closed-loop load generator for the lrtd daemon");
  std::string socket_path = "/tmp/lrtd.sock";
  std::int64_t clients = 4;
  std::int64_t requests = 1000;
  std::int64_t seed = 7;
  std::int64_t cold_every = 0;
  parser.add_string("--socket", &socket_path, "AF_UNIX socket path");
  parser.add_int("--clients", &clients, "concurrent client connections");
  parser.add_int("--requests", &requests, "total measured requests");
  parser.add_int("--seed", &seed, "workload generator seed");
  parser.add_int("--cold-every", &cold_every,
                 "issue a cold full analysis every N requests (0 = never)");
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || clients <= 0 || requests <= 0 || cold_every < 0) {
    if (!status.ok())
      std::fprintf(stderr, "lrtd_loadgen: %s\n", status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }

  const auto workload = draw_workload(static_cast<std::uint64_t>(seed));
  if (!workload.ok()) {
    std::fprintf(stderr, "lrtd_loadgen: workload generation failed: %s\n",
                 workload.status().to_string().c_str());
    return 1;
  }

  // Prime: one cold analysis establishes the resident evaluator every
  // measured mutate request hits.
  auto prime = service::Client::Connect(socket_path);
  if (!prime.ok()) {
    std::fprintf(stderr, "lrtd_loadgen: %s\n",
                 prime.status().to_string().c_str());
    return 1;
  }
  const auto primed = prime->call(cold_analyze_frame("loadgen-prime",
                                                     *workload));
  if (!primed.ok() || !response_ok(*primed)) {
    std::fprintf(stderr, "lrtd_loadgen: prime analyze failed: %s\n",
                 primed.ok() ? primed->c_str()
                             : primed.status().to_string().c_str());
    return 1;
  }
  const std::string fingerprint = response_fingerprint(*primed);
  if (fingerprint.empty()) {
    std::fprintf(stderr,
                 "lrtd_loadgen: prime response carried no fingerprint\n");
    return 1;
  }
  std::printf("primed workload %s (%zu tasks, %zu hosts)\n",
              fingerprint.c_str(), workload->tasks.size(),
              workload->hosts.size());

  std::atomic<std::int64_t> next_request{0};
  std::atomic<std::int64_t> errors{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(requests));

  const auto run_client = [&](int client_index) {
    auto client = service::Client::Connect(socket_path);
    if (!client.ok()) {
      errors.fetch_add(1);
      return;
    }
    std::vector<double> local_us;
    while (true) {
      const std::int64_t index = next_request.fetch_add(1);
      if (index >= requests) break;
      const std::string id = "loadgen-" + std::to_string(client_index) +
                             "-" + std::to_string(index);
      const bool cold = cold_every > 0 && index % cold_every == 0;
      const std::string frame =
          cold ? cold_analyze_frame(id, *workload)
               : mutate_frame(id, fingerprint, *workload,
                              static_cast<std::size_t>(index));
      const auto start = std::chrono::steady_clock::now();
      const auto response = client->call(frame);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      local_us.push_back(
          std::chrono::duration<double, std::micro>(elapsed).count());
      if (!response.ok() || !response_ok(*response)) errors.fetch_add(1);
    }
    const std::lock_guard<std::mutex> lock(latencies_mutex);
    latencies_us.insert(latencies_us.end(), local_us.begin(),
                        local_us.end());
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < static_cast<int>(clients); ++i) {
    threads.emplace_back(run_client, i);
  }
  for (auto& thread : threads) thread.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto completed = static_cast<std::int64_t>(latencies_us.size());
  std::printf("completed %lld requests over %lld connections in %.3f s "
              "(%lld errors)\n",
              static_cast<long long>(completed),
              static_cast<long long>(clients), wall_s,
              static_cast<long long>(errors.load()));
  if (wall_s > 0.0) {
    std::printf("throughput: %.1f requests/sec\n",
                static_cast<double>(completed) / wall_s);
  }
  std::printf("latency: p50 %.1f us  p99 %.1f us  p999 %.1f us\n",
              percentile(latencies_us, 0.50), percentile(latencies_us, 0.99),
              percentile(latencies_us, 0.999));
  return errors.load() == 0 ? 0 : 1;
}
