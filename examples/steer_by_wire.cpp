// A steer-by-wire controller — the automotive safety-critical setting the
// paper's introduction motivates. Ten communicators and five interacting
// LET tasks on four ECUs:
//
//   hw_raw --[read_hw (par)]--> hw_angle --+
//   vs_raw --[read_speed]-----> spd -------+--[gen_ref]--> ref
//   rw1_raw, rw2_raw --[read_rack (par)]--> rw_fb
//   ref, rw_fb --[rack_ctrl]--> rack_cmd          (the safety output)
//   rack_cmd, hw_angle --[monitor (indep)]--> diag
//
// The demo negotiates requirements against the platform: it bisects the
// strongest LRC on rack_cmd for which replication synthesis can find a
// valid implementation, then validates the result with the E-machine,
// the schedule timeline, and the failure-pattern baseline.
//
// Build & run:  ./build/examples/steer_by_wire
#include <cstdio>
#include <memory>

#include "ecode/emachine.h"
#include "obs/session.h"
#include "reliability/analysis.h"
#include "reliability/fault_patterns.h"
#include "sched/schedulability.h"
#include "sched/timeline.h"
#include "sim/runtime.h"
#include "support/argparse.h"
#include "synth/synthesis.h"

using namespace lrt;

namespace {

struct Sbw {
  std::unique_ptr<spec::Specification> spec;
  std::unique_ptr<arch::Architecture> arch;
};

Sbw make_models(double rack_cmd_lrc) {
  Sbw sbw;
  spec::SpecificationConfig config;
  config.name = "steer_by_wire";
  const auto real_comm = [](const char* name, spec::Time period, double lrc) {
    return spec::Communicator{name, spec::ValueType::kReal,
                              spec::Value::real(0.0), period, lrc};
  };
  config.communicators = {
      real_comm("hw_raw", 10, 0.5),  real_comm("vs_raw", 20, 0.5),
      real_comm("rw1_raw", 10, 0.5), real_comm("rw2_raw", 10, 0.5),
      real_comm("hw_angle", 10, 0.99), real_comm("spd", 20, 0.97),
      real_comm("ref", 10, 0.96),    real_comm("rw_fb", 10, 0.99),
      real_comm("rack_cmd", 10, rack_cmd_lrc), real_comm("diag", 20, 0.9),
  };
  using TC = spec::SpecificationConfig::TaskConfig;
  TC read_hw;
  read_hw.name = "read_hw";
  read_hw.inputs = {{"hw_raw", 0}};
  read_hw.outputs = {{"hw_angle", 1}};
  read_hw.model = spec::FailureModel::kParallel;
  TC read_speed;
  read_speed.name = "read_speed";
  read_speed.inputs = {{"vs_raw", 0}};
  read_speed.outputs = {{"spd", 1}};
  TC gen_ref;
  gen_ref.name = "gen_ref";
  gen_ref.inputs = {{"hw_angle", 1}, {"spd", 0}};
  gen_ref.outputs = {{"ref", 2}};
  TC read_rack;
  read_rack.name = "read_rack";
  read_rack.inputs = {{"rw1_raw", 0}, {"rw2_raw", 0}};
  read_rack.outputs = {{"rw_fb", 1}};
  read_rack.model = spec::FailureModel::kParallel;
  TC rack_ctrl;
  rack_ctrl.name = "rack_ctrl";
  rack_ctrl.inputs = {{"ref", 0}, {"rw_fb", 1}};
  rack_ctrl.outputs = {{"rack_cmd", 2}};
  TC monitor;
  monitor.name = "monitor";
  // Reads the command committed at the start of the period (instance 1 at
  // 10 ms carries the previous iteration's rack_ctrl output).
  monitor.inputs = {{"rack_cmd", 1}, {"hw_angle", 1}};
  monitor.outputs = {{"diag", 1}};
  monitor.model = spec::FailureModel::kIndependent;
  config.tasks = {read_hw, read_speed, gen_ref, read_rack, rack_ctrl,
                  monitor};

  sbw.spec = std::make_unique<spec::Specification>(
      std::move(spec::Specification::Build(std::move(config))).value());

  arch::ArchitectureConfig arch_config;
  arch_config.name = "sbw_arch";
  arch_config.hosts = {{"ecu_hw", 0.999},
                       {"ecu_fw", 0.999},
                       {"ecu_c1", 0.9995},
                       {"ecu_c2", 0.9995}};
  arch_config.sensors = {{"hw_sensor", 0.9995},
                         {"rw_sensor_a", 0.998},
                         {"rw_sensor_b", 0.998},
                         {"vs_sensor", 0.995}};
  arch_config.default_wcet = 2;
  arch_config.default_wctt = 1;
  sbw.arch = std::make_unique<arch::Architecture>(
      std::move(arch::Architecture::Build(std::move(arch_config))).value());
  return sbw;
}

const std::vector<impl::ImplementationConfig::SensorBinding> kBindings = {
    {"hw_raw", "hw_sensor"},
    {"rw1_raw", "rw_sensor_a"},
    {"rw2_raw", "rw_sensor_b"},
    {"vs_raw", "vs_sensor"}};

/// Synthesis feasibility of a given rack_cmd LRC.
Result<synth::SynthesisResult> try_lrc(double lrc) {
  const Sbw sbw = make_models(lrc);
  return synth::synthesize(*sbw.spec, *sbw.arch, kBindings);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("steer_by_wire",
                   "negotiate the strongest feasible rack_cmd LRC");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || !parser.positionals().empty()) {
    if (!status.ok())
      std::fprintf(stderr, "steer_by_wire: %s\n", status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  const obs::ScopedSession session(obs_options);

  std::printf("=== steer-by-wire: negotiating the strongest feasible LRC "
              "===\n\n");
  std::printf("%-12s %-12s %-10s\n", "LRC(rack)", "feasible?", "replicas");

  // Bisect the strongest rack_cmd LRC the platform can guarantee.
  double lo = 0.9, hi = 0.99999;
  for (int iter = 0; iter < 18; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto result = try_lrc(mid);
    if (result.ok()) {
      std::printf("%-12.6f %-12s %-10zu\n", mid, "yes",
                  result->replication_count);
      lo = mid;
    } else {
      std::printf("%-12.6f %-12s %-10s\n", mid, "no", "-");
      hi = mid;
    }
  }
  std::printf("\nstrongest guaranteeable LRC(rack_cmd) ~ %.6f\n\n", lo);

  // Build the winning implementation and validate it end to end.
  const Sbw sbw = make_models(lo);
  const auto synthesis = synth::synthesize(*sbw.spec, *sbw.arch, kBindings);
  if (!synthesis.ok()) {
    std::printf("unexpected: %s\n", synthesis.status().to_string().c_str());
    return 1;
  }
  auto impl = impl::Implementation::Build(*sbw.spec, *sbw.arch,
                                          synthesis->config);
  std::printf("synthesized mapping (%zu replicas):\n",
              synthesis->replication_count);
  for (const auto& mapping : synthesis->config.task_mappings) {
    std::printf("  %-12s ->", mapping.task.c_str());
    for (const auto& host : mapping.hosts) std::printf(" %s", host.c_str());
    std::printf("\n");
  }

  const auto reliability = reliability::analyze(*impl);
  const auto schedulability = sched::analyze_schedulability(*impl);
  std::printf("\n%s%s", reliability->summary().c_str(),
              schedulability->summary().c_str());
  std::printf("\n%s", sched::render_timeline(*schedulability, *impl).c_str());

  std::printf("\nfailure-pattern view (bound 2):\n%s",
              reliability::analyze_fault_patterns(*impl, 2)
                  ->summary(*sbw.arch)
                  .c_str());

  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 200'000;
  options.actuator_comms = {"rack_cmd", "diag"};
  options.faults.seed = 5;
  const auto run = ecode::run_emachine(*impl, env, options);
  const auto stats = run->find("rack_cmd");
  const auto ci = stats->update_rate_interval();
  std::printf("\nE-machine validation (200k periods): rack_cmd empirical "
              "rate %.6f, 99%% CI [%.6f, %.6f], LRC %.6f\n",
              stats->update_rate(), ci.low, ci.high, lo);
  std::printf("vote divergences: %lld\n",
              static_cast<long long>(run->vote_divergences));
  return 0;
}
