// The full compiler pipeline of the paper's prototype: an HTL program with
// LRC annotations, an architecture and a replication mapping is compiled,
// jointly analyzed (schedulability + reliability), translated to per-host
// E-code, and executed by the E-machine with fault injection.
//
// Build & run:  ./build/examples/htl_pipeline
#include <cstdio>

#include "ecode/emachine.h"
#include "ecode/program.h"
#include "htl/compiler.h"
#include "htl/mode_runtime.h"
#include "obs/session.h"
#include "reliability/analysis.h"
#include "sched/schedulability.h"
#include "support/argparse.h"

using namespace lrt;

namespace {

// A two-module cruise-control-flavoured HTL program. Reliability
// requirements (lrc ...) sit with the communicators; reliability
// guarantees (reliability ...) sit with the architecture.
constexpr std::string_view kSource = R"(
program cruise {
  communicator speed_raw : real period 20 init 0.0 lrc 0.95;
  communicator speed     : real period 20 init 0.0 lrc 0.93;
  communicator throttle  : real period 20 init 0.0 lrc 0.90;
  communicator diag      : real period 60 init 0.0 lrc 0.50;

  module sensing {
    task read_speed input (speed_raw[0]) output (speed[1]) model parallel;
    mode main period 60 { invoke read_speed; }
    start main;
  }

  module control {
    task pid input (speed[1]) output (throttle[2]) model series;
    task monitor input (speed[1]) output (diag[1]) model independent
      defaults (0.0);
    mode main period 60 { invoke pid; invoke monitor; }
    start main;
  }

  architecture {
    host ecu1 reliability 0.995;
    host ecu2 reliability 0.99;
    sensor tachometer reliability 0.97;
    metrics default wcet 5 wctt 2;
    metrics task pid on ecu1 wcet 8 wctt 2;
  }

  mapping {
    map read_speed to ecu1;
    map pid to ecu1, ecu2;
    map monitor to ecu2;
    bind speed_raw to tachometer;
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("htl_pipeline",
                   "HTL -> analysis -> E-code -> E-machine pipeline demo");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || !parser.positionals().empty()) {
    if (!status.ok())
      std::fprintf(stderr, "htl_pipeline: %s\n", status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  const obs::ScopedSession session(obs_options);

  // Bind executable behaviour to the declared tasks.
  htl::FunctionRegistry registry;
  registry["read_speed"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{in[0]};
  };
  registry["pid"] = [](std::span<const spec::Value> in) {
    const double target = 27.0;
    return std::vector<spec::Value>{
        spec::Value::real(0.05 * (target - in[0].as_real()))};
  };
  registry["monitor"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{in[0]};
  };

  const auto system = htl::compile(kSource, registry);
  if (!system.ok()) {
    std::printf("compile error: %s\n", system.status().to_string().c_str());
    return 1;
  }
  std::printf("compiled program '%s': %zu communicators, %zu tasks, "
              "period %lld\n\n",
              system->ast.name.c_str(),
              system->specification->communicators().size(),
              system->specification->tasks().size(),
              static_cast<long long>(system->specification->hyperperiod()));

  const auto reliability = reliability::analyze(*system->implementation);
  std::printf("== joint analysis ==\n%s", reliability->summary().c_str());
  const auto sched = sched::analyze_schedulability(*system->implementation);
  std::printf("%s\n", sched->summary().c_str());

  std::printf("== generated E-code ==\n");
  for (arch::HostId h = 0;
       h < static_cast<arch::HostId>(
               system->architecture->hosts().size());
       ++h) {
    const auto program = ecode::generate_ecode(*system->implementation, h);
    std::printf("%s\n",
                program->disassemble(*system->specification).c_str());
  }

  std::printf("== E-machine execution, 50000 periods with fault "
              "injection ==\n");
  sim::NullEnvironment env;
  sim::SimulationOptions options;
  options.periods = 50'000;
  options.faults.seed = 42;
  const auto result =
      ecode::run_emachine(*system->implementation, env, options);
  const auto srgs = reliability::compute_srgs(*system->implementation);
  std::printf("  %-10s %-12s %-12s\n", "comm", "analytic", "empirical");
  for (const auto& stats : result->comm_stats) {
    const auto comm = system->specification->find_communicator(stats.name);
    std::printf("  %-10s %-12.6f %-12.6f\n", stats.name.c_str(),
                (*srgs)[static_cast<std::size_t>(*comm)],
                stats.limit_average);
  }
  std::printf("  vote divergences: %lld (paper invariant: 0)\n",
              static_cast<long long>(result->vote_divergences));

  // --- mode switching: per-mode analysis + switching execution ----------
  constexpr std::string_view kModes = R"(
program mode_switching {
  communicator load_raw : real period 10 init 0.0 lrc 0.9;
  communicator overload : bool period 20 init false lrc 0.9;
  communicator power    : real period 20 init 0.0 lrc 0.9;
  module detect {
    task sense input (load_raw[0]) output (overload[1]) model series;
    mode main period 20 { invoke sense; }
    start main;
  }
  module control {
    task eco_ctrl input (load_raw[0]) output (power[1]) model series;
    task boost_ctrl input (load_raw[0]) output (power[1]) model series;
    mode eco period 20 { invoke eco_ctrl; switch (overload) to boost; }
    mode boost period 20 { invoke boost_ctrl; }
    start eco;
  }
  architecture {
    host cpu reliability 0.995;
    sensor load_sensor reliability 0.99;
    metrics default wcet 3 wctt 1;
  }
  mapping {
    map sense to cpu; map eco_ctrl to cpu; map boost_ctrl to cpu;
    bind load_raw to load_sensor;
  }
}
)";
  std::printf("\n== mode switching (paper: 'the switch is always to tasks "
              "with identical reliability constraints') ==\n");
  const auto selections = htl::analyze_all_selections(kModes);
  for (const auto& [key, valid] : *selections) {
    std::printf("  selection %-28s %s\n", key.c_str(),
                valid ? "VALID" : "INVALID");
  }

  htl::FunctionRegistry mode_fns;
  mode_fns["sense"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{
        spec::Value::boolean(in[0].as_real() > 5.0)};
  };
  mode_fns["eco_ctrl"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{spec::Value::real(in[0].as_real())};
  };
  mode_fns["boost_ctrl"] = [](std::span<const spec::Value> in) {
    return std::vector<spec::Value>{spec::Value::real(2.0 * in[0].as_real())};
  };
  class LoadEnv final : public sim::Environment {
   public:
    spec::Value read_sensor(std::string_view, spec::Time now) override {
      return spec::Value::real(now > 1000 ? 10.0 : 1.0);  // spike at t=1000
    }
    void write_actuator(std::string_view, spec::Time,
                        const spec::Value&) override {}
  } load_env;
  sim::SimulationOptions mode_options;
  mode_options.periods = 200;
  mode_options.actuator_comms = {"power"};
  mode_options.faults.inject_invocation_faults = false;
  mode_options.faults.inject_sensor_faults = false;
  const auto switching = htl::simulate_with_switching(kModes, mode_fns,
                                                      load_env, mode_options);
  std::printf("  executed 200 periods with a load spike at t = 1000:\n");
  for (const auto& [key, count] : switching->mode_occupancy) {
    std::printf("    %-32s %lld periods\n", key.c_str(),
                static_cast<long long>(count));
  }
  return 0;
}
