// lrtc — the command-line HTL compiler & analyzer.
//
//   lrtc <file.htl> [--ecode] [--timeline] [--simulate N] [--rbd COMM]
//        [--patterns K] [--json] [--refines PARENT.htl]
//
// Compiles the program, runs the joint schedulability/reliability
// analysis, and optionally disassembles the generated per-host E-code,
// renders the synthesized schedule, simulates N specification periods
// with fault injection, prints the reliability block diagram of a
// communicator, or runs the failure-pattern analysis up to K simultaneous
// component failures.
//
// Example:  ./build/examples/lrtc examples/htl/cruise.htl --timeline --ecode
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ecode/emachine.h"
#include "ecode/program.h"
#include "htl/compiler.h"
#include "obs/session.h"
#include "refine/refinement.h"
#include "reliability/analysis.h"
#include "reliability/fault_patterns.h"
#include "reliability/rbd.h"
#include "sched/schedulability.h"
#include "sched/timeline.h"
#include "sim/runtime.h"
#include "support/argparse.h"

using namespace lrt;

int main(int argc, char** argv) {
  ArgParser parser("lrtc", "HTL compiler & analyzer");
  parser.set_positional_usage("<file.htl>");
  bool want_ecode = false;
  bool want_timeline = false;
  bool want_json = false;
  std::int64_t simulate_periods = 0;
  std::int64_t pattern_bound = 0;
  std::string rbd_comm;
  std::string parent_path;
  parser.add_flag("--ecode", &want_ecode,
                  "disassemble the generated per-host E-code");
  parser.add_flag("--timeline", &want_timeline,
                  "render the synthesized schedule");
  parser.add_flag("--json", &want_json,
                  "machine-readable combined analysis document");
  parser.add_int("--simulate", &simulate_periods,
                 "simulate N specification periods with fault injection");
  parser.add_int("--patterns", &pattern_bound,
                 "failure-pattern analysis up to K simultaneous failures");
  parser.add_string("--rbd", &rbd_comm,
                    "reliability block diagram of a communicator");
  parser.add_string("--refines", &parent_path,
                    "check refinement against a parent program");
  obs::SessionOptions obs_options;
  obs::add_session_flags(parser, &obs_options);
  const Status status = parser.parse(argc, argv);
  if (parser.help_requested()) {
    std::printf("%s", parser.usage().c_str());
    return 0;
  }
  if (!status.ok() || parser.positionals().size() != 1) {
    if (!status.ok())
      std::fprintf(stderr, "lrtc: %s\n", status.to_string().c_str());
    std::fprintf(stderr, "%s", parser.usage().c_str());
    return 2;
  }
  const std::string& path = parser.positionals().front();
  const obs::ScopedSession session(obs_options);

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "lrtc: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  const auto system = htl::compile(buffer.str());
  if (!system.ok()) {
    std::fprintf(stderr, "lrtc: %s\n", system.status().to_string().c_str());
    return 1;
  }
  if (!want_json) {
    std::printf("program '%s': %zu communicators, %zu tasks, period %lld\n",
                system->ast.name.c_str(),
                system->specification->communicators().size(),
                system->specification->tasks().size(),
                static_cast<long long>(
                    system->specification->hyperperiod()));
  }

  if (system->implementation == nullptr) {
    std::printf("(no architecture/mapping blocks — specification checked, "
                "no implementation to analyze)\n");
    return 0;
  }
  const impl::Implementation& impl = *system->implementation;

  const auto reliability = reliability::analyze(impl);
  if (!reliability.ok()) {
    std::fprintf(stderr, "lrtc: %s\n",
                 reliability.status().to_string().c_str());
    return 1;
  }
  if (want_json) {
    // Machine-readable mode: one combined document, nothing else.
    const auto sched_report = sched::analyze_schedulability(impl);
    if (!sched_report.ok()) {
      std::fprintf(stderr, "lrtc: %s\n",
                   sched_report.status().to_string().c_str());
      return 1;
    }
    std::printf("{\"program\":\"%s\",\"reliability\":%s,"
                "\"schedulability\":%s}\n",
                system->ast.name.c_str(),
                reliability::to_json(*reliability).c_str(),
                sched::to_json(*sched_report, impl).c_str());
    return 0;
  }
  std::printf("\n%s", reliability->summary().c_str());

  const auto schedulability = sched::analyze_schedulability(impl);
  if (!schedulability.ok()) {
    std::fprintf(stderr, "lrtc: %s\n",
                 schedulability.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", schedulability->summary().c_str());
  std::printf("\n=> implementation is %s\n",
              reliability->reliable && schedulability->schedulable
                  ? "VALID"
                  : "NOT VALID");

  if (want_timeline) {
    std::printf("\n%s",
                sched::render_timeline(*schedulability, impl).c_str());
  }
  if (want_ecode) {
    for (arch::HostId h = 0;
         h < static_cast<arch::HostId>(
                 system->architecture->hosts().size());
         ++h) {
      const auto program = ecode::generate_ecode(impl, h);
      if (program.ok()) {
        std::printf("\n%s",
                    program->disassemble(*system->specification).c_str());
      }
    }
  }
  if (!rbd_comm.empty()) {
    const auto comm = system->specification->find_communicator(rbd_comm);
    if (!comm.has_value()) {
      std::fprintf(stderr, "lrtc: unknown communicator '%s'\n",
                   rbd_comm.c_str());
      return 1;
    }
    const auto diagram = reliability::build_srg_rbd(impl, *comm);
    if (diagram.ok()) {
      std::printf("\nRBD(%s) = %s\n     reliability = %.8f\n",
                  rbd_comm.c_str(),
                  diagram->rbd.to_string(diagram->root).c_str(),
                  diagram->rbd.reliability(diagram->root));
    }
  }
  if (!parent_path.empty()) {
    std::ifstream parent_file(parent_path);
    if (!parent_file) {
      std::fprintf(stderr, "lrtc: cannot open '%s'\n",
                   parent_path.c_str());
      return 1;
    }
    std::ostringstream parent_buffer;
    parent_buffer << parent_file.rdbuf();
    const auto parent = htl::compile(parent_buffer.str());
    if (!parent.ok() || parent->implementation == nullptr) {
      std::fprintf(stderr, "lrtc: parent program: %s\n",
                   parent.ok() ? "no architecture/mapping blocks"
                               : parent.status().to_string().c_str());
      return 1;
    }
    const auto kappa = htl::refinement_map(system->ast);
    if (!kappa.ok()) {
      std::fprintf(stderr, "lrtc: %s\n", kappa.status().to_string().c_str());
      return 1;
    }
    const auto check = refine::check_refinement(
        impl, *parent->implementation, *kappa);
    if (!check.ok()) {
      std::fprintf(stderr, "lrtc: %s\n", check.status().to_string().c_str());
      return 1;
    }
    std::printf("\nrefinement of '%s': %s\n", parent->ast.name.c_str(),
                check->summary().c_str());
    if (check->refines) {
      std::printf("=> by Prop. 2, validity of the parent transfers to this "
                  "program.\n");
    }
  }
  if (pattern_bound > 0) {
    const auto patterns = reliability::analyze_fault_patterns(
        impl, static_cast<int>(pattern_bound));
    if (patterns.ok()) {
      std::printf("\n%s",
                  patterns->summary(*system->architecture).c_str());
    }
  }
  if (simulate_periods > 0) {
    sim::NullEnvironment env;
    sim::SimulationOptions options;
    options.periods = simulate_periods;
    const auto result = ecode::run_emachine(impl, env, options);
    if (!result.ok()) {
      std::fprintf(stderr, "lrtc: %s\n", result.status().to_string().c_str());
      return 1;
    }
    std::printf("\nE-machine, %lld periods with fault injection:\n",
                static_cast<long long>(simulate_periods));
    for (const auto& stats : result->comm_stats) {
      std::printf("  %-12s empirical limavg = %.6f  (updates: %lld/%lld)\n",
                  stats.name.c_str(), stats.limit_average,
                  static_cast<long long>(stats.reliable_updates),
                  static_cast<long long>(stats.updates));
    }
  }
  return 0;
}
