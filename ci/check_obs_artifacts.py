#!/usr/bin/env python3
"""Schema gate for the obs-smoke and service-smoke CI jobs.

Validates the two artifacts an enabled observability session writes:

  check_obs_artifacts.py trace.json metrics.json [--require c1,c2,...]

* trace.json   must be Chrome trace_event JSON (Perfetto-loadable): a
               top-level object with a nonempty "traceEvents" array whose
               events carry ph/ts/name/cat (and dur >= 0 for "X" spans).
* metrics.json must be a metrics snapshot ({"counters", "gauges",
               "histograms"} objects) whose counters prove the
               instrumented layers actually ran. --require names the
               counters that must be nonzero (comma-separated); the
               default is the self_healing pipeline's layer proof
               (synth.prunes, sim.trials, adapt.repairs_installed), so
               existing callers are unaffected. The lrtd service-smoke
               job passes service.* counters instead.

Exits nonzero with a message on the first violation.
"""

import json
import sys

DEFAULT_REQUIRED_COUNTERS = (
    "synth.prunes",
    "sim.trials",
    "adapt.repairs_installed",
)


def fail(message: str) -> None:
    print(f"check_obs_artifacts: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)
    if not isinstance(trace, dict):
        fail(f"{path}: top level must be an object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")
    if not events:
        fail(f"{path}: 'traceEvents' is empty — nothing was traced")
    phases = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        for key in ("ph", "ts", "name", "cat", "pid", "tid"):
            if key not in event:
                fail(f"{path}: traceEvents[{i}] missing '{key}'")
        phase = event["ph"]
        if phase not in ("X", "i"):
            fail(f"{path}: traceEvents[{i}] has unexpected phase {phase!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            fail(f"{path}: traceEvents[{i}] has bad ts {event['ts']!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{path}: traceEvents[{i}] span has bad dur {dur!r}")
        phases[phase] = phases.get(phase, 0) + 1
    print(f"check_obs_artifacts: {path}: {len(events)} events "
          f"({phases.get('X', 0)} spans, {phases.get('i', 0)} instants)")


def check_metrics(path: str, required: tuple) -> None:
    with open(path, encoding="utf-8") as handle:
        metrics = json.load(handle)
    if not isinstance(metrics, dict):
        fail(f"{path}: top level must be an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{path}: missing '{section}' object")
    counters = metrics["counters"]
    for name, value in counters.items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: counter {name!r} is not numeric: {value!r}")
    for name in required:
        if counters.get(name, 0) <= 0:
            fail(f"{path}: counter {name!r} is {counters.get(name, 0)!r} — "
                 "the instrumented layer did not run (or was not flushed)")
    for name, hist in metrics["histograms"].items():
        if not isinstance(hist, dict):
            fail(f"{path}: histogram {name!r} is not an object")
        edges = hist.get("upper_edges")
        buckets = hist.get("buckets")
        if not isinstance(edges, list) or not isinstance(buckets, list):
            fail(f"{path}: histogram {name!r} missing edges/buckets")
        if len(buckets) != len(edges) + 1:
            fail(f"{path}: histogram {name!r} has {len(buckets)} buckets "
                 f"for {len(edges)} edges (want edges+1)")
    interesting = {name: counters[name]
                   for name in sorted(counters)
                   if name in required
                   or name in ("trace.dropped", "adapt.suspicions",
                               "synth.runs", "sim.runs")}
    print(f"check_obs_artifacts: {path}: {len(counters)} counters, "
          f"key values {interesting}")


def main() -> None:
    args = list(sys.argv[1:])
    required = DEFAULT_REQUIRED_COUNTERS
    if "--require" in args:
        at = args.index("--require")
        if at + 1 >= len(args):
            fail("--require needs a comma-separated counter list")
        required = tuple(
            name for name in args[at + 1].split(",") if name)
        if not required:
            fail("--require list is empty")
        del args[at:at + 2]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(args[0])
    check_metrics(args[1], required)
    print("check_obs_artifacts: PASS")


if __name__ == "__main__":
    main()
