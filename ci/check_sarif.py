#!/usr/bin/env python3
"""Structural SARIF 2.1.0 gate for the lint-gate CI job.

Validates the SARIF artifact lrt_lint uploads, using only the standard
library (CI installs nothing):

  check_sarif.py lrt_lint.sarif

* top level: an object with the sarif-2.1.0 "$schema", "version" 2.1.0,
  and a nonempty "runs" array;
* tool: every run names a driver with a nonempty rules array; each rule
  carries an id, a name, a shortDescription.text, and a
  defaultConfiguration.level from the SARIF level vocabulary;
* results: every result's ruleId and ruleIndex resolve to the same
  declared rule, its level is valid, its message.text is nonempty, and
  every location (primary or related) is a physicalLocation with an
  artifactLocation.uri and a region of integer startLine/startColumn;
* relatedLocations additionally need a message.text — they are rendered
  as annotations, so an empty message is a broken finding.

Exits nonzero with a message on the first violation.
"""

import json
import sys

LEVELS = ("none", "note", "warning", "error")


def fail(message: str) -> None:
    print(f"check_sarif: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_location(location, where: str, need_message: bool) -> None:
    if not isinstance(location, dict):
        fail(f"{where}: location must be an object")
    physical = location.get("physicalLocation")
    if not isinstance(physical, dict):
        fail(f"{where}: missing physicalLocation object")
    artifact = physical.get("artifactLocation", {})
    if not isinstance(artifact.get("uri"), str) or not artifact["uri"]:
        fail(f"{where}: physicalLocation needs a nonempty "
             "artifactLocation.uri")
    region = physical.get("region", {})
    for key in ("startLine", "startColumn"):
        value = region.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"{where}: region.{key} must be a nonnegative integer, "
                 f"got {value!r}")
    if need_message:
        message = location.get("message", {})
        if not isinstance(message.get("text"), str) or not message["text"]:
            fail(f"{where}: relatedLocation needs a nonempty message.text")


def check_rule(rule, where: str) -> str:
    if not isinstance(rule.get("id"), str) or not rule["id"]:
        fail(f"{where}: rule needs a nonempty id")
    if not isinstance(rule.get("name"), str) or not rule["name"]:
        fail(f"{where}: rule {rule['id']} needs a nonempty name")
    description = rule.get("shortDescription", {})
    if not isinstance(description.get("text"), str) or not description["text"]:
        fail(f"{where}: rule {rule['id']} needs shortDescription.text")
    level = rule.get("defaultConfiguration", {}).get("level")
    if level not in LEVELS:
        fail(f"{where}: rule {rule['id']} has invalid "
             f"defaultConfiguration.level {level!r}")
    return rule["id"]


def check_result(result, rule_ids, where: str) -> None:
    rule_id = result.get("ruleId")
    if rule_id not in rule_ids:
        fail(f"{where}: ruleId {rule_id!r} is not declared in "
             "tool.driver.rules")
    index = result.get("ruleIndex")
    if not isinstance(index, int) or isinstance(index, bool) or \
            not 0 <= index < len(rule_ids) or rule_ids[index] != rule_id:
        fail(f"{where}: ruleIndex {index!r} does not resolve to "
             f"ruleId {rule_id!r}")
    if result.get("level") not in LEVELS:
        fail(f"{where}: invalid level {result.get('level')!r}")
    message = result.get("message", {})
    if not isinstance(message.get("text"), str) or not message["text"]:
        fail(f"{where}: result needs a nonempty message.text")
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        fail(f"{where}: result needs a nonempty locations array")
    for i, location in enumerate(locations):
        check_location(location, f"{where}.locations[{i}]",
                       need_message=False)
    for i, location in enumerate(result.get("relatedLocations", [])):
        check_location(location, f"{where}.relatedLocations[{i}]",
                       need_message=True)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if "sarif-schema-2.1.0" not in doc.get("$schema", ""):
        fail(f"unexpected $schema {doc.get('$schema')!r}")
    if doc.get("version") != "2.1.0":
        fail(f"unexpected version {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a nonempty array")

    results_seen = 0
    related_seen = 0
    for r, run in enumerate(runs):
        where = f"runs[{r}]"
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str) or not driver["name"]:
            fail(f"{where}: tool.driver.name must be a nonempty string")
        rules = driver.get("rules")
        if not isinstance(rules, list) or not rules:
            fail(f"{where}: tool.driver.rules must be a nonempty array")
        rule_ids = [check_rule(rule, f"{where}.rules[{i}]")
                    for i, rule in enumerate(rules)]
        if len(set(rule_ids)) != len(rule_ids):
            fail(f"{where}: duplicate rule ids in tool.driver.rules")
        results = run.get("results")
        if not isinstance(results, list):
            fail(f"{where}: results must be an array")
        for i, result in enumerate(results):
            check_result(result, rule_ids, f"{where}.results[{i}]")
            related_seen += len(result.get("relatedLocations", []))
        results_seen += len(results)

    print(f"check_sarif: OK: {len(runs)} run(s), {results_seen} result(s), "
          f"{related_seen} relatedLocation(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
